//! Unit-level tests of the artifact cache: hit identity, LRU byte
//! budget, fingerprint-collision confirmation, and in-flight coalescing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use lalr_core::Parallelism;
use lalr_service::{
    ArtifactCache, CacheConfig, CacheOutcome, CompiledArtifact, GrammarFormat, ServiceError,
};

fn compile_native(text: &str, fp: u64) -> Result<CompiledArtifact, ServiceError> {
    CompiledArtifact::compile(text, GrammarFormat::Native, fp, &Parallelism::sequential())
}

const G1: &str = "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"x\" ;";
const G2: &str = "s : \"a\" s \"b\" | ;";
const G3: &str = "l : l \",\" \"x\" | \"x\" ;";

#[test]
fn hit_returns_the_same_arc() {
    let cache = ArtifactCache::new(CacheConfig::default());
    let (a, first) = cache.get_or_compile(G1, compile_native);
    let (b, second) = cache.get_or_compile(G1, compile_native);
    let (a, b) = (a.unwrap(), b.unwrap());
    assert_eq!(first, CacheOutcome::Compiled);
    assert_eq!(second, CacheOutcome::Hit);
    assert!(
        Arc::ptr_eq(&a, &b),
        "a hit must share the compiled artifact"
    );
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.compiles), (1, 1, 1));
}

#[test]
fn normalized_variants_share_one_entry() {
    let cache = ArtifactCache::new(CacheConfig::default());
    let (a, _) = cache.get_or_compile(G2, compile_native);
    // Leading/trailing whitespace per line and blank lines are ignored…
    let (b, outcome) = cache.get_or_compile(&format!("  {G2}  \n\n"), compile_native);
    assert_eq!(outcome, CacheOutcome::Hit);
    assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
    // …but interior spacing is part of the identity.
    let (_, outcome) = cache.get_or_compile(&G2.replace(" s ", "  s "), compile_native);
    assert_eq!(outcome, CacheOutcome::Compiled);
    assert_eq!(cache.len(), 2);
}

#[test]
fn lru_eviction_enforces_the_byte_budget() {
    let sizes: Vec<usize> = [G1, G2, G3]
        .iter()
        .map(|g| compile_native(g, 0).unwrap().approx_bytes())
        .collect();
    // Room for any two artifacts but never all three (single shard so
    // the budget is not split).
    let mut config = CacheConfig::with_budget(sizes.iter().sum::<usize>() - 1);
    config.shards = 1;
    let cache = ArtifactCache::new(config);

    cache.get_or_compile(G1, compile_native).0.unwrap();
    cache.get_or_compile(G2, compile_native).0.unwrap();
    assert_eq!(cache.stats().evictions, 0);
    // Touch G1 so G2 becomes the least recently used…
    assert_eq!(
        cache.get_or_compile(G1, compile_native).1,
        CacheOutcome::Hit
    );
    // …and inserting G3 must evict exactly G2.
    cache.get_or_compile(G3, compile_native).0.unwrap();
    assert_eq!(cache.stats().evictions, 1);
    assert!(cache.contains(G1), "recently used entry survives");
    assert!(!cache.contains(G2), "least recently used entry is evicted");
    assert!(cache.contains(G3), "new entry is resident");
    assert!(cache.bytes() <= sizes.iter().sum::<usize>() - 1);
}

#[test]
fn oversized_artifacts_are_served_but_never_cached() {
    let mut config = CacheConfig::with_budget(16);
    config.shards = 1;
    let cache = ArtifactCache::new(config);
    let (a, outcome) = cache.get_or_compile(G1, compile_native);
    assert!(a.is_ok());
    assert_eq!(outcome, CacheOutcome::Compiled);
    assert!(
        cache.is_empty(),
        "an artifact above the budget is not inserted"
    );
    assert_eq!(cache.stats().evictions, 0);
}

#[test]
fn colliding_fingerprints_are_confirmed_by_full_text() {
    // Every text hashes to the same fingerprint, so correctness rests
    // entirely on the full-text confirmation step.
    let config = CacheConfig {
        fingerprinter: |_| 0xdead_beef,
        ..CacheConfig::default()
    };
    let cache = ArtifactCache::new(config);
    let (a, _) = cache.get_or_compile(G1, compile_native);
    let (b, outcome) = cache.get_or_compile(G2, compile_native);
    let (a, b) = (a.unwrap(), b.unwrap());
    assert_eq!(outcome, CacheOutcome::Compiled, "collision must not hit");
    assert_ne!(
        a.production_count(),
        b.production_count(),
        "each text gets its own artifact despite equal fingerprints"
    );
    // Repeat lookups hit the right bucket entry.
    let (a2, o1) = cache.get_or_compile(G1, compile_native);
    let (b2, o2) = cache.get_or_compile(G2, compile_native);
    assert_eq!((o1, o2), (CacheOutcome::Hit, CacheOutcome::Hit));
    assert!(Arc::ptr_eq(&a, &a2.unwrap()));
    assert!(Arc::ptr_eq(&b, &b2.unwrap()));
    assert_eq!(cache.len(), 2);
}

#[test]
fn concurrent_compiles_of_one_grammar_coalesce_to_one_run() {
    const THREADS: usize = 8;
    let cache = Arc::new(ArtifactCache::new(CacheConfig::default()));
    let runs = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let runs = Arc::clone(&runs);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache.get_or_compile(G1, |text, fp| {
                    runs.fetch_add(1, Ordering::SeqCst);
                    // Widen the in-flight window so late arrivals join it.
                    std::thread::sleep(Duration::from_millis(50));
                    compile_native(text, fp)
                })
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one pipeline run");
    let artifacts: Vec<_> = results.iter().map(|(r, _)| r.clone().unwrap()).collect();
    assert!(
        artifacts.iter().all(|a| Arc::ptr_eq(a, &artifacts[0])),
        "every thread receives the leader's artifact"
    );
    let compiled = results
        .iter()
        .filter(|(_, o)| *o == CacheOutcome::Compiled)
        .count();
    assert_eq!(compiled, 1, "exactly one caller is the leader");
    let s = cache.stats();
    assert_eq!(s.compiles, 1);
    assert_eq!(s.hits + s.misses + s.coalesced, THREADS as u64);
}

#[test]
fn compile_errors_propagate_to_every_coalesced_waiter() {
    const THREADS: usize = 4;
    let cache = Arc::new(ArtifactCache::new(CacheConfig::default()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let bad = "e : unknown_symbol";

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cache
                    .get_or_compile(bad, |text, fp| {
                        std::thread::sleep(Duration::from_millis(20));
                        compile_native(text, fp)
                    })
                    .0
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap().is_err(), "every waiter sees the failure");
    }
    assert!(cache.is_empty(), "failures are not cached");
    // The failed text stays retryable: a later call compiles again.
    let (r, outcome) = cache.get_or_compile(G1, compile_native);
    assert!(r.is_ok());
    assert_eq!(outcome, CacheOutcome::Compiled);
}

/// Fingerprint replay across a cache restart: the same grammars, by
/// the same fingerprints, replayed against a fresh cache over the same
/// store directory must resolve from the persistent tier — and the
/// store-tier counters must account for every lookup exactly.
#[test]
fn fingerprint_replay_over_a_reopened_cache_hits_the_store_tier() {
    let dir = std::env::temp_dir().join(format!(
        "lalr-cache-replay-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let with_store = || {
        let mut config = CacheConfig::default();
        config.store = Some(Arc::new(
            lalr_store::Store::open(&dir).expect("store opens"),
        ));
        config
    };

    let first = ArtifactCache::new(with_store());
    for g in [G1, G2, G3] {
        assert!(first.get_or_compile(g, compile_native).0.is_ok());
    }
    let s = first.stats();
    assert_eq!(s.compiles, 3, "{s:?}");
    assert_eq!(s.store_misses, 3, "cold lookups all miss the disk: {s:?}");
    assert_eq!(s.store_writes, 3, "every compile publishes: {s:?}");
    assert_eq!(s.store_hits, 0, "{s:?}");
    drop(first);

    // The replay: a brand-new cache (empty memory tier) sees the same
    // fingerprints and serves every one from disk without compiling.
    let second = ArtifactCache::new(with_store());
    for g in [G1, G2, G3] {
        let (artifact, outcome) = second.get_or_compile(g, compile_native);
        assert!(artifact.is_ok());
        assert_eq!(outcome, CacheOutcome::Loaded, "replay must come from disk");
    }
    // A second pass now hits the memory tier, not the store.
    for g in [G1, G2, G3] {
        let (_, outcome) = second.get_or_compile(g, compile_native);
        assert_eq!(outcome, CacheOutcome::Hit);
    }
    let s = second.stats();
    assert_eq!(s.compiles, 0, "{s:?}");
    assert_eq!(s.store_hits, 3, "{s:?}");
    assert_eq!(s.store_misses, 0, "{s:?}");
    assert_eq!(s.store_corrupt, 0, "{s:?}");
    assert_eq!(s.hits, 3, "memory-tier hits on the second pass: {s:?}");
    std::fs::remove_dir_all(&dir).ok();
}
