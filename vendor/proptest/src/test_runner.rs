//! Configuration and the deterministic generator behind the shim.

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim keeps that so coverage
        // is comparable to what the tests were written for.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator: every test derives its stream from its own
/// name, so failures replay exactly by rerunning the same test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_separates_tests() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("a");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("b");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::for_test("below");
        for _ in 0..100 {
            assert!(r.below(7) < 7);
        }
    }
}
