//! A JSON syntax checker built from the corpus JSON grammar: validates
//! documents, prints positioned errors with expected-token hints, and
//! demonstrates multi-error recovery over arrays.
//!
//! ```text
//! cargo run --example json_tool -- '{ "a" : [ 1 , 2 ] }'
//! ```

use lalr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = std::env::args().nth(1).unwrap_or_else(|| {
        r#"{ "name" : "lalr" , "ok" : TRUE , "xs" : [ 1 , 2.5 , NULL ] }"#.to_string()
    });

    let grammar = lalr::corpus::by_name("json")
        .expect("corpus ships a JSON grammar")
        .grammar();
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    assert!(analysis.conflicts(&grammar, &lr0).is_empty());
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );

    let lexer = Lexer::for_table(&table)
        .number("NUMBER")
        .string("STRING")
        .build();

    let tokens = match lexer.tokenize(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lex error: {e}");
            std::process::exit(1);
        }
    };
    println!("{} tokens", tokens.len());

    match Parser::new(&table).parse(tokens.clone()) {
        Ok(tree) => {
            println!(
                "valid JSON ({} nodes, depth {})",
                tree.node_count(),
                tree.height()
            );
        }
        Err(first) => {
            println!("invalid JSON: {first}");
            // Recover across commas to surface further issues.
            let comma = table.terminal_by_name(",").expect("grammar has ','");
            let (_, errors) = Parser::new(&table).parse_with_recovery(tokens, &[comma], 5);
            if errors.len() > 1 {
                println!("further diagnostics:");
                for e in &errors[1..] {
                    println!("  {e}");
                }
            }
            std::process::exit(1);
        }
    }
    Ok(())
}
