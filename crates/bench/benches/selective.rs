//! E8 — full vs selective (inadequate-states-only) look-ahead computation,
//! the paper's recommended practical shortcut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_automata::Lr0Automaton;
use lalr_core::{selective_lookaheads, LalrAnalysis};

fn bench_selective(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_vs_selective");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["pascal", "ada_subset", "tiny_java", "c_subset"] {
        let grammar = lalr_corpus::by_name(name).expect("exists").grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        group.bench_with_input(
            BenchmarkId::new("full", name),
            &(&grammar, &lr0),
            |b, (g, lr0)| b.iter(|| LalrAnalysis::compute(g, lr0).into_lookaheads()),
        );
        group.bench_with_input(
            BenchmarkId::new("selective", name),
            &(&grammar, &lr0),
            |b, (g, lr0)| b.iter(|| selective_lookaheads(g, lr0).into_lookaheads()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selective);
criterion_main!(benches);
