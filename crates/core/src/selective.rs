//! Selective (on-demand) look-ahead computation.
//!
//! The paper observes that look-ahead sets are needed only in *inadequate*
//! LR(0) states — states where LR(0) alone cannot pick an action (a
//! reduction coexists with a shift or with another reduction). In a typical
//! programming-language grammar most states are adequate, so restricting
//! the two Digraph traversals to the relation nodes actually looked back to
//! from inadequate states skips most of the work. [`selective_lookaheads`]
//! implements that restriction; ablation benchmark **E8** measures the
//! saving.

use lalr_automata::{Lr0Automaton, StateId};
use lalr_digraph::digraph_from;
use lalr_grammar::{Grammar, ProdId, Terminal};

use crate::lookahead::LookaheadSets;
use crate::relations::Relations;

/// The outcome of a selective run: the look-ahead sets (covering exactly
/// the inadequate states' reductions plus accept) and work statistics.
#[derive(Debug, Clone)]
pub struct SelectiveAnalysis {
    la: LookaheadSets,
    inadequate_states: Vec<StateId>,
    /// Relation nodes the restricted traversals actually visited.
    pub visited_transitions: usize,
    /// Total relation nodes (what the full algorithm visits).
    pub total_transitions: usize,
}

impl SelectiveAnalysis {
    /// The look-ahead sets (only for reductions in inadequate states, plus
    /// the accept entry).
    pub fn lookaheads(&self) -> &LookaheadSets {
        &self.la
    }

    /// Consumes the analysis, returning the look-ahead sets.
    pub fn into_lookaheads(self) -> LookaheadSets {
        self.la
    }

    /// The states that needed look-ahead.
    pub fn inadequate_states(&self) -> &[StateId] {
        &self.inadequate_states
    }

    /// Fraction of relation nodes skipped (0.0 when everything was needed).
    pub fn skipped_fraction(&self) -> f64 {
        if self.total_transitions == 0 {
            return 0.0;
        }
        1.0 - self.visited_transitions as f64 / self.total_transitions as f64
    }
}

/// The inadequate states of an automaton: a reduction coexists with a
/// terminal shift or with a second reduction.
pub fn inadequate_states(lr0: &Lr0Automaton) -> Vec<StateId> {
    lr0.states()
        .filter(|&s| {
            let nreds = lr0.reductions(s).len();
            nreds >= 2 || (nreds == 1 && lr0.shift_symbols(s).next().is_some())
        })
        .collect()
}

/// Computes LALR(1) look-aheads only where LR(0) is inadequate.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::{selective_lookaheads, LalrAnalysis};
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar(
///     "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;",
/// )?;
/// let lr0 = Lr0Automaton::build(&g);
/// let full = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// let sel = selective_lookaheads(&g, &lr0);
/// for ((state, prod), la) in sel.lookaheads().iter() {
///     assert_eq!(full.la(state, prod), Some(la));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn selective_lookaheads(grammar: &Grammar, lr0: &Lr0Automaton) -> SelectiveAnalysis {
    let relations = Relations::build(grammar, lr0);
    let inadequate = inadequate_states(lr0);
    let n = lr0.nt_transitions().len();

    // Roots: the transitions looked back to from inadequate reductions.
    let mut is_root = vec![false; n];
    for &state in &inadequate {
        for &prod in lr0.reductions(state) {
            for &t in relations.lookback(state, prod) {
                is_root[t.index()] = true;
            }
        }
    }

    // Nodes reachable from the roots through `includes` — the domain whose
    // `Read` sets the Follow traversal will consult.
    let mut needed = is_root.clone();
    let mut work: Vec<usize> = (0..n).filter(|&i| is_root[i]).collect();
    let mut visited = work.len();
    while let Some(u) = work.pop() {
        for &v in relations.includes().successors(u) {
            if !needed[v as usize] {
                needed[v as usize] = true;
                visited += 1;
                work.push(v as usize);
            }
        }
    }

    // Phase 1 (restricted): Read over `reads`, from every needed node.
    let mut read = relations.dr().clone();
    digraph_from(relations.reads(), &mut read, (0..n).filter(|&i| needed[i]));

    // Phase 2 (restricted): Follow over `includes`, from the roots.
    let mut follow = read;
    digraph_from(
        relations.includes(),
        &mut follow,
        (0..n).filter(|&i| is_root[i]),
    );

    // LA for exactly the inadequate reductions (the present bits of the
    // dense collection record just these plus accept).
    let mut la = LookaheadSets::with_index(
        relations.reduction_index().clone(),
        grammar.terminal_count(),
    );
    for &state in &inadequate {
        for &prod in lr0.reductions(state) {
            let rid = la.id_of(state, prod).expect("reductions are indexed");
            la.touch_id(rid);
            for &t in relations.lookback(state, prod) {
                la.union_words(rid, follow.row_words(t.index()));
            }
        }
    }
    la.insert(lr0.accept_state(grammar), ProdId::START, Terminal::EOF);

    SelectiveAnalysis {
        la,
        inadequate_states: inadequate,
        visited_transitions: visited,
        total_transitions: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    fn agree_on_inadequate(src: &str) {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let full = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let sel = selective_lookaheads(&g, &lr0);
        for ((state, prod), la) in sel.lookaheads().iter() {
            assert_eq!(
                full.la(state, prod),
                Some(la),
                "state {} prod {} in {src}",
                state.index(),
                prod.index()
            );
        }
    }

    #[test]
    fn agrees_with_full_computation() {
        agree_on_inadequate("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;");
        agree_on_inadequate("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;");
        agree_on_inadequate("s : a b c ; a : \"x\" | ; b : \"y\" | ; c : \"z\" | ;");
    }

    #[test]
    fn lr0_grammar_has_no_inadequate_states() {
        let g = parse_grammar("s : \"a\" s \"b\" | \"c\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let sel = selective_lookaheads(&g, &lr0);
        assert!(sel.inadequate_states().is_empty());
        // Only the synthetic accept entry exists.
        assert_eq!(sel.lookaheads().reduction_count(), 1);
        assert!(sel.skipped_fraction() > 0.0 || sel.total_transitions == 0);
    }

    #[test]
    fn conflict_detection_matches_full_on_inadequate_states() {
        // Conflicts can only occur in inadequate states, so running the
        // detector on the selective sets finds the same conflicts.
        let src = "e : e \"+\" e | \"x\" ;";
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let full = LalrAnalysis::compute(&g, &lr0);
        let sel = selective_lookaheads(&g, &lr0);
        let full_conflicts = crate::conflicts::find_conflicts(&g, &lr0, full.lookaheads());
        let sel_conflicts = crate::conflicts::find_conflicts(&g, &lr0, sel.lookaheads());
        assert_eq!(full_conflicts, sel_conflicts);
    }

    #[test]
    fn skips_work_on_realistic_shapes() {
        // A grammar with many adequate states: the sweep is restricted.
        let g = parse_grammar(
            "s : \"k1\" a \"k2\" | \"k3\" b \"k4\" ; a : \"x\" \"y\" \"z\" ; b : \"p\" \"q\" | \"p\" \"r\" ;",
        )
        .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let sel = selective_lookaheads(&g, &lr0);
        assert!(
            sel.visited_transitions <= sel.total_transitions,
            "visited {} of {}",
            sel.visited_transitions,
            sel.total_transitions
        );
    }
}
