//! Compact adjacency-list digraph.

use std::fmt;

/// A directed graph over nodes `0..n`, stored as adjacency lists.
///
/// Nodes are plain indices so callers (the relation builders in `lalr-core`)
/// can index them into parallel arrays of sets.
///
/// # Examples
///
/// ```
/// use lalr_digraph::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(0, 2);
/// assert_eq!(g.successors(0), &[1, 2]);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(n: usize, edges: I) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (parallel edges counted individually).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.adj.len(), "source {u} out of range");
        assert!(v < self.adj.len(), "target {v} out of range");
        self.adj[u].push(v as u32);
        self.edges += 1;
    }

    /// Adds `u -> v` unless it is already present (linear scan; adjacency
    /// lists in LALR relations are short).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge_dedup(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.adj.len(), "source {u} out of range");
        assert!(v < self.adj.len(), "target {v} out of range");
        if self.adj[u].contains(&(v as u32)) {
            return false;
        }
        self.adj[u].push(v as u32);
        self.edges += 1;
        true
    }

    /// The successors of `u` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Iterates over all edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (u, v) in self.edges() {
            g.add_edge(v, u);
        }
        g
    }

    /// Returns `true` if node `u` has an edge to itself.
    pub fn has_self_loop(&self, u: usize) -> bool {
        self.adj[u].contains(&(u as u32))
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.edge_count())?;
        for (u, vs) in self.adj.iter().enumerate() {
            if !vs.is_empty() {
                write!(f, " {u}->{vs:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.successors(1), &[2, 3]);
        assert_eq!(g.successors(3), &[] as &[u32]);
        assert_eq!(g.out_degree(1), 2);
    }

    #[test]
    fn dedup_edges() {
        let mut g = Graph::new(2);
        assert!(g.add_edge_dedup(0, 1));
        assert!(!g.add_edge_dedup(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reversal_swaps_endpoints() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.reversed();
        assert_eq!(r.successors(1), &[0]);
        assert_eq!(r.successors(2), &[1]);
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn self_loops_detected() {
        let g = Graph::from_edges(2, [(0, 0), (0, 1)]);
        assert!(g.has_self_loop(0));
        assert!(!g.has_self_loop(1));
    }

    #[test]
    fn edges_iterator_lists_all() {
        let g = Graph::from_edges(3, [(2, 0), (0, 1)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.edges().count(), 0);
    }
}
