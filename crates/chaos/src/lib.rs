//! `lalr-chaos` — deterministic fault injection for the service stack.
//!
//! A **failpoint** is a named place in the code (`"daemon.read"`,
//! `"service.compile"`, …) that asks a shared [`FaultInjector`] whether a
//! fault should fire *this time*. The injector answers from a
//! [`FaultPlan`]: a set of [`FaultRule`]s, each binding a point to a
//! [`Fault`] and a [`Trigger`]. Trigger decisions are **stateless
//! functions of the seed, the rule, and the per-rule hit index** — never
//! of a shared PRNG stream — so the set of firing hit indices is fully
//! determined by the plan no matter how threads interleave. That is what
//! lets a chaos test assert, after the fact, that the number of injected
//! faults equals the number the schedule demanded ([`FaultPointStats`]
//! carries both `injected` and the recomputed `expected`).
//!
//! The disabled injector is free: [`FaultInjector::disabled`] holds no
//! allocation, and [`FaultInjector::at`] on it is a `None` check — the
//! same gating discipline as `lalr_obs::NULL`, enforced by an
//! allocation-equality test in `lalr-bench` (`chaos_overhead.rs`). Even
//! the *enabled* hot path allocates nothing: rule matching walks a fixed
//! slice and bumps atomics.
//!
//! # Failpoint catalog (the service stack's boundaries)
//!
//! | point             | faults that make sense there                     |
//! |-------------------|--------------------------------------------------|
//! | `client.connect`  | `Error` (refused), `Delay`                       |
//! | `client.write`    | `Error`, `PartialWrite`, `Delay`                 |
//! | `client.read`     | `Error`, `Delay`                                 |
//! | `daemon.read`     | `Error` (drop conn), `Delay`, `Garbage`, `Truncate` |
//! | `daemon.write`    | `Error` (eat response), `PartialWrite`, `Delay`  |
//! | `daemon.admit`    | `Error` (force an admission rejection: the request line gets a retryable `throttled` reply) |
//! | `shard.panic`     | `Panic` (crash the event-loop shard mid-request; the supervisor restarts it) |
//! | `service.compile` | `Panic`, `Delay`, `Error`                        |
//! | `service.parse`   | `Panic`, `Delay`, `Error`                        |
//! | `service.parse.doc` | `Error` (abort the whole batch at a document boundary) |
//! | `cache.storm`     | `EvictAll`                                       |
//! | `store.write`     | `Error` (publish fails), `Truncate` (torn file), `PartialWrite`, `Garbage`, `Delay` |
//! | `store.read`      | `Garbage` (corrupt bytes, checksum-rejected), `Delay` |
//!
//! # Examples
//!
//! ```
//! use lalr_chaos::{Fault, FaultPlan, Trigger};
//!
//! // Panic the first compile, delay every 3rd daemon read by 2 ms.
//! let faults = FaultPlan::new(42)
//!     .rule("service.compile", Fault::Panic, Trigger::OnHits(vec![1]))
//!     .rule("daemon.read", Fault::Delay(2), Trigger::EveryNth(3))
//!     .build();
//! assert_eq!(faults.at("service.compile"), Some(Fault::Panic));
//! assert_eq!(faults.at("service.compile"), None); // only hit #1 fires
//! for stat in faults.stats() {
//!     assert_eq!(stat.injected, stat.expected);
//! }
//! // The same plan parses from the CLI spec syntax.
//! let parsed = FaultPlan::parse("service.compile:panic:@1,daemon.read:delay-2:%3", 42).unwrap();
//! assert_eq!(parsed.build().at("service.compile"), Some(Fault::Panic));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an injected error (I/O boundaries return
    /// [`injected_io_error`]; the compile worker returns a structured
    /// failure).
    Error,
    /// Write only a prefix of the payload, then fail — the peer sees a
    /// line truncated mid-way.
    PartialWrite,
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// Corrupt the payload into protocol garbage before processing it.
    Garbage,
    /// Process the input but drop the connection before responding.
    Truncate,
    /// Panic with a recognizable `"injected fault"` message.
    Panic,
    /// Evict every committed cache entry (an eviction storm).
    EvictAll,
}

impl Fault {
    /// Stable label used in metrics and the spec syntax
    /// (`delay-N` carries its argument).
    pub fn label(&self) -> String {
        match self {
            Fault::Error => "error".to_string(),
            Fault::PartialWrite => "partial".to_string(),
            Fault::Delay(ms) => format!("delay-{ms}"),
            Fault::Garbage => "garbage".to_string(),
            Fault::Truncate => "truncate".to_string(),
            Fault::Panic => "panic".to_string(),
            Fault::EvictAll => "evict".to_string(),
        }
    }

    fn parse(s: &str) -> Result<Fault, String> {
        if let Some(ms) = s.strip_prefix("delay-") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("bad delay milliseconds in {s:?}"))?;
            return Ok(Fault::Delay(ms));
        }
        match s {
            "error" => Ok(Fault::Error),
            "partial" => Ok(Fault::PartialWrite),
            "garbage" => Ok(Fault::Garbage),
            "truncate" => Ok(Fault::Truncate),
            "panic" => Ok(Fault::Panic),
            "evict" => Ok(Fault::EvictAll),
            other => Err(format!(
                "unknown fault {other:?} (available: error, partial, delay-N, garbage, \
                 truncate, panic, evict)"
            )),
        }
    }
}

/// When an armed failpoint fires, as a pure function of the hit index.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Fire with this probability, decided per hit by a stateless hash of
    /// `(seed, rule, hit index)` — deterministic, but pattern-free.
    Rate(f64),
    /// Fire on every `n`-th hit (hit indices are 1-based).
    EveryNth(u64),
    /// Fire exactly on these 1-based hit indices (kept sorted).
    OnHits(Vec<u64>),
}

impl Trigger {
    fn parse(s: &str) -> Result<Trigger, String> {
        if let Some(n) = s.strip_prefix('%') {
            let n: u64 = n.parse().map_err(|_| format!("bad %N trigger {s:?}"))?;
            if n == 0 {
                return Err("%0 would never fire; use %1 for every hit".to_string());
            }
            return Ok(Trigger::EveryNth(n));
        }
        if let Some(list) = s.strip_prefix('@') {
            let mut hits = Vec::new();
            for part in list.split('+') {
                let n: u64 = part
                    .parse()
                    .map_err(|_| format!("bad hit index {part:?} in trigger {s:?}"))?;
                hits.push(n);
            }
            hits.sort_unstable();
            hits.dedup();
            return Ok(Trigger::OnHits(hits));
        }
        let p: f64 = s.parse().map_err(|_| format!("bad rate {s:?}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("rate {p} is outside [0, 1]"));
        }
        Ok(Trigger::Rate(p))
    }
}

/// One armed failpoint: fire `fault` at `point` whenever `trigger` says.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The failpoint name (see the catalog in the crate docs).
    pub point: String,
    /// What to do when the rule fires.
    pub fault: Fault,
    /// Which hit indices fire.
    pub trigger: Trigger,
}

/// A seeded set of [`FaultRule`]s; build one, then [`FaultPlan::build`]
/// the shared [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the stateless [`Trigger::Rate`] decisions.
    pub seed: u64,
    /// The armed rules, in declaration order (earlier rules win when two
    /// fire on the same hit).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, point: &str, fault: Fault, trigger: Trigger) -> FaultPlan {
        self.rules.push(FaultRule {
            point: point.to_string(),
            fault,
            trigger,
        });
        self
    }

    /// Parses the CLI spec syntax: comma-separated
    /// `point:fault:trigger` entries, where `fault` is one of
    /// `error | partial | delay-N | garbage | truncate | panic | evict`
    /// and `trigger` is a rate (`0.05`), every-nth (`%3`), or an explicit
    /// 1-based hit list (`@1+4+9`).
    ///
    /// ```
    /// let plan = lalr_chaos::FaultPlan::parse(
    ///     "daemon.write:partial:0.05,service.compile:panic:@1",
    ///     7,
    /// ).unwrap();
    /// assert_eq!(plan.rules.len(), 2);
    /// ```
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.splitn(3, ':');
            let (point, fault, trigger) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(f), Some(t)) if !p.is_empty() => (p, f, t),
                _ => {
                    return Err(format!(
                        "bad fault spec entry {entry:?} (want point:fault:trigger)"
                    ))
                }
            };
            plan.rules.push(FaultRule {
                point: point.to_string(),
                fault: Fault::parse(fault)?,
                trigger: Trigger::parse(trigger)?,
            });
        }
        Ok(plan)
    }

    /// Arms the plan into a shareable injector.
    pub fn build(self) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(Inner {
                hits: (0..self.rules.len()).map(|_| AtomicU64::new(0)).collect(),
                injected: (0..self.rules.len()).map(|_| AtomicU64::new(0)).collect(),
                seed: self.seed,
                rules: self.rules,
            })),
        }
    }
}

/// Counter snapshot for one rule, with the deterministic recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPointStats {
    /// The failpoint name.
    pub point: String,
    /// The fault's [`Fault::label`].
    pub fault: String,
    /// Times the point was evaluated against this rule.
    pub hits: u64,
    /// Times the rule actually fired.
    pub injected: u64,
    /// Times the rule *must* have fired for this many hits — recomputed
    /// from the trigger, independent of the live counters. A correct
    /// injector always reports `injected == expected`.
    pub expected: u64,
}

struct Inner {
    seed: u64,
    rules: Vec<FaultRule>,
    hits: Vec<AtomicU64>,
    injected: Vec<AtomicU64>,
}

impl Inner {
    /// Stateless decision: does rule `idx` fire on (1-based) hit `n`?
    fn fires(&self, idx: usize, n: u64) -> bool {
        match &self.rules[idx].trigger {
            Trigger::Rate(p) => {
                let salt = fnv1a(&self.rules[idx].point)
                    ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let r = mix64(self.seed ^ salt ^ n);
                // 53 high bits → a uniform fraction in [0, 1).
                ((r >> 11) as f64) * (1.0 / 9_007_199_254_740_992.0) < *p
            }
            Trigger::EveryNth(k) => n.is_multiple_of(*k),
            Trigger::OnHits(list) => list.binary_search(&n).is_ok(),
        }
    }

    fn check(&self, point: &str) -> Option<Fault> {
        let mut fired: Option<Fault> = None;
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.point != point {
                continue;
            }
            // Every matching rule consumes a hit even after another rule
            // already fired, so per-rule hit sequences — and therefore
            // the deterministic recompute — do not depend on sibling
            // rules' decisions.
            let n = self.hits[idx].fetch_add(1, Ordering::Relaxed) + 1;
            if self.fires(idx, n) {
                self.injected[idx].fetch_add(1, Ordering::Relaxed);
                if fired.is_none() {
                    fired = Some(rule.fault);
                }
            }
        }
        fired
    }
}

/// The shared failpoint evaluator. Cheap to clone (an `Arc` handle); the
/// default/[`disabled`](FaultInjector::disabled) injector holds nothing
/// and answers every [`at`](FaultInjector::at) with `None`.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("FaultInjector(disabled)"),
            Some(inner) => f
                .debug_struct("FaultInjector")
                .field("seed", &inner.seed)
                .field("rules", &inner.rules.len())
                .field("injected", &self.total_injected())
                .finish(),
        }
    }
}

impl FaultInjector {
    /// The inert injector: no rules, no allocation, `at` is a `None`
    /// check.
    pub const fn disabled() -> FaultInjector {
        FaultInjector { inner: None }
    }

    /// Whether any rules are armed.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Evaluates the named failpoint: counts one hit against every
    /// matching rule and returns the fault to apply, if any fired.
    /// Allocation-free on both the disabled and the armed path.
    #[inline]
    pub fn at(&self, point: &str) -> Option<Fault> {
        let inner = self.inner.as_ref()?;
        inner.check(point)
    }

    /// Per-rule counters plus the deterministic `expected` recompute
    /// (empty when disabled).
    pub fn stats(&self) -> Vec<FaultPointStats> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .rules
            .iter()
            .enumerate()
            .map(|(idx, rule)| {
                let hits = inner.hits[idx].load(Ordering::Relaxed);
                let expected = (1..=hits).filter(|&n| inner.fires(idx, n)).count() as u64;
                FaultPointStats {
                    point: rule.point.clone(),
                    fault: rule.fault.label(),
                    hits,
                    injected: inner.injected[idx].load(Ordering::Relaxed),
                    expected,
                }
            })
            .collect()
    }

    /// Total faults fired across all rules.
    pub fn total_injected(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .injected
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Total injected at one point (summed over that point's rules).
    pub fn injected_at(&self, point: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner
                .rules
                .iter()
                .enumerate()
                .filter(|(_, r)| r.point == point)
                .map(|(idx, _)| inner.injected[idx].load(Ordering::Relaxed))
                .sum(),
        }
    }
}

/// The `io::Error` injected at I/O failpoints — recognizable by its
/// message so tests can tell an injected failure from a real one.
pub fn injected_io_error(point: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {point}"))
}

/// The SplitMix64 finalizer behind [`Trigger::Rate`] decisions — public
/// so the client's retry jitter can be derived from the same stateless
/// primitive (hash of `(seed, attempt)`) instead of a stateful PRNG.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn disabled_injector_is_inert() {
        let faults = FaultInjector::disabled();
        assert!(!faults.is_enabled());
        for _ in 0..100 {
            assert_eq!(faults.at("daemon.read"), None);
        }
        assert!(faults.stats().is_empty());
        assert_eq!(faults.total_injected(), 0);
        assert_eq!(FaultInjector::default().at("x"), None);
    }

    #[test]
    fn on_hits_and_every_nth_fire_exactly_as_scheduled() {
        let faults = FaultPlan::new(0)
            .rule("a", Fault::Error, Trigger::OnHits(vec![2, 5]))
            .rule("b", Fault::Panic, Trigger::EveryNth(3))
            .build();
        let a: Vec<bool> = (1..=6).map(|_| faults.at("a").is_some()).collect();
        assert_eq!(a, [false, true, false, false, true, false]);
        let b: Vec<bool> = (1..=7).map(|_| faults.at("b").is_some()).collect();
        assert_eq!(b, [false, false, true, false, false, true, false]);
        for s in faults.stats() {
            assert_eq!(s.injected, s.expected, "{s:?}");
        }
        assert_eq!(faults.injected_at("a"), 2);
        assert_eq!(faults.injected_at("b"), 2);
    }

    #[test]
    fn rate_schedule_is_deterministic_in_the_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            let faults = FaultPlan::new(seed)
                .rule("p", Fault::Error, Trigger::Rate(0.3))
                .build();
            (0..200).map(|_| faults.at("p").is_some()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seeds diverge");
        let fired = schedule(7).iter().filter(|&&f| f).count();
        assert!((20..=100).contains(&fired), "rate 0.3 over 200: {fired}");
    }

    #[test]
    fn concurrent_hits_keep_injected_equal_to_expected() {
        let faults = StdArc::new(
            FaultPlan::new(99)
                .rule("p", Fault::Error, Trigger::Rate(0.25))
                .rule("p", Fault::Delay(1), Trigger::EveryNth(7))
                .build(),
        );
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let faults = StdArc::clone(&faults);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    for _ in 0..500 {
                        if faults.at("p").is_some() {
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        let observed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let stats = faults.stats();
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.hits, 8 * 500);
            assert_eq!(
                s.injected, s.expected,
                "hit-indexed decisions must be interleaving-independent: {s:?}"
            );
        }
        // `at` reports the first firing rule only, so the observed count
        // is bounded by the sum and at least the max of the two rules.
        let total: u64 = stats.iter().map(|s| s.injected).sum();
        let max = stats.iter().map(|s| s.injected).max().unwrap();
        assert!(
            observed <= total && observed >= max,
            "{observed} vs {stats:?}"
        );
    }

    #[test]
    fn spec_syntax_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::parse(
            "daemon.read:delay-5:%3, daemon.write:partial:0.05,service.compile:panic:@1+4",
            3,
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].fault, Fault::Delay(5));
        assert_eq!(plan.rules[0].trigger, Trigger::EveryNth(3));
        assert_eq!(plan.rules[1].fault, Fault::PartialWrite);
        assert_eq!(plan.rules[1].trigger, Trigger::Rate(0.05));
        assert_eq!(plan.rules[2].trigger, Trigger::OnHits(vec![1, 4]));

        for bad in [
            "daemon.read",
            "daemon.read:error",
            "daemon.read:frobnicate:0.1",
            "daemon.read:error:1.5",
            "daemon.read:error:%0",
            "daemon.read:delay-x:%2",
            ":error:0.1",
            "p:error:@x",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} must not parse");
        }
        // Empty entries (trailing commas) are tolerated.
        assert!(FaultPlan::parse("a:error:0.1,,", 0).is_ok());
        assert!(FaultPlan::parse("", 0).unwrap().rules.is_empty());
    }

    #[test]
    fn labels_and_io_error_are_recognizable() {
        assert_eq!(Fault::Delay(250).label(), "delay-250");
        assert_eq!(Fault::parse("delay-250").unwrap(), Fault::Delay(250));
        assert_eq!(Fault::EvictAll.label(), "evict");
        let e = injected_io_error("daemon.write");
        assert!(e.to_string().contains("injected fault at daemon.write"));
    }
}
