//! Offline, dependency-free JSON shim standing in for `serde_json`.
//!
//! The build environment has no network access, so the real `serde_json`
//! cannot be fetched. This vendored stand-in implements the subset the
//! workspace needs — a dynamic [`Value`] tree, a strict recursive-descent
//! parser ([`from_str`]) and a deterministic writer ([`to_string`]) — and
//! is what the `lalr-service` newline-delimited JSON protocol runs on.
//!
//! Deliberate simplifications versus the real crate:
//!
//! * No serde integration and no derive macros; callers build and match
//!   [`Value`] trees by hand.
//! * Numbers are `f64`. Integers are exact up to 2^53, which covers every
//!   counter the protocol carries; 64-bit fingerprints travel as hex
//!   strings instead.
//! * Objects are `BTreeMap`s, so serialization is key-sorted and
//!   byte-deterministic — a property the service's differential tests
//!   rely on.
//!
//! # Examples
//!
//! ```
//! use serde_json::{from_str, Value};
//!
//! let v = from_str(r#"{"op":"compile","ok":true,"n":3}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Value::as_str), Some("compile"));
//! assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
//! let round = v.to_string();
//! assert_eq!(from_str(&round).unwrap(), v);
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts; a guard against stack
/// exhaustion from adversarial input on the TCP protocol.
const MAX_DEPTH: usize = 128;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps serialization key-sorted.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

/// Builds an object value from key/value pairs (insertion order is
/// irrelevant; objects serialize key-sorted).
pub fn object<I>(pairs: I) -> Value
where
    I: IntoIterator<Item = (&'static str, Value)>,
{
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn from_str(src: &str) -> Result<Value, Error> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Serializes a value on one line (no added whitespace) — ready for the
/// newline-delimited protocol framing.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object_value(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object_value(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: accept a following low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.src.get(self.pos..self.pos + 2) == Some(b"\\u".as_slice()) {
                                    let lo_hex = self
                                        .src
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    self.pos += 6;
                                    let joined = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(joined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u code point"))?);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = from_str(src).unwrap();
            assert_eq!(from_str(&v.to_string()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn objects_serialize_key_sorted() {
        let v = from_str(r#"{"b":1, "a":[1,2,{"z":null}]}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2,{"z":null}],"b":1}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{1}";
        let v = Value::Str(original.to_string());
        let text = v.to_string();
        assert_eq!(from_str(&text).unwrap(), v);
        // And parsing the standard escapes:
        let v = from_str(r#""a\u0041\n\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\né😀");
    }

    #[test]
    fn numbers_are_exact_integers() {
        let v = from_str("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740992));
        assert_eq!(v.to_string(), "9007199254740992");
        assert_eq!(from_str("1.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for src in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\x\"",
            "\"unterminated",
            "{\"a\":}",
            "[,]",
            "nan",
            "1e999",
        ] {
            assert!(from_str(src).is_err(), "{src:?} must not parse");
        }
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn object_builder_and_accessors() {
        let v = object([
            ("ok", Value::Bool(true)),
            ("n", 42u64.into()),
            ("name", "expr".into()),
        ]);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("expr"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.to_string(), r#"{"n":42,"name":"expr","ok":true}"#);
    }
}
