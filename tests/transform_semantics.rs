//! Language-preservation tests for the grammar transformations, using the
//! sentence sampler as the witness generator and LALR parsers as the
//! membership oracles.

use lalr::corpus::sentences::generate_many;
use lalr::grammar::transform::{reduce, remove_epsilon};
use lalr::prelude::*;
use lalr::runtime::Token;

/// A membership oracle for `grammar`'s language, or `None` when the
/// grammar is not adequate under plain LALR(1) (no oracle then).
fn oracle(grammar: &Grammar) -> Option<(ParseTable, Grammar)> {
    let lr0 = Lr0Automaton::build(grammar);
    let analysis = LalrAnalysis::compute(grammar, &lr0);
    if !analysis.conflicts(grammar, &lr0).is_empty() {
        return None;
    }
    Some((
        build_table(
            grammar,
            &lr0,
            analysis.lookaheads(),
            TableOptions::default(),
        ),
        grammar.clone(),
    ))
}

/// Re-encodes a sentence of `from` into tokens of `to` by terminal *name*
/// (transformations re-intern symbols, so indices shift).
fn reencode(
    sentence: &[lalr::grammar::Terminal],
    from: &Grammar,
    to: &ParseTable,
) -> Option<Vec<Token>> {
    sentence
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            to.terminal_by_name(from.terminal_name(t))
                .map(|idx| Token::new(idx, from.terminal_name(t), i))
        })
        .collect()
}

#[test]
fn epsilon_removal_preserves_nonempty_sentences() {
    // Note: ε-removal does not preserve *unambiguity* in general (e.g.
    // `s : a s a` with nullable `a` becomes ambiguous), so the oracle-based
    // check uses grammars whose transformed form stays LALR(1)-adequate.
    let sources = [
        "s : a s | \"x\" ; a : \"y\" | ;",
        "s : b \"end\" ; b : \"t\" b | ;",
        "s : a b c ; a : \"1\" | ; b : \"2\" | ; c : \"3\" | ;",
    ];
    for src in sources {
        let g = parse_grammar(src).unwrap();
        let g2 = remove_epsilon(&g).expect("removable");
        let Some((table2, _)) = oracle(&g2) else {
            panic!("{src}: transformed grammar must stay adequate here");
        };
        let parser = Parser::new(&table2);
        let mut checked = 0;
        for sentence in generate_many(&g, 5, 60, 25) {
            if sentence.is_empty() {
                continue; // ε is the one string legitimately lost
            }
            let toks =
                reencode(&sentence, &g, &table2).expect("transformed grammar keeps used terminals");
            assert!(
                parser.parse(toks).is_ok(),
                "{src}: sentence lost by ε-removal: {:?}",
                sentence
                    .iter()
                    .map(|&t| g.terminal_name(t))
                    .collect::<Vec<_>>()
            );
            checked += 1;
        }
        assert!(checked > 10, "{src}: enough non-empty samples ({checked})");
    }
}

#[test]
fn epsilon_removal_introduces_no_new_sentences() {
    let src = "s : a \"m\" a ; a : \"y\" | ;";
    let g = parse_grammar(src).unwrap();
    let g2 = remove_epsilon(&g).unwrap();
    let (table, _) = oracle(&g).expect("original adequate");
    let parser = Parser::new(&table);
    for sentence in generate_many(&g2, 17, 60, 25) {
        let toks = reencode(&sentence, &g2, &table).expect("same terminal names");
        assert!(
            parser.parse(toks).is_ok(),
            "ε-removal invented a sentence: {:?}",
            sentence
                .iter()
                .map(|&t| g2.terminal_name(t))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn reduction_preserves_the_language_both_ways() {
    // u is unproductive, dead unreachable; the trimmed grammar must accept
    // exactly the same strings.
    let src = "s : \"a\" s | \"b\" | u ; u : u \"x\" ; dead : \"d\" ;";
    let g = parse_grammar(src).unwrap();
    let out = reduce(&g).unwrap();
    let (t1, _) = oracle(&g).expect("original adequate");
    let (t2, _) = oracle(&out.grammar).expect("reduced adequate");

    for sentence in generate_many(&g, 3, 40, 25) {
        let toks = reencode(&sentence, &g, &t2).expect("kept terminals suffice");
        assert!(Parser::new(&t2).parse(toks).is_ok(), "lost by reduction");
    }
    for sentence in generate_many(&out.grammar, 4, 40, 25) {
        let toks = reencode(&sentence, &out.grammar, &t1).expect("subset of terminals");
        assert!(
            Parser::new(&t1).parse(toks).is_ok(),
            "invented by reduction"
        );
    }
}
