//! Hostile-client hardening of the epoll event-loop daemon: abusive
//! connection patterns must be survived with *exact* admission-reject
//! accounting — every rejection is explicit (a structured error line or
//! a counted close), never a silent drop — and the daemon keeps serving
//! well-behaved traffic throughout.
//!
//! Every test is gated on `lalr_net::supported()` so the suite stays
//! green on platforms without the raw epoll backend.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use lalr_service::client::{self, ClientReply};
use lalr_service::protocol::request_to_line;
use lalr_service::{
    call_with_retry, DaemonConfig, EventDaemon, Fault, FaultPlan, GrammarFormat, Request,
    RetryPolicy, ServiceConfig, Trigger,
};

use serde_json::Value;

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

fn call(addr: &str, request: &Request) -> ClientReply {
    client::call(addr, request, None, Duration::from_secs(30)).expect("daemon reachable")
}

/// Fetches the `health` op's admission-reject counter `key`.
fn admission_reject(addr: &str, key: &str) -> u64 {
    let reply = call(addr, &Request::Health);
    assert!(reply.is_ok(), "{}", reply.raw);
    reply
        .value
        .get("admission_rejects")
        .and_then(|r| r.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("no admission_rejects.{key} in {}", reply.raw))
}

fn error_kind(line: &str) -> String {
    let v: Value = serde_json::from_str(line.trim_end())
        .unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"));
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no error.kind in {line:?}"))
        .to_string()
}

#[test]
fn byte_at_a_time_writer_still_gets_its_answer() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            ..DaemonConfig::default()
        },
        1,
    )
    .unwrap();

    // The request dribbles in one byte at a time; the daemon must
    // assemble the line across dozens of tiny reads and answer it.
    let line = format!("{}\n", request_to_line(&compile_request(), None));
    let mut stream = TcpStream::connect(daemon.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for &b in line.as_bytes() {
        stream.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let v: Value = serde_json::from_str(reply.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");

    drop(reader);
    daemon.stop();
    let summary = daemon.join();
    assert_eq!(summary.aborted, 0, "{summary:?}");
    assert_eq!(summary.restarts, 0, "{summary:?}");
}

#[test]
fn connect_and_never_write_is_idled_out_cleanly() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_millis(300),
            ..DaemonConfig::default()
        },
        1,
    )
    .unwrap();
    let addr = daemon.addr().to_string();

    // Three connections that never send a byte: each must be closed at
    // the idle timeout, observed here as EOF well before the test's
    // own read timeout.
    let started = Instant::now();
    let conns: Vec<TcpStream> = (0..3)
        .map(|_| TcpStream::connect(daemon.addr()).unwrap())
        .collect();
    for mut c in conns {
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 64];
        assert_eq!(c.read(&mut buf).unwrap(), 0, "expected idle-out EOF");
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle connections lingered {:?}",
        started.elapsed()
    );

    // The daemon still serves real work afterwards.
    let reply = call(&addr, &compile_request());
    assert!(reply.is_ok(), "{}", reply.raw);
    daemon.stop();
    let summary = daemon.join();
    assert_eq!(summary.aborted, 0, "{summary:?}");
}

/// A grammar whose uncompressed table response is large, so a handful
/// of pipelined table requests overflow any kernel socket buffering.
fn chunky_grammar() -> String {
    let mut g = String::from("s :");
    for i in 0..80 {
        if i > 0 {
            g.push_str(" |");
        }
        g.push_str(&format!(" a{i}"));
    }
    g.push_str(" ;\n");
    for i in 0..80 {
        g.push_str(&format!("a{i} : \"t{i}\" s | \"t{i}\" ;\n"));
    }
    g
}

#[test]
fn stalled_reader_is_closed_by_the_write_budget() {
    if !lalr_net::supported() {
        return;
    }
    // A long read timeout isolates the mechanism under test: only the
    // slow-client write budget may close the stalled connection.
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(60),
            write_budget: Duration::from_millis(150),
            service: ServiceConfig {
                max_pending: 16384,
                ..ServiceConfig::default()
            },
            ..DaemonConfig::default()
        },
        1,
    )
    .unwrap();
    let addr = daemon.addr().to_string();

    // Size the pipeline off one real response so the queued bytes
    // comfortably exceed whatever the kernel will buffer unread.
    let table = Request::Table {
        grammar: chunky_grammar(),
        format: GrammarFormat::Native,
        compressed: false,
    };
    let probe = call(&addr, &table);
    assert!(probe.is_ok(), "{}", probe.raw);
    let n = ((12 << 20) / probe.raw.len() + 1).min(4000);
    let payload = format!("{}\n", request_to_line(&table, None)).repeat(n);

    let mut stalled = TcpStream::connect(daemon.addr()).unwrap();
    stalled.write_all(payload.as_bytes()).unwrap();
    // Never read a byte: the responses overflow what the kernel will
    // buffer unread, the daemon's write buffer backs up, and the budget
    // clock runs out. Wait for the counted close without draining —
    // reading here would relieve the very backpressure under test.
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let started = Instant::now();
    while admission_reject(&addr, "slow_client") == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "the write budget never fired against a reader that stopped draining"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // The cut is observable client-side: whatever the socket absorbed
    // drains, then EOF or a reset — never a silent wedge.
    let mut sink = [0u8; 1 << 16];
    let closed = loop {
        match stalled.read(&mut sink) {
            Ok(0) => break true,
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break false
            }
            Err(_) => break true,
        }
    };
    assert!(closed, "stalled reader was never closed");

    // Exact accounting: one stalled connection, one slow-client close.
    assert_eq!(admission_reject(&addr, "slow_client"), 1);
    daemon.stop();
    daemon.join();
}

#[test]
fn peer_quota_flood_is_rejected_with_exact_accounting() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections_per_peer: 2,
            ..DaemonConfig::default()
        },
        2,
    )
    .unwrap();
    let addr = daemon.addr().to_string();

    // Two holders occupy the whole quota for 127.0.0.1.
    let holders: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(daemon.addr()).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    // Every further connection gets a fast, explicit, retryable
    // rejection line — never a silent drop — followed by EOF.
    for i in 0..3 {
        let flood = TcpStream::connect(daemon.addr()).unwrap();
        flood
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(flood);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(error_kind(&line), "throttled", "flood conn {i}: {line}");
        assert!(line.contains("per-peer connection quota"), "{line}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{line}");
    }

    // Releasing a holder frees its slot: the next connection is served.
    drop(holders);
    let policy = RetryPolicy {
        retries: 20,
        backoff: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        seed: 7,
    };
    let reply = call_with_retry(
        &addr,
        &compile_request(),
        None,
        Duration::from_secs(30),
        &policy,
        &lalr_service::FaultInjector::disabled(),
    )
    .expect("slot freed after holder closed");
    assert!(reply.is_ok(), "{}", reply.raw);

    // Exactly the three flood connections were counted, and the quota
    // echo in the health report matches the configuration.
    assert_eq!(admission_reject(&addr, "peer_quota"), 3);
    let health = call(&addr, &Request::Health);
    assert_eq!(
        health
            .value
            .get("max_connections_per_peer")
            .and_then(Value::as_u64),
        Some(2),
        "{}",
        health.raw
    );
    daemon.stop();
    let summary = daemon.join();
    assert_eq!(summary.aborted, 0, "{summary:?}");
}

#[test]
fn rate_limited_lines_are_throttled_with_exact_accounting() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            rate_limit_per_sec: 2,
            rate_limit_burst: 2,
            ..DaemonConfig::default()
        },
        1,
    )
    .unwrap();
    let addr = daemon.addr().to_string();

    // Five pipelined requests arrive in one write: the two burst tokens
    // admit two, the other three get retryable `throttled` lines (the
    // sub-millisecond pipeline outruns the 2/s refill).
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let line = format!("{}\n", request_to_line(&Request::Stats, None));
    writer.write_all(line.repeat(5).as_bytes()).unwrap();

    let mut throttled = 0;
    let mut ok = 0;
    let mut reply = String::new();
    for _ in 0..5 {
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        let v: Value = serde_json::from_str(reply.trim_end()).unwrap();
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            ok += 1;
        } else {
            assert_eq!(error_kind(&reply), "throttled", "{reply}");
            assert!(reply.contains("request rate limit"), "{reply}");
            throttled += 1;
        }
    }
    assert_eq!((ok, throttled), (2, 3));
    drop(writer);
    drop(reader);

    // The bucket refills while we wait, so the health probe itself is
    // admitted and the counter equals exactly the observed rejections.
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(admission_reject(&addr, "rate_limit"), 3);
    daemon.stop();
    daemon.join();
}

#[test]
fn injected_shard_panic_restarts_the_shard_and_the_retry_converges() {
    if !lalr_net::supported() {
        return;
    }
    // The first request line trips the shard.panic failpoint: the whole
    // shard unwinds mid-pump. The supervisor must respawn it and the
    // client's retry — a fresh connection through the re-registered
    // listener — must get the real answer.
    let faults = FaultPlan::new(5)
        .rule("shard.panic", Fault::Panic, Trigger::OnHits(vec![1]))
        .build();
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            faults: faults.clone(),
            ..DaemonConfig::default()
        },
        1,
    )
    .unwrap();
    let addr = daemon.addr().to_string();

    let policy = RetryPolicy {
        retries: 20,
        backoff: Duration::from_millis(10),
        cap: Duration::from_millis(100),
        seed: 5,
    };
    let reply = call_with_retry(
        &addr,
        &compile_request(),
        None,
        Duration::from_secs(30),
        &policy,
        &lalr_service::FaultInjector::disabled(),
    )
    .expect("retry must converge across the shard restart");
    assert!(reply.is_ok(), "{}", reply.raw);
    assert!(reply.attempts >= 2, "the panic cost at least one attempt");
    assert_eq!(faults.injected_at("shard.panic"), 1);

    // The restart is visible over the protocol and in the summary.
    let health = call(&addr, &Request::Health);
    assert_eq!(
        health.value.get("shard_restarts").and_then(Value::as_u64),
        Some(1),
        "{}",
        health.raw
    );
    daemon.stop();
    let summary = daemon.join();
    assert_eq!(summary.restarts, 1, "{summary:?}");
}
