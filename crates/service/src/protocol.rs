//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Requests are objects
//! with an `"op"` discriminator; responses carry `"ok"` plus either the
//! op's payload or an `"error"` object. Serialization is key-sorted
//! (see the vendored `serde_json` shim), so equal responses are equal
//! byte strings — the property the soak test's differential comparison
//! uses.
//!
//! ```text
//! → {"op":"compile","grammar":"e : \"x\" ;"}
//! ← {"class":"LR(0)","fingerprint":"…","ok":true,"op":"compile",…}
//! → {"op":"parse","grammar":"…","input":"NUM + NUM","deadline_ms":500}
//! ← {"accepted":true,"ok":true,"op":"parse","tree":"(e …)"}
//! ```

use std::time::Duration;

use serde_json::{object, Value};

use crate::artifact::GrammarFormat;
use crate::error::ServiceError;
use crate::service::{Request, Response, StatsSnapshot};

/// Encodes a request (plus optional per-request deadline) as one JSON
/// value.
pub fn request_to_value(request: &Request, deadline: Option<Duration>) -> Value {
    let mut pairs: Vec<(&'static str, Value)> = vec![("op", request.op().into())];
    let format_pair = |format: &GrammarFormat| -> Option<(&'static str, Value)> {
        matches!(format, GrammarFormat::Yacc).then_some(("yacc", Value::Bool(true)))
    };
    match request {
        Request::Compile { grammar, format } | Request::Classify { grammar, format } => {
            pairs.push(("grammar", grammar.as_str().into()));
            pairs.extend(format_pair(format));
        }
        Request::Table {
            grammar,
            format,
            compressed,
        } => {
            pairs.push(("grammar", grammar.as_str().into()));
            pairs.extend(format_pair(format));
            if *compressed {
                pairs.push(("compressed", Value::Bool(true)));
            }
        }
        Request::Parse {
            grammar,
            format,
            input,
        } => {
            pairs.push(("grammar", grammar.as_str().into()));
            pairs.extend(format_pair(format));
            pairs.push(("input", input.as_str().into()));
        }
        Request::Stats | Request::Metrics | Request::Shutdown => {}
    }
    if let Some(d) = deadline {
        pairs.push(("deadline_ms", (d.as_millis() as u64).into()));
    }
    object(pairs)
}

/// Decodes a request line.
pub fn request_from_value(value: &Value) -> Result<(Request, Option<Duration>), ServiceError> {
    let bad = |m: &str| ServiceError::BadRequest(m.to_string());
    let obj = value
        .as_obj()
        .ok_or_else(|| bad("request must be an object"))?;
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing string field \"op\""))?;
    let grammar = || -> Result<String, ServiceError> {
        Ok(value
            .get("grammar")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field \"grammar\""))?
            .to_string())
    };
    let format = if value.get("yacc").and_then(Value::as_bool).unwrap_or(false) {
        GrammarFormat::Yacc
    } else {
        GrammarFormat::Native
    };
    let request = match op {
        "compile" => Request::Compile {
            grammar: grammar()?,
            format,
        },
        "classify" => Request::Classify {
            grammar: grammar()?,
            format,
        },
        "table" => Request::Table {
            grammar: grammar()?,
            format,
            compressed: value
                .get("compressed")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        },
        "parse" => Request::Parse {
            grammar: grammar()?,
            format,
            input: value
                .get("input")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("missing string field \"input\""))?
                .to_string(),
        },
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(ServiceError::BadRequest(format!(
                "unknown op {other:?} (available: compile, classify, table, parse, stats, \
                 metrics, shutdown)"
            )))
        }
    };
    let deadline = match obj.get("deadline_ms") {
        None => None,
        Some(v) => {
            Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
                bad("\"deadline_ms\" must be a non-negative integer")
            })?))
        }
    };
    Ok((request, deadline))
}

/// Encodes a response as one JSON value.
pub fn response_to_value(response: &Response) -> Value {
    match response {
        Response::Compile(c) => object([
            ("ok", Value::Bool(true)),
            ("op", "compile".into()),
            ("fingerprint", c.fingerprint.as_str().into()),
            ("cached", Value::Bool(c.cached)),
            ("states", c.states.into()),
            ("productions", c.productions.into()),
            ("terminals", c.terminals.into()),
            ("conflicts", c.conflicts.into()),
            ("class", c.class.as_str().into()),
            ("bytes", c.bytes.into()),
            (
                "relations",
                object([
                    ("nt_transitions", c.relations.nt_transitions.into()),
                    ("reads_edges", c.relations.reads_edges.into()),
                    ("includes_edges", c.relations.includes_edges.into()),
                    ("lookback_edges", c.relations.lookback_edges.into()),
                ]),
            ),
            (
                "reads",
                object([
                    ("sccs", c.reads.scc_count.into()),
                    ("nontrivial_sccs", c.reads.nontrivial_sccs.into()),
                    ("max_scc", c.reads.max_scc_size.into()),
                    ("cyclic_nodes", c.reads.cyclic_nodes.into()),
                ]),
            ),
            (
                "includes",
                object([
                    ("sccs", c.includes.scc_count.into()),
                    ("nontrivial_sccs", c.includes.nontrivial_sccs.into()),
                    ("max_scc", c.includes.max_scc_size.into()),
                    ("cyclic_nodes", c.includes.cyclic_nodes.into()),
                ]),
            ),
        ]),
        Response::Classify(c) => object([
            ("ok", Value::Bool(true)),
            ("op", "classify".into()),
            ("class", c.class.as_str().into()),
            ("lr0_conflicts", c.lr0_conflicts.into()),
            ("slr_conflicts", c.slr_conflicts.into()),
            ("nqlalr_conflicts", c.nqlalr_conflicts.into()),
            ("lalr_conflicts", c.lalr_conflicts.into()),
            ("lr1_conflicts", c.lr1_conflicts.into()),
            ("not_lr_k", Value::Bool(c.not_lr_k)),
        ]),
        Response::Table(t) => {
            let mut pairs = vec![
                ("ok", Value::Bool(true)),
                ("op", "table".into()),
                ("text", t.text.as_str().into()),
                ("resolutions", t.resolutions.into()),
                ("action_entries", t.action_entries.into()),
            ];
            if let Some(n) = t.compressed_entries {
                pairs.push(("compressed_entries", n.into()));
            }
            object(pairs)
        }
        Response::Parse(p) => {
            let mut pairs = vec![
                ("ok", Value::Bool(true)),
                ("op", "parse".into()),
                ("accepted", Value::Bool(p.accepted)),
            ];
            if let Some(tree) = &p.tree {
                pairs.push(("tree", tree.as_str().into()));
            }
            if let Some(error) = &p.error {
                pairs.push(("error", error.as_str().into()));
            }
            object(pairs)
        }
        Response::Stats(s) => stats_to_value(s),
        Response::Metrics(text) => object([
            ("ok", Value::Bool(true)),
            ("op", "metrics".into()),
            ("text", text.as_str().into()),
        ]),
        Response::Shutdown => object([("ok", Value::Bool(true)), ("op", "shutdown".into())]),
        Response::Error(e) => object([
            ("ok", Value::Bool(false)),
            ("op", "error".into()),
            (
                "error",
                object([("kind", e.kind().into()), ("message", e.to_string().into())]),
            ),
        ]),
    }
}

fn stats_to_value(s: &StatsSnapshot) -> Value {
    let op_counts = |counts: &[u64; 7]| {
        Value::Obj(
            crate::service::OPS
                .iter()
                .zip(counts)
                .map(|(name, &n)| (name.to_string(), n.into()))
                .collect(),
        )
    };
    let latency = Value::Arr(s.latency_buckets.iter().map(|&n| n.into()).collect());
    let phases = Value::Obj(
        crate::service::PHASE_NAMES
            .iter()
            .zip(s.phase_calls.iter().zip(&s.phase_ns))
            .map(|(name, (&calls, &ns))| {
                (
                    name.to_string(),
                    object([("calls", calls.into()), ("total_us", (ns / 1_000).into())]),
                )
            })
            .collect(),
    );
    let mut pairs = vec![
        ("ok", Value::Bool(true)),
        ("op", "stats".into()),
        ("requests", s.requests.into()),
        ("errors", s.errors.into()),
        ("deadline_exceeded", s.deadline_exceeded.into()),
        ("by_op", op_counts(&s.by_op)),
        ("errors_by_op", op_counts(&s.errors_by_op)),
        ("latency_buckets", latency),
        ("phases", phases),
        ("shed", s.shed.into()),
        ("queue_depth", s.queue_depth.into()),
        ("queue_limit", s.queue_limit.into()),
        ("workers", s.workers.into()),
        ("uptime_ms", s.uptime_ms.into()),
    ];
    if !s.faults.is_empty() {
        pairs.push((
            "faults",
            Value::Arr(
                s.faults
                    .iter()
                    .map(|f| {
                        object([
                            ("point", f.point.as_str().into()),
                            ("fault", f.fault.as_str().into()),
                            ("hits", f.hits.into()),
                            ("injected", f.injected.into()),
                            ("expected", f.expected.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if let Some(c) = &s.cache {
        pairs.push((
            "cache",
            object([
                ("hits", c.hits.into()),
                ("misses", c.misses.into()),
                ("coalesced", c.coalesced.into()),
                ("evictions", c.evictions.into()),
                ("compiles", c.compiles.into()),
                ("entries", c.entries.into()),
                ("bytes", c.bytes.into()),
                ("hit_rate", c.hit_rate().into()),
            ]),
        ));
    }
    object(pairs)
}

/// Encodes a response as one protocol line (no trailing newline).
pub fn response_to_line(response: &Response) -> String {
    response_to_value(response).to_string()
}

/// Encodes a request as one protocol line (no trailing newline).
pub fn request_to_line(request: &Request, deadline: Option<Duration>) -> String {
    request_to_value(request, deadline).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(request: Request, deadline: Option<Duration>) {
        let line = request_to_line(&request, deadline);
        let value = serde_json::from_str(&line).unwrap();
        let (back, d) = request_from_value(&value).unwrap();
        assert_eq!(back, request, "{line}");
        assert_eq!(d, deadline, "{line}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip(
            Request::Compile {
                grammar: "e : \"x\" ;\n// comment with \"quotes\"".to_string(),
                format: GrammarFormat::Native,
            },
            None,
        );
        round_trip(
            Request::Classify {
                grammar: "%token A\n%%\ns : A ;".to_string(),
                format: GrammarFormat::Yacc,
            },
            Some(Duration::from_millis(250)),
        );
        round_trip(
            Request::Table {
                grammar: "s : \"a\" ;".to_string(),
                format: GrammarFormat::Native,
                compressed: true,
            },
            None,
        );
        round_trip(
            Request::Parse {
                grammar: "s : \"a\" ;".to_string(),
                format: GrammarFormat::Native,
                input: "a".to_string(),
            },
            None,
        );
        round_trip(Request::Stats, None);
        round_trip(Request::Metrics, None);
        round_trip(Request::Shutdown, None);
    }

    #[test]
    fn unknown_op_lists_available_ops() {
        let v = serde_json::from_str(r#"{"op":"frobnicate"}"#).unwrap();
        let err = request_from_value(&v).unwrap_err();
        assert!(err.to_string().contains("available: compile"), "{err}");
    }

    #[test]
    fn missing_fields_are_structured_errors() {
        for line in [
            r#"{"grammar":"x"}"#,
            r#"{"op":"compile"}"#,
            r#"{"op":"parse","grammar":"s : \"a\" ;"}"#,
            r#"{"op":"compile","grammar":"x","deadline_ms":-1}"#,
            r#"[1,2]"#,
        ] {
            let v = serde_json::from_str(line).unwrap();
            assert!(request_from_value(&v).is_err(), "{line}");
        }
    }

    #[test]
    fn error_responses_carry_kind_and_message() {
        let r = Response::Error(ServiceError::TooLarge {
            size: 100,
            limit: 10,
        });
        let line = response_to_line(&r);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("kind").and_then(Value::as_str), Some("too_large"));
    }
}
