// An Ada-83 subset: compilation units, subprograms, packages,
// declarations, statements and expressions. Follows the LRM shape with
// simplifications; Ada's reference grammar is famously LALR(1).
%start compilation

compilation : compilation_unit | compilation compilation_unit ;

compilation_unit : context_clause library_item ;
context_clause : %empty | context_clause with_clause ;
with_clause : WITH name_list ";" | USE name_list ";" ;
name_list : name_ | name_list "," name_ ;

library_item : subprogram_body | package_decl | package_body ;

package_decl
    : PACKAGE IDENT IS basic_decls END_KW ";"
    | PACKAGE IDENT IS basic_decls PRIVATE basic_decls END_KW ";"
    ;
package_body : PACKAGE BODY IDENT IS decl_part BEGIN_KW stmt_seq END_KW ";" ;

subprogram_spec
    : PROCEDURE IDENT formal_part
    | FUNCTION IDENT formal_part RETURN name_
    ;
formal_part : %empty | "(" param_specs ")" ;
param_specs : param_spec | param_specs ";" param_spec ;
param_spec  : id_list ":" mode_ name_ ;
mode_ : %empty | IN | OUT | IN OUT ;
id_list : IDENT | id_list "," IDENT ;

subprogram_body : subprogram_spec IS decl_part BEGIN_KW stmt_seq END_KW ";" ;

decl_part : %empty | decl_part basic_decl ;
basic_decls : %empty | basic_decls basic_decl ;

basic_decl
    : object_decl
    | type_decl
    | subtype_decl
    | subprogram_body
    | subprogram_spec ";"
    ;

object_decl : id_list ":" name_ ";" | id_list ":" CONSTANT name_ ASSIGN expression ";" | id_list ":" name_ ASSIGN expression ";" ;

type_decl
    : TYPE IDENT IS type_def ";"
    ;
type_def
    : RANGE simple_expr DOTDOT simple_expr
    | ARRAY "(" discrete_range ")" OF name_
    | RECORD component_list END_KW RECORD
    | ACCESS name_
    | "(" id_list ")"
    ;
discrete_range : name_ | simple_expr DOTDOT simple_expr ;
component_list : component_decl | component_list component_decl ;
component_decl : id_list ":" name_ ";" ;

subtype_decl : SUBTYPE IDENT IS name_ constraint_ ";" ;
constraint_ : %empty | RANGE simple_expr DOTDOT simple_expr ;

stmt_seq : statement | stmt_seq statement ;

statement
    : null_stmt
    | assignment
    | if_stmt
    | case_stmt
    | loop_stmt
    | exit_stmt
    | return_stmt
    | proc_call_stmt
    | block_stmt
    ;

null_stmt  : NULL_KW ";" ;
assignment : name_ ASSIGN expression ";" ;

if_stmt
    : IF condition THEN stmt_seq elsif_list else_part END_KW IF ";"
    ;
elsif_list : %empty | elsif_list ELSIF condition THEN stmt_seq ;
else_part  : %empty | ELSE stmt_seq ;
condition  : expression ;

case_stmt : CASE expression IS alternatives END_KW CASE ";" ;
alternatives : alternative | alternatives alternative ;
alternative : WHEN choice_list ARROW stmt_seq ;
choice_list : choice_ | choice_list "|" choice_ ;
choice_ : simple_expr | OTHERS ;

loop_stmt
    : LOOP stmt_seq END_KW LOOP ";"
    | WHILE condition LOOP stmt_seq END_KW LOOP ";"
    | FOR IDENT IN discrete_range LOOP stmt_seq END_KW LOOP ";"
    ;
exit_stmt : EXIT ";" | EXIT WHEN condition ";" ;
return_stmt : RETURN ";" | RETURN expression ";" ;

proc_call_stmt : name_ ";" ;
block_stmt : DECLARE decl_part BEGIN_KW stmt_seq END_KW ";" | BEGIN_KW stmt_seq END_KW ";" ;

name_
    : IDENT
    | name_ "." IDENT
    | name_ "(" expr_list ")"
    | name_ "'" IDENT
    ;
expr_list : expression | expr_list "," expression ;

expression
    : relation_
    | expression AND relation_
    | expression OR relation_
    | expression XOR relation_
    ;
relation_ : simple_expr | simple_expr relop simple_expr ;
relop : "=" | NE | "<" | LE | ">" | GE ;

simple_expr : term_ | simple_expr addop term_ | unary_sign term_ ;
addop : "+" | "-" | "&" ;
unary_sign : "+" | "-" ;

term_ : factor_ | term_ mulop factor_ ;
mulop : "*" | "/" | MOD | REM ;

factor_ : primary_ | primary_ POW primary_ | ABS primary_ | NOT primary_ ;

primary_
    : NUMERIC_LITERAL
    | STRING_LITERAL
    | CHARACTER_LITERAL
    | name_
    | "(" expression ")"
    ;
