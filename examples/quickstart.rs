//! Quickstart: grammar text → look-aheads → table → parse tree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lalr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small expression grammar in the yacc-like text format.
    let grammar = parse_grammar(
        r#"
        expr : expr "+" term | term ;
        term : term "*" atom | atom ;
        atom : "(" expr ")" | NUM ;
        "#,
    )?;
    println!("grammar:\n{grammar}");

    // The LR(0) machine the paper computes look-aheads on.
    let lr0 = Lr0Automaton::build(&grammar);
    println!("LR(0) states: {}", lr0.state_count());

    // DeRemer-Pennello LALR(1) look-ahead sets.
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    let stats = analysis.relation_stats();
    println!(
        "relations: {} nonterminal transitions, {} reads, {} includes, {} lookback",
        stats.nt_transitions, stats.reads_edges, stats.includes_edges, stats.lookback_edges
    );
    let conflicts = analysis.conflicts(&grammar, &lr0);
    println!("conflicts: {}", conflicts.len());

    // Parse table and a parse.
    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    println!("\nparse table:\n{table}");

    let lexer = Lexer::for_table(&table).number("NUM").build();
    let tokens = lexer.tokenize("1 + 2 * (3 + 4)")?;
    let tree = Parser::new(&table).parse(tokens)?;
    println!("parse of \"1 + 2 * (3 + 4)\":\n{}", tree.to_sexpr(&table));
    Ok(())
}
