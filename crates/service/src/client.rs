//! A blocking client for the daemon protocol, with distinct transport
//! errors and deterministic retry.
//!
//! Transport failures are reported as *distinct* [`ServiceError`] kinds
//! so callers can tell them apart (and retry policies can reason about
//! them): `refused` (nobody listening), `timeout` (connect or read
//! budget exhausted), `closed` (the connection ended before a complete
//! response line — either before any byte, or mid-line), and `io`
//! (everything else). [`call_with_retry`] layers capped exponential
//! backoff with deterministic jitter on top: same seed, same request
//! history, same sleep schedule.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use lalr_chaos::{mix64, Fault, FaultInjector};
use serde_json::Value;

use crate::protocol::request_to_line;
use crate::service::Request;
use crate::ServiceError;

/// One decoded response line.
#[derive(Debug, Clone)]
pub struct ClientReply {
    /// The raw response line (without the trailing newline).
    pub raw: String,
    /// The parsed JSON document.
    pub value: Value,
    /// How many attempts this reply took (1 = first try; only
    /// [`call_with_retry`] produces higher values).
    pub attempts: u32,
}

impl ClientReply {
    /// The response's `"ok"` field.
    pub fn is_ok(&self) -> bool {
        self.value
            .get("ok")
            .and_then(Value::as_bool)
            .unwrap_or(false)
    }

    /// The error message, for `ok:false` replies.
    pub fn error_message(&self) -> Option<&str> {
        self.value.get("error")?.get("message")?.as_str()
    }

    /// The machine-readable error kind, for `ok:false` replies.
    pub fn error_kind(&self) -> Option<&str> {
        self.value.get("error")?.get("kind")?.as_str()
    }
}

/// Retry schedule for [`call_with_retry`]: up to `retries` re-attempts
/// after the first, sleeping `min(cap, backoff · 2ᵏ)` scaled by a
/// deterministic jitter factor in `[0.5, 1.0)` derived from
/// `mix64(seed ^ attempt)` — no shared PRNG state, so concurrent clients
/// with different seeds desynchronize (no thundering herd) while any
/// single schedule replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (0 = behave like [`call`]).
    pub retries: u32,
    /// Base backoff before the first retry.
    pub backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            backoff: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before re-attempt `attempt` (0-based: the delay after
    /// the first failure is `delay_for(0)`).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let doubled = self
            .backoff
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let capped = doubled.min(self.cap);
        let frac = ((mix64(self.seed ^ u64::from(attempt)) >> 11) as f64)
            * (1.0 / 9_007_199_254_740_992.0);
        capped.mul_f64(0.5 + 0.5 * frac)
    }
}

/// Whether a server error reply is worth retrying: capacity and crash
/// kinds are transient; structural rejections are not.
fn retryable_reply_kind(kind: &str) -> bool {
    matches!(
        kind,
        "overloaded" | "unavailable" | "panicked" | "degraded" | "throttled"
    )
}

/// Whether a failed attempt counts toward tripping the circuit breaker:
/// transport failures and capacity rejections mean the *server* is in
/// trouble; structural error replies mean it is healthy and answering.
fn breaker_counts(kind: &str) -> bool {
    retryable_reply_kind(kind)
}

/// A client-side circuit breaker: after `threshold` *consecutive*
/// transport-or-overload failures the breaker opens and
/// [`call_with_breaker`] fails fast (no connection attempt) until
/// `cooldown` elapses; the first call after the cooldown is a half-open
/// probe — its success closes the breaker, its failure re-opens it for
/// another cooldown. State transitions are a pure function of the
/// attempt outcome sequence (plus the cooldown clock), so a seeded chaos
/// schedule drives the breaker through the same states every run.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: std::sync::Mutex<BreakerState>,
    opens: std::sync::atomic::AtomicU64,
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { failures: u32 },
    Open { since: std::time::Instant },
    HalfOpen,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// qualifying failures and probes again after `cooldown`.
    /// A threshold of 0 is treated as 1.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: std::sync::Mutex::new(BreakerState::Closed { failures: 0 }),
            opens: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Asks permission for one attempt. `false` means the breaker is
    /// open and still cooling down — fail fast without touching the
    /// network. When the cooldown has elapsed the breaker moves to
    /// half-open and admits exactly this probe.
    pub fn try_acquire(&self) -> bool {
        let mut state = self.lock();
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    *state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful attempt (an `ok` reply, or a structural
    /// error reply — the server answered, so it is healthy).
    pub fn on_success(&self) {
        *self.lock() = BreakerState::Closed { failures: 0 };
    }

    /// Records a qualifying failure (transport error, or an
    /// overload-class reply: `overloaded`, `unavailable`, `degraded`,
    /// `throttled`, `panicked`). A half-open probe failure re-opens
    /// immediately; in the closed state the consecutive-failure counter
    /// opens the breaker at the threshold.
    pub fn on_failure(&self) {
        let mut state = self.lock();
        let open = match *state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed { failures } => failures + 1 >= self.threshold,
            BreakerState::Open { .. } => return,
        };
        if open {
            *state = BreakerState::Open {
                since: std::time::Instant::now(),
            };
            self.opens
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        } else if let BreakerState::Closed { failures } = *state {
            *state = BreakerState::Closed {
                failures: failures + 1,
            };
        }
    }

    /// The current state name: `closed`, `open`, or `half_open`.
    pub fn state_name(&self) -> &'static str {
        match *self.lock() {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// How many times the breaker has transitioned to open.
    pub fn opens(&self) -> u64 {
        self.opens.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Sends one request to a running daemon and reads one response line.
///
/// `timeout` bounds connect, write, and read individually. A
/// `deadline` is forwarded to the server as `deadline_ms`.
pub fn call(
    addr: &str,
    request: &Request,
    deadline: Option<Duration>,
    timeout: Duration,
) -> Result<ClientReply, ServiceError> {
    call_inner(addr, request, deadline, timeout, &FaultInjector::disabled())
}

/// [`call`], retried under `policy` for transport failures and for
/// transient server error replies (`overloaded`, `unavailable`,
/// `panicked`). Client-side failpoints (`client.connect`,
/// `client.write`, `client.read`) fire per attempt through `faults`.
pub fn call_with_retry(
    addr: &str,
    request: &Request,
    deadline: Option<Duration>,
    timeout: Duration,
    policy: &RetryPolicy,
    faults: &FaultInjector,
) -> Result<ClientReply, ServiceError> {
    retry_loop(addr, request, deadline, timeout, policy, None, faults)
}

/// [`call_with_retry`] guarded by a shared [`CircuitBreaker`]: every
/// attempt first asks the breaker for permission (an open breaker fails
/// the attempt fast, as a retryable `unavailable`, without touching the
/// network) and then reports its outcome back. Transport failures and
/// overload-class replies count toward opening; any answered request —
/// ok or a structural error — closes it.
pub fn call_with_breaker(
    addr: &str,
    request: &Request,
    deadline: Option<Duration>,
    timeout: Duration,
    policy: &RetryPolicy,
    breaker: &CircuitBreaker,
    faults: &FaultInjector,
) -> Result<ClientReply, ServiceError> {
    retry_loop(
        addr,
        request,
        deadline,
        timeout,
        policy,
        Some(breaker),
        faults,
    )
}

fn retry_loop(
    addr: &str,
    request: &Request,
    deadline: Option<Duration>,
    timeout: Duration,
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
    faults: &FaultInjector,
) -> Result<ClientReply, ServiceError> {
    let mut attempts = 0u32;
    loop {
        let outcome = if breaker.is_some_and(|b| !b.try_acquire()) {
            Err(ServiceError::Unavailable(format!(
                "{addr}: circuit breaker open"
            )))
        } else {
            let outcome = call_inner(addr, request, deadline, timeout, faults);
            if let Some(b) = breaker {
                match &outcome {
                    Ok(reply)
                        if !reply.is_ok() && reply.error_kind().is_some_and(breaker_counts) =>
                    {
                        b.on_failure()
                    }
                    Ok(_) => b.on_success(),
                    Err(_) => b.on_failure(),
                }
            }
            outcome
        };
        attempts += 1;
        let retries_left = attempts <= policy.retries;
        match outcome {
            Ok(mut reply) => {
                let transient =
                    !reply.is_ok() && reply.error_kind().is_some_and(retryable_reply_kind);
                if transient && retries_left {
                    std::thread::sleep(policy.delay_for(attempts - 1));
                    continue;
                }
                reply.attempts = attempts;
                return Ok(reply);
            }
            Err(e) if e.is_retryable() && retries_left => {
                std::thread::sleep(policy.delay_for(attempts - 1));
            }
            Err(e) => return Err(e),
        }
    }
}

fn call_inner(
    addr: &str,
    request: &Request,
    deadline: Option<Duration>,
    timeout: Duration,
    faults: &FaultInjector,
) -> Result<ClientReply, ServiceError> {
    let io_err = |e: std::io::Error| ServiceError::Io(format!("{addr}: {e}"));
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(io_err)?
        .next()
        .ok_or_else(|| ServiceError::Io(format!("{addr}: no usable address")))?;
    match faults.at("client.connect") {
        Some(Fault::Error) => {
            return Err(ServiceError::Refused(format!(
                "{addr}: injected fault at client.connect"
            )))
        }
        Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
    let stream = TcpStream::connect_timeout(&sock_addr, timeout).map_err(|e| match e.kind() {
        ErrorKind::ConnectionRefused => ServiceError::Refused(format!("{addr}: {e}")),
        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            ServiceError::Timeout(format!("{addr}: connect: {e}"))
        }
        _ => io_err(e),
    })?;
    stream.set_read_timeout(Some(timeout)).map_err(io_err)?;
    stream.set_write_timeout(Some(timeout)).map_err(io_err)?;

    if let Some(Fault::Error) = faults.at("client.write") {
        return Err(ServiceError::Io(format!(
            "{addr}: injected fault at client.write"
        )));
    }
    let mut writer = stream.try_clone().map_err(io_err)?;
    writeln!(writer, "{}", request_to_line(request, deadline)).map_err(|e| match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            ServiceError::Timeout(format!("{addr}: write: {e}"))
        }
        _ => io_err(e),
    })?;

    if let Some(Fault::Error) = faults.at("client.read") {
        return Err(ServiceError::Io(format!(
            "{addr}: injected fault at client.read"
        )));
    }
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                ServiceError::Timeout(format!("{addr}: read: {e}"))
            }
            // A peer reset while we wait for the reply is the connection
            // ending, not a local I/O fault — classify with the EOF cases
            // below so retry policy treats abrupt and clean closes alike.
            ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => ServiceError::Closed(
                format!("{addr}: connection reset before a response arrived"),
            ),
            _ => io_err(e),
        })?;
    if line.is_empty() {
        return Err(ServiceError::Closed(format!(
            "{addr}: connection closed before a response arrived"
        )));
    }
    if !line.ends_with('\n') {
        // EOF mid-line: a partial response must never be parsed as if it
        // were complete.
        return Err(ServiceError::Closed(format!(
            "{addr}: connection closed mid-response after {} bytes",
            line.len()
        )));
    }
    let raw = line.trim_end().to_string();
    let value = serde_json::from_str(&raw).map_err(|e| ServiceError::Io(format!("{addr}: {e}")))?;
    Ok(ClientReply {
        raw,
        value,
        attempts: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let p = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(100),
            cap: Duration::from_millis(450),
            seed: 11,
        };
        for k in 0..8 {
            let base = [100u64, 200, 400, 450, 450, 450, 450, 450][k as usize];
            let d = p.delay_for(k);
            assert!(
                d >= Duration::from_millis(base / 2) && d < Duration::from_millis(base),
                "attempt {k}: {d:?} outside [{}ms/2, {}ms)",
                base,
                base
            );
            assert_eq!(d, p.delay_for(k), "same seed+attempt → same delay");
        }
        let other = RetryPolicy { seed: 12, ..p };
        assert!(
            (0..8).any(|k| other.delay_for(k) != p.delay_for(k)),
            "different seeds must desynchronize"
        );
        // Overflow safety at absurd attempt counts.
        assert!(p.delay_for(u32::MAX) <= p.cap);
    }

    #[test]
    fn reply_kind_retryability() {
        for k in [
            "overloaded",
            "unavailable",
            "panicked",
            "degraded",
            "throttled",
        ] {
            assert!(retryable_reply_kind(k));
        }
        for k in ["bad_grammar", "bad_request", "too_large", "deadline"] {
            assert!(!retryable_reply_kind(k));
        }
    }

    #[test]
    fn breaker_opens_after_threshold_probes_and_recloses() {
        let b = CircuitBreaker::new(3, Duration::from_millis(20));
        assert_eq!(b.state_name(), "closed");
        // Two failures stay closed; the third opens.
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state_name(), "closed");
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 1);
        assert!(!b.try_acquire(), "open breaker fails fast");
        // After the cooldown exactly one half-open probe is admitted;
        // its failure re-opens, its success closes.
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire());
        assert_eq!(b.state_name(), "half_open");
        b.on_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.opens(), 2);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire());
        b.on_success();
        assert_eq!(b.state_name(), "closed");
        assert!(b.try_acquire());
        // A success resets the consecutive-failure counter.
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn open_breaker_fails_fast_without_connecting() {
        // Nobody listens on this port, but the open breaker must not even
        // try: the reply is an immediate retryable `unavailable`.
        let b = CircuitBreaker::new(1, Duration::from_secs(60));
        b.on_failure();
        assert_eq!(b.state_name(), "open");
        let started = std::time::Instant::now();
        let err = call_with_breaker(
            "127.0.0.1:1",
            &Request::Stats,
            None,
            Duration::from_secs(5),
            &RetryPolicy::none(),
            &b,
            &FaultInjector::disabled(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.to_string().contains("circuit breaker open"), "{err}");
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
