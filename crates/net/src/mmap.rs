//! Read-only file mappings for the artifact store.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;

use crate::sys;

/// A read-only, private mapping of a whole file.
///
/// Dereferences to `&[u8]`; the mapping is released on drop. On targets
/// without the raw-syscall backend (or when `mmap` itself fails, e.g.
/// on a zero-length file) [`Mmap::map`] falls back to reading the file
/// into an owned buffer, so callers never need a second code path.
#[derive(Debug)]
pub struct Mmap {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    Mapped { addr: *const u8, len: usize },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — immutable shared data,
// safe to reference from any thread.
unsafe impl Send for Mmap {}
// SAFETY: as above; &Mmap only exposes &[u8] reads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only (falling back to an in-memory copy).
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len > 0 && sys::supported() {
            if let Ok(addr) = sys::mmap_readonly(file.as_raw_fd(), len) {
                return Ok(Mmap {
                    backing: Backing::Mapped { addr, len },
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        use std::io::Read;
        let mut reader = file;
        reader.read_to_end(&mut buf)?;
        Ok(Mmap {
            backing: Backing::Owned(buf),
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Mapped { addr, len } => sys::map_slice(*addr, *len),
            Backing::Owned(buf) => buf,
        }
    }

    /// `true` when the bytes come from a real kernel mapping rather
    /// than the read fallback.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped { .. })
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if let Backing::Mapped { addr, len } = self.backing {
            let _ = sys::munmap(addr, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Seek, Write};

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("lalr-net-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"mapped bytes here").unwrap();
        f.sync_all().unwrap();
        drop(f);

        let mut f = File::open(&path).unwrap();
        f.rewind().unwrap();
        let map = Mmap::map(&f).unwrap();
        assert_eq!(&map[..], b"mapped bytes here");
        if sys::supported() {
            assert!(map.is_mapped());
        }
        drop(map);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_uses_the_fallback() {
        let dir = std::env::temp_dir().join(format!("lalr-net-mmap0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        File::create(&path).unwrap();
        let f = File::open(&path).unwrap();
        let map = Mmap::map(&f).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }
}
