//! Word-level row kernels: the one home of every inner loop in this crate.
//!
//! Every look-ahead method in the workspace bottoms out in a handful of
//! dense row operations — union, union-with-changed-flag, masked OR,
//! row copy, population count, and a blocked multi-source OR. Before this
//! module those loops were written (near-identically) in `bitset.rs`,
//! `matrix.rs`, `atomic.rs`, `refset.rs` and `shard.rs`; now each set
//! type delegates here, so the sequential and parallel lanes share one
//! code path and one optimization surface.
//!
//! # Layout selection
//!
//! [`RowLayout::select`] classifies a row universe once per analysis:
//!
//! * [`RowLayout::Fixed64`] (`W1`) — the universe fits one machine word
//!   (≤ 64 terminals on 64-bit hosts; most of the corpus). Kernels run a
//!   single straight-line word operation: no loop, no length dispatch in
//!   the body, and scratch rows ([`RowBuf`]) live inline on the stack
//!   with no heap indirection.
//! * [`RowLayout::Fixed128`] (`W2`) — two words (65–128 terminals);
//!   same story with a two-word straight-line body.
//! * [`RowLayout::MultiWord`] — anything wider takes the *wide* path:
//!   a 4-way unrolled scalar loop by default, or the `core::arch`
//!   SSE2/AVX2 kernels when the crate is built with the `simd` feature
//!   (selected once at runtime via CPU detection; see
//!   [`dispatch_name`]).
//!
//! The fixed lanes are not merely an inlining hint: the kernels match on
//! the slice width *first*, so a one-word grammar never executes loop
//! bookkeeping, and the branch predicts perfectly because the width is a
//! per-analysis constant.
//!
//! # Tail-bit invariant
//!
//! Rows own `words_for(bits)` words; bits past `bits` in the last word
//! must stay zero (iteration, popcount and equality depend on it). Every
//! mutating wrapper in this crate calls [`debug_assert_tail_clear`]
//! after its kernel, so a kernel that smears bits into the tail fails
//! loudly in debug builds instead of silently corrupting counts.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use crate::{words_for, BITS};

// ---------------------------------------------------------------------------
// Layout selection

/// How the rows of one analysis are stored and which kernel lane
/// processes them. Selected once per universe via [`RowLayout::select`]
/// and consumed by [`BitMatrix`](crate::BitMatrix),
/// [`AtomicBitMatrix`](crate::AtomicBitMatrix),
/// [`BitSetRef`](crate::BitSetRef) and the look-ahead store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowLayout {
    /// One word per row (`W1`): universes of ≤ 64 bits on 64-bit hosts.
    Fixed64,
    /// Two words per row (`W2`): universes of 65–128 bits.
    Fixed128,
    /// The general unrolled/SIMD lane for wider universes.
    MultiWord {
        /// Words per row (`>= 3`).
        words: usize,
    },
}

impl RowLayout {
    /// Classifies a universe of `bits` bits.
    ///
    /// A zero-bit universe still reports [`RowLayout::Fixed64`]: its rows
    /// hold no words and every kernel is a no-op, so the single-word lane
    /// is trivially correct.
    pub fn select(bits: usize) -> RowLayout {
        match words_for(bits) {
            0 | 1 => RowLayout::Fixed64,
            2 => RowLayout::Fixed128,
            words => RowLayout::MultiWord { words },
        }
    }

    /// Words per row under this layout (0- and 1-word universes both
    /// report 1; see [`RowLayout::select`]).
    pub fn words(self) -> usize {
        match self {
            RowLayout::Fixed64 => 1,
            RowLayout::Fixed128 => 2,
            RowLayout::MultiWord { words } => words,
        }
    }

    /// Stable human-readable name: `fixed-64`, `fixed-128` or
    /// `multi-word` (the names assume 64-bit words; on narrower hosts the
    /// same word-count cutoffs apply).
    pub fn name(self) -> &'static str {
        match self {
            RowLayout::Fixed64 => "fixed-64",
            RowLayout::Fixed128 => "fixed-128",
            RowLayout::MultiWord { .. } => "multi-word",
        }
    }

    /// The kernel lane this layout dispatches to: `w1`/`w2` for the
    /// fixed widths, otherwise the wide dispatch (see [`dispatch_name`]).
    pub fn dispatch(self) -> &'static str {
        match self {
            RowLayout::Fixed64 => "w1",
            RowLayout::Fixed128 => "w2",
            RowLayout::MultiWord { .. } => dispatch_name(),
        }
    }
}

// ---------------------------------------------------------------------------
// Wide-lane dispatch (runtime CPU detection, cached)

const D_UNSET: u8 = 0;
const D_SCALAR: u8 = 1;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const D_SSE2: u8 = 2;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const D_AVX2: u8 = 3;

static WIDE_DISPATCH: AtomicU8 = AtomicU8::new(D_UNSET);

#[inline]
fn wide_dispatch() -> u8 {
    match WIDE_DISPATCH.load(Ordering::Relaxed) {
        D_UNSET => detect(),
        d => d,
    }
}

#[cold]
fn detect() -> u8 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    let d = if std::arch::is_x86_feature_detected!("avx2") {
        D_AVX2
    } else {
        D_SSE2
    };
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let d = D_SCALAR;
    WIDE_DISPATCH.store(d, Ordering::Relaxed);
    d
}

/// The wide-lane implementation selected for this process:
/// `scalar-unrolled`, `sse2` or `avx2`.
///
/// Detection runs once (cached in an atomic); without the `simd` feature
/// the answer is always `scalar-unrolled`.
pub fn dispatch_name() -> &'static str {
    match wide_dispatch() {
        D_SCALAR => "scalar-unrolled",
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        D_SSE2 => "sse2",
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        D_AVX2 => "avx2",
        _ => "scalar-unrolled",
    }
}

/// Whether this build carries the `core::arch` kernels (the `simd`
/// cargo feature on an x86_64 target). Runtime selection may still fall
/// back to SSE2 on hosts without AVX2.
pub fn simd_compiled() -> bool {
    cfg!(all(feature = "simd", target_arch = "x86_64"))
}

// ---------------------------------------------------------------------------
// Cache tiling

/// Bytes of destination rows a traversal tile aims to keep resident.
///
/// Half of a conservative 256 KiB L2: the other half is left to source
/// rows, the scratch row and incidental state. Exact sizing is not
/// critical — the point is that a tile of hot rows fits comfortably in
/// L2 instead of streaming the whole matrix per pass.
const L2_TILE_BYTES: usize = 128 << 10;

/// Rows per cache tile for rows of `row_words` words: how many
/// destination rows a level sweep or LA scatter should touch before
/// moving on, so the working set stays L2-resident.
///
/// Clamped to `[16, 4096]` so degenerate widths still form useful tiles.
pub fn tile_rows(row_words: usize) -> usize {
    let row_bytes = row_words.max(1) * std::mem::size_of::<usize>();
    (L2_TILE_BYTES / row_bytes).clamp(16, 4096)
}

// ---------------------------------------------------------------------------
// Scratch rows

/// A row-sized scratch buffer that honors the layout's storage promise:
/// `W1`/`W2` rows live inline on the stack with no heap indirection;
/// only multi-word rows spill to a heap allocation (once, at
/// construction).
#[derive(Debug)]
pub enum RowBuf {
    /// Inline storage for the fixed layouts; `.1` is the row width (1
    /// or 2).
    Inline([usize; 2], usize),
    /// Heap storage for multi-word rows.
    Spilled(Vec<usize>),
}

impl RowBuf {
    /// An all-zero scratch row for `layout`.
    pub fn for_layout(layout: RowLayout) -> RowBuf {
        match layout {
            RowLayout::Fixed64 => RowBuf::Inline([0; 2], 1),
            RowLayout::Fixed128 => RowBuf::Inline([0; 2], 2),
            RowLayout::MultiWord { words } => RowBuf::Spilled(vec![0; words]),
        }
    }

    /// The row words.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        match self {
            RowBuf::Inline(words, n) => &words[..*n],
            RowBuf::Spilled(words) => words,
        }
    }

    /// The row words, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [usize] {
        match self {
            RowBuf::Inline(words, n) => &mut words[..*n],
            RowBuf::Spilled(words) => words,
        }
    }
}

// ---------------------------------------------------------------------------
// Tail-bit invariant

/// Debug-asserts that bits past `bits` in the last word of `words` are
/// zero. Called by every mutating wrapper after its kernel; compiles to
/// nothing in release builds.
#[inline]
pub fn debug_assert_tail_clear(words: &[usize], bits: usize) {
    if cfg!(debug_assertions) {
        let used = bits % BITS;
        if used != 0 {
            if let Some(&last) = words.last() {
                debug_assert_eq!(
                    last & !((1usize << used) - 1),
                    0,
                    "tail bits past {bits} must stay masked to zero"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plain (non-atomic) kernels

/// `dst |= src`, reporting whether `dst` changed.
///
/// Processes `dst.len()` words; `src` may be longer (the excess is
/// ignored). The hot kernel of every fixpoint loop in the workspace.
///
/// # Panics
///
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn or_into(dst: &mut [usize], src: &[usize]) -> bool {
    assert!(
        src.len() >= dst.len(),
        "source shorter than destination row"
    );
    match dst.len() {
        0 => false,
        1 => {
            let fresh = src[0] & !dst[0];
            dst[0] |= src[0];
            fresh != 0
        }
        2 => {
            let fresh = (src[0] & !dst[0]) | (src[1] & !dst[1]);
            dst[0] |= src[0];
            dst[1] |= src[1];
            fresh != 0
        }
        _ => or_wide(dst, &src[..dst.len()]),
    }
}

/// `dst |= src` without the changed flag (callers that union into an
/// accumulator and never test for fixpoint).
///
/// # Panics
///
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn or_assign(dst: &mut [usize], src: &[usize]) {
    let _ = or_into(dst, src);
}

/// Masked OR: `dst |= src & mask`, reporting whether `dst` changed.
///
/// The seam for selective recomputation (union only the terminals a
/// caller cares about); also exercised by the E12 kernel bench.
///
/// # Panics
///
/// Panics if `src` or `mask` is shorter than `dst`.
#[inline]
pub fn masked_or(dst: &mut [usize], src: &[usize], mask: &[usize]) -> bool {
    assert!(
        src.len() >= dst.len(),
        "source shorter than destination row"
    );
    assert!(mask.len() >= dst.len(), "mask shorter than destination row");
    match dst.len() {
        0 => false,
        1 => {
            let s = src[0] & mask[0];
            let fresh = s & !dst[0];
            dst[0] |= s;
            fresh != 0
        }
        2 => {
            let s0 = src[0] & mask[0];
            let s1 = src[1] & mask[1];
            let fresh = (s0 & !dst[0]) | (s1 & !dst[1]);
            dst[0] |= s0;
            dst[1] |= s1;
            fresh != 0
        }
        _ => {
            let mut fresh = 0usize;
            for (i, d) in dst.iter_mut().enumerate() {
                let s = src[i] & mask[i];
                fresh |= s & !*d;
                *d |= s;
            }
            fresh != 0
        }
    }
}

/// `dst := src` (row copy). Processes `dst.len()` words; `src` may be
/// longer.
///
/// # Panics
///
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn copy(dst: &mut [usize], src: &[usize]) {
    assert!(
        src.len() >= dst.len(),
        "source shorter than destination row"
    );
    match dst.len() {
        0 => {}
        1 => dst[0] = src[0],
        2 => {
            dst[0] = src[0];
            dst[1] = src[1];
        }
        n => dst.copy_from_slice(&src[..n]),
    }
}

/// Number of set bits in a row (`count_ones` compiles to hardware
/// `popcnt` where available).
#[inline]
pub fn popcount(words: &[usize]) -> usize {
    match words {
        [] => 0,
        [a] => a.count_ones() as usize,
        [a, b] => (a.count_ones() + b.count_ones()) as usize,
        _ => words.iter().map(|w| w.count_ones() as usize).sum(),
    }
}

/// Returns `true` if the row of `a` is a subset of the row of `b`.
///
/// # Panics
///
/// Panics if `b` is shorter than `a`.
#[inline]
pub fn is_subset(a: &[usize], b: &[usize]) -> bool {
    assert!(b.len() >= a.len(), "rows must share a universe");
    match a.len() {
        0 => true,
        1 => a[0] & !b[0] == 0,
        2 => (a[0] & !b[0]) | (a[1] & !b[1]) == 0,
        _ => a.iter().zip(b).all(|(&x, &y)| x & !y == 0),
    }
}

/// Returns `true` if the rows of `a` and `b` share no set bit.
///
/// # Panics
///
/// Panics if `b` is shorter than `a`.
#[inline]
pub fn is_disjoint(a: &[usize], b: &[usize]) -> bool {
    assert!(b.len() >= a.len(), "rows must share a universe");
    match a.len() {
        0 => true,
        1 => a[0] & b[0] == 0,
        2 => (a[0] & b[0]) | (a[1] & b[1]) == 0,
        _ => a.iter().zip(b).all(|(&x, &y)| x & y == 0),
    }
}

/// Blocked multi-source OR: `dst |= src₀ | src₁ | …`, reporting whether
/// `dst` changed.
///
/// Walks word-major across all sources — each destination word is
/// loaded and stored exactly once no matter how many sources feed it,
/// and no block transpose is materialized. This is what a traversal
/// tile uses when several finalized rows flow into one representative.
///
/// # Panics
///
/// Panics if any source is shorter than `dst`.
pub fn or_accumulate(dst: &mut [usize], srcs: &[&[usize]]) -> bool {
    for s in srcs {
        assert!(s.len() >= dst.len(), "source shorter than destination row");
    }
    let mut fresh = 0usize;
    for (i, d) in dst.iter_mut().enumerate() {
        let mut acc = 0usize;
        for s in srcs {
            acc |= s[i];
        }
        fresh |= acc & !*d;
        *d |= acc;
    }
    fresh != 0
}

/// The wide lane of [`or_into`]: SIMD when compiled in and detected,
/// otherwise the 4-way unrolled scalar loop.
#[inline]
fn or_wide(dst: &mut [usize], src: &[usize]) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        match wide_dispatch() {
            D_AVX2 => return x86::or_into_avx2(dst, src),
            D_SSE2 => return x86::or_into_sse2(dst, src),
            _ => {}
        }
    }
    or_wide_scalar(dst, src)
}

/// Portable wide lane: 4-way unrolled, accumulating the fresh-bit mask
/// so the changed test is one compare at the end.
fn or_wide_scalar(dst: &mut [usize], src: &[usize]) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let split = n - n % 4;
    let mut fresh = 0usize;
    let (dc, dr) = dst.split_at_mut(split);
    let (sc, sr) = src.split_at(split);
    for (d, s) in dc.chunks_exact_mut(4).zip(sc.chunks_exact(4)) {
        fresh |= s[0] & !d[0];
        d[0] |= s[0];
        fresh |= s[1] & !d[1];
        d[1] |= s[1];
        fresh |= s[2] & !d[2];
        d[2] |= s[2];
        fresh |= s[3] & !d[3];
        d[3] |= s[3];
    }
    for (d, &s) in dr.iter_mut().zip(sr) {
        fresh |= s & !*d;
        *d |= s;
    }
    fresh != 0
}

// ---------------------------------------------------------------------------
// Atomic kernels (relaxed ordering; see `atomic.rs` for the discipline)

/// `dst |= src` over atomic destination words, reporting whether `dst`
/// changed. Zero source words are skipped: a `fetch_or(0)` still dirties
/// the cache line, and look-ahead rows are sparse.
///
/// Processes `min(dst.len(), src.len())` words by contract with the
/// callers in `atomic.rs`, which slice both sides to the row width.
#[inline]
pub fn fetch_or_atomic(dst: &[AtomicUsize], src: &[usize]) -> bool {
    let mut changed = false;
    for (d, &s) in dst.iter().zip(src) {
        if s != 0 {
            let prev = d.fetch_or(s, Ordering::Relaxed);
            changed |= s & !prev != 0;
        }
    }
    changed
}

/// `dst |= src` where both rows are atomic (relaxed load on the source
/// side; the source must be finalized in an earlier epoch).
#[inline]
pub fn fetch_or_atomic_rows(dst: &[AtomicUsize], src: &[AtomicUsize]) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter().zip(src) {
        let sv = s.load(Ordering::Relaxed);
        if sv != 0 {
            let prev = d.fetch_or(sv, Ordering::Relaxed);
            changed |= sv & !prev != 0;
        }
    }
    changed
}

/// `dst := src` over atomic rows (relaxed load + store per word).
#[inline]
pub fn copy_atomic_rows(dst: &[AtomicUsize], src: &[AtomicUsize]) {
    for (d, s) in dst.iter().zip(src) {
        d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Copies an atomic row into a plain buffer (relaxed loads).
#[inline]
pub fn read_atomic(src: &[AtomicUsize], dst: &mut [usize]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.load(Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// x86_64 SIMD lane (`simd` feature)

/// `core::arch` kernels. The only `unsafe` in the crate lives here, and
/// only under the `simd` feature: raw-pointer vector loads/stores over
/// slices whose bounds are established by the safe wrappers, plus
/// `target_feature` calls guarded by the cached runtime detection in
/// [`wide_dispatch`].
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm256_testz_si256, _mm_andnot_si128,
        _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_setzero_si128,
        _mm_storeu_si128,
    };

    /// AVX2 [`super::or_into`]: 256 bits (four 64-bit words) per step,
    /// fresh bits accumulated in a vector and tested once with `vptest`.
    ///
    /// Safe to call only after `avx2` was runtime-detected (the
    /// dispatcher guarantees it).
    pub fn or_into_avx2(dst: &mut [usize], src: &[usize]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: `avx2` support was established by `is_x86_feature_detected!`
        // before this lane is ever selected.
        unsafe { or_into_avx2_impl(dst, src) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn or_into_avx2_impl(dst: &mut [usize], src: &[usize]) -> bool {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut fresh_v = _mm256_setzero_si256();
        let mut i = 0usize;
        // SAFETY: `i + 4 <= n` bounds every 4-word (32-byte) unaligned
        // load/store inside both slices; `loadu`/`storeu` carry no
        // alignment requirement.
        while i + 4 <= n {
            let d = _mm256_loadu_si256(dp.add(i) as *const __m256i);
            let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
            fresh_v = _mm256_or_si256(fresh_v, _mm256_andnot_si256(d, s));
            _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_or_si256(d, s));
            i += 4;
        }
        let mut fresh = usize::from(_mm256_testz_si256(fresh_v, fresh_v) == 0);
        while i < n {
            let d = *dp.add(i);
            let s = *sp.add(i);
            fresh |= s & !d;
            *dp.add(i) = d | s;
            i += 1;
        }
        fresh != 0
    }

    /// SSE2 [`super::or_into`]: 128 bits (two 64-bit words) per step.
    /// SSE2 is the x86_64 baseline, so this lane needs no detection —
    /// it is the fallback when AVX2 is absent.
    pub fn or_into_sse2(dst: &mut [usize], src: &[usize]) -> bool {
        debug_assert_eq!(dst.len(), src.len());
        // SAFETY: SSE2 is unconditionally available on x86_64.
        unsafe { or_into_sse2_impl(dst, src) }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn or_into_sse2_impl(dst: &mut [usize], src: &[usize]) -> bool {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut fresh_v = _mm_setzero_si128();
        let mut i = 0usize;
        // SAFETY: `i + 2 <= n` bounds every 2-word (16-byte) unaligned
        // load/store inside both slices.
        while i + 2 <= n {
            let d = _mm_loadu_si128(dp.add(i) as *const __m128i);
            let s = _mm_loadu_si128(sp.add(i) as *const __m128i);
            fresh_v = _mm_or_si128(fresh_v, _mm_andnot_si128(d, s));
            _mm_storeu_si128(dp.add(i) as *mut __m128i, _mm_or_si128(d, s));
            i += 2;
        }
        // SSE2 has no `ptest`: compare the accumulator to zero bytewise.
        let zero = _mm_setzero_si128();
        let all_zero = _mm_movemask_epi8(_mm_cmpeq_epi8(fresh_v, zero)) == 0xFFFF;
        let mut fresh = usize::from(!all_zero);
        while i < n {
            let d = *dp.add(i);
            let s = *sp.add(i);
            fresh |= s & !d;
            *dp.add(i) = d | s;
            i += 1;
        }
        fresh != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unoptimized reference all lanes must match.
    fn or_reference(dst: &mut [usize], src: &[usize]) -> bool {
        let mut changed = false;
        for (d, &s) in dst.iter_mut().zip(src) {
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    fn words(seed: u64, n: usize) -> Vec<usize> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as usize
            })
            .collect()
    }

    #[test]
    fn layout_selection_boundaries() {
        assert_eq!(RowLayout::select(0), RowLayout::Fixed64);
        assert_eq!(RowLayout::select(1), RowLayout::Fixed64);
        assert_eq!(RowLayout::select(BITS), RowLayout::Fixed64);
        assert_eq!(RowLayout::select(BITS + 1), RowLayout::Fixed128);
        assert_eq!(RowLayout::select(2 * BITS), RowLayout::Fixed128);
        assert_eq!(
            RowLayout::select(2 * BITS + 1),
            RowLayout::MultiWord { words: 3 }
        );
        assert_eq!(RowLayout::select(BITS).words(), 1);
        assert_eq!(RowLayout::select(2 * BITS).words(), 2);
        assert_eq!(RowLayout::select(10 * BITS).words(), 10);
        assert_eq!(RowLayout::select(5).name(), "fixed-64");
        assert_eq!(RowLayout::select(BITS + 1).name(), "fixed-128");
        assert_eq!(RowLayout::select(999).name(), "multi-word");
        assert_eq!(RowLayout::select(5).dispatch(), "w1");
        assert_eq!(RowLayout::select(BITS + 1).dispatch(), "w2");
    }

    #[test]
    fn dispatch_name_is_stable_and_consistent() {
        let name = dispatch_name();
        assert_eq!(name, dispatch_name(), "cached answer must not flap");
        if simd_compiled() {
            assert!(matches!(name, "sse2" | "avx2"), "{name}");
        } else {
            assert_eq!(name, "scalar-unrolled");
        }
    }

    #[test]
    fn or_into_matches_reference_across_widths() {
        for n in 0..=9 {
            for seed in [1u64, 0xdead, 0x1234_5678] {
                let src = words(seed, n);
                let mut a = words(seed.wrapping_mul(31), n);
                let mut b = a.clone();
                let ra = or_reference(&mut a, &src);
                let rb = or_into(&mut b, &src);
                assert_eq!(a, b, "width {n}");
                assert_eq!(ra, rb, "changed flag at width {n}");
                // Idempotence: the second union reports no change.
                assert!(!or_into(&mut b, &src), "width {n}");
            }
        }
    }

    #[test]
    fn wide_scalar_lane_matches_reference() {
        for n in 3..=13 {
            let src = words(99, n);
            let mut a = words(7, n);
            let mut b = a.clone();
            let ra = or_reference(&mut a, &src);
            let rb = or_wide_scalar(&mut b, &src);
            assert_eq!(a, b, "width {n}");
            assert_eq!(ra, rb, "width {n}");
        }
    }

    #[test]
    fn masked_or_applies_mask() {
        for n in 0..=6 {
            let src = words(3, n);
            let mask = words(5, n);
            let mut got = words(11, n);
            let mut want = got.clone();
            let masked: Vec<usize> = src.iter().zip(&mask).map(|(&s, &m)| s & m).collect();
            let rw = or_reference(&mut want, &masked);
            let rg = masked_or(&mut got, &src, &mask);
            assert_eq!(want, got, "width {n}");
            assert_eq!(rw, rg, "width {n}");
        }
    }

    #[test]
    fn copy_and_popcount() {
        for n in 0..=6 {
            let src = words(17, n);
            let mut dst = vec![0; n];
            copy(&mut dst, &src);
            assert_eq!(dst, src);
            let want: usize = src.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(popcount(&src), want);
        }
    }

    #[test]
    fn subset_and_disjoint_lanes() {
        for n in 0..=6 {
            let a = words(21, n);
            let every: Vec<usize> = vec![usize::MAX; n];
            let none: Vec<usize> = vec![0; n];
            assert!(is_subset(&a, &every));
            assert!(is_subset(&none, &a));
            assert!(is_disjoint(&a, &none));
            if a.iter().any(|&w| w != 0) {
                assert!(!is_disjoint(&a, &every));
                let inverted: Vec<usize> = a.iter().map(|&w| !w).collect();
                assert!(!is_subset(&a, &inverted));
                assert!(is_disjoint(&a, &inverted));
            }
        }
    }

    #[test]
    fn or_accumulate_matches_sequential_unions() {
        for n in 0..=6 {
            for k in 0..=4 {
                let srcs: Vec<Vec<usize>> = (0..k).map(|i| words(40 + i as u64, n)).collect();
                let refs: Vec<&[usize]> = srcs.iter().map(Vec::as_slice).collect();
                let mut got = words(77, n);
                let mut want = got.clone();
                let mut want_changed = false;
                for s in &srcs {
                    want_changed |= or_reference(&mut want, s);
                }
                let got_changed = or_accumulate(&mut got, &refs);
                assert_eq!(want, got, "width {n}, {k} sources");
                assert_eq!(want_changed, got_changed, "width {n}, {k} sources");
            }
        }
    }

    #[test]
    fn atomic_kernels_match_plain() {
        for n in 1..=5 {
            let src = words(13, n);
            let init = words(29, n);
            let dst: Vec<AtomicUsize> = init.iter().map(|&w| AtomicUsize::new(w)).collect();
            let mut want = init.clone();
            let rw = or_reference(&mut want, &src);
            let rg = fetch_or_atomic(&dst, &src);
            let got: Vec<usize> = dst.iter().map(|w| w.load(Ordering::Relaxed)).collect();
            assert_eq!(want, got, "width {n}");
            assert_eq!(rw, rg, "width {n}");

            let other: Vec<AtomicUsize> = src.iter().map(|&w| AtomicUsize::new(w)).collect();
            let dst2: Vec<AtomicUsize> = init.iter().map(|&w| AtomicUsize::new(w)).collect();
            assert_eq!(fetch_or_atomic_rows(&dst2, &other), rw, "width {n}");
            let got2: Vec<usize> = dst2.iter().map(|w| w.load(Ordering::Relaxed)).collect();
            assert_eq!(want, got2, "width {n}");

            let mut buf = vec![0; n];
            read_atomic(&dst2, &mut buf);
            assert_eq!(buf, want, "width {n}");
            copy_atomic_rows(&other, &dst2);
            let got3: Vec<usize> = other.iter().map(|w| w.load(Ordering::Relaxed)).collect();
            assert_eq!(got3, want, "width {n}");
        }
    }

    #[test]
    fn row_buf_honors_layout_storage() {
        let mut w1 = RowBuf::for_layout(RowLayout::Fixed64);
        assert_eq!(w1.as_slice(), &[0]);
        w1.as_mut_slice()[0] = 7;
        assert_eq!(w1.as_slice(), &[7]);
        assert!(matches!(w1, RowBuf::Inline(..)));

        let w2 = RowBuf::for_layout(RowLayout::Fixed128);
        assert_eq!(w2.as_slice(), &[0, 0]);
        assert!(matches!(w2, RowBuf::Inline(..)));

        let wide = RowBuf::for_layout(RowLayout::MultiWord { words: 5 });
        assert_eq!(wide.as_slice().len(), 5);
        assert!(matches!(wide, RowBuf::Spilled(..)));
    }

    #[test]
    fn tile_rows_is_l2_sized_and_clamped() {
        // 2-word rows: 16 bytes each; 128 KiB / 16 B = 8192, clamped to 4096.
        assert_eq!(tile_rows(2), 4096);
        assert_eq!(tile_rows(0), tile_rows(1));
        // Very wide rows still tile at the floor.
        assert_eq!(tile_rows(1 << 20), 16);
        // Monotone non-increasing in width.
        assert!(tile_rows(4) >= tile_rows(8));
    }

    #[test]
    fn tail_assert_accepts_clean_rows() {
        debug_assert_tail_clear(&[usize::MAX], BITS);
        debug_assert_tail_clear(&[0b111], 3);
        debug_assert_tail_clear(&[], 0);
    }

    #[test]
    #[should_panic(expected = "tail bits")]
    #[cfg(debug_assertions)]
    fn tail_assert_catches_smeared_bits() {
        debug_assert_tail_clear(&[0b1111], 3);
    }
}
