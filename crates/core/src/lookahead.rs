//! The common output type of every look-ahead method.

use std::collections::HashMap;

use lalr_automata::{MergedLalr, StateId};
use lalr_bitset::BitSet;
use lalr_grammar::{ProdId, Terminal};

/// Look-ahead sets for every reduction point `(state, production)`.
///
/// All five methods in this suite (DeRemer–Pennello, SLR(1), NQLALR(1),
/// yacc-style propagation, canonical-LR(1)-merge) produce this type, so
/// conflict detection, classification and cross-validation are method
/// agnostic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LookaheadSets {
    map: HashMap<(StateId, ProdId), BitSet>,
    terminals: usize,
}

impl LookaheadSets {
    /// Creates an empty collection over an alphabet of `terminals`.
    pub fn new(terminals: usize) -> LookaheadSets {
        LookaheadSets {
            map: HashMap::new(),
            terminals,
        }
    }

    /// Size of the terminal alphabet (universe of each set).
    pub fn terminal_count(&self) -> usize {
        self.terminals
    }

    /// The look-ahead set for reducing `prod` in `state`, if recorded.
    pub fn la(&self, state: StateId, prod: ProdId) -> Option<&BitSet> {
        self.map.get(&(state, prod))
    }

    /// Unions `set` into the entry for `(state, prod)`, creating it if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s universe differs from the alphabet size.
    pub fn union_into(&mut self, state: StateId, prod: ProdId, set: &BitSet) {
        assert_eq!(set.len(), self.terminals, "alphabet mismatch");
        self.map
            .entry((state, prod))
            .and_modify(|acc| {
                acc.union_with(set);
            })
            .or_insert_with(|| set.clone());
    }

    /// Inserts a single terminal into the entry for `(state, prod)`.
    pub fn insert(&mut self, state: StateId, prod: ProdId, t: Terminal) {
        self.map
            .entry((state, prod))
            .or_insert_with(|| BitSet::new(self.terminals))
            .insert(t.index());
    }

    /// Ensures an (empty) entry exists for `(state, prod)`.
    pub fn touch(&mut self, state: StateId, prod: ProdId) {
        self.map
            .entry((state, prod))
            .or_insert_with(|| BitSet::new(self.terminals));
    }

    /// Number of reduction points recorded.
    pub fn reduction_count(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `((state, production), la)` entries in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&(StateId, ProdId), &BitSet)> {
        self.map.iter()
    }

    /// Sum of all set cardinalities (a size measure used by the evaluation).
    pub fn total_bits(&self) -> usize {
        self.map.values().map(BitSet::count).sum()
    }

    /// `true` when every entry of `self` equals the corresponding entry of
    /// `other` and vice versa (order-independent equality is already given
    /// by `==`; this exists for readable assertion messages).
    pub fn agrees_with(&self, other: &LookaheadSets) -> bool {
        self == other
    }
}

impl From<&MergedLalr> for LookaheadSets {
    fn from(merged: &MergedLalr) -> LookaheadSets {
        let mut terminals = 0;
        let mut map = HashMap::new();
        for (&key, set) in merged.iter() {
            terminals = terminals.max(set.len());
            map.insert(key, set.clone());
        }
        LookaheadSets { map, terminals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_lookup() {
        let mut las = LookaheadSets::new(8);
        let key = (StateId::new(3), ProdId::new(2));
        las.insert(key.0, key.1, Terminal::new(1));
        las.union_into(key.0, key.1, &BitSet::from_indices(8, [4, 5]));
        let set = las.la(key.0, key.1).unwrap();
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 4, 5]);
        assert_eq!(las.reduction_count(), 1);
        assert_eq!(las.total_bits(), 3);
        assert!(las.la(StateId::new(0), ProdId::new(0)).is_none());
    }

    #[test]
    fn touch_creates_empty_entry() {
        let mut las = LookaheadSets::new(4);
        las.touch(StateId::new(0), ProdId::new(1));
        assert!(las.la(StateId::new(0), ProdId::new(1)).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn union_checks_universe() {
        let mut las = LookaheadSets::new(4);
        las.union_into(StateId::new(0), ProdId::new(0), &BitSet::new(5));
    }

    #[test]
    fn equality_is_order_independent() {
        let mut a = LookaheadSets::new(4);
        let mut b = LookaheadSets::new(4);
        a.insert(StateId::new(0), ProdId::new(0), Terminal::new(1));
        a.insert(StateId::new(1), ProdId::new(1), Terminal::new(2));
        b.insert(StateId::new(1), ProdId::new(1), Terminal::new(2));
        b.insert(StateId::new(0), ProdId::new(0), Terminal::new(1));
        assert!(a.agrees_with(&b));
    }
}
