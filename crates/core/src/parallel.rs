//! Thread-count configuration for the parallel pipeline.

/// How many worker threads the look-ahead pipeline may use.
///
/// The parallel paths are bit-identical to the sequential ones — the same
/// `Read`/`Follow`/`LA` sets, the same relation layouts — so this is purely
/// a performance knob. `Parallelism::sequential()` (the default) keeps
/// every phase on the calling thread.
///
/// # Examples
///
/// ```
/// use lalr_core::Parallelism;
///
/// assert_eq!(Parallelism::default().threads(), 1);
/// assert_eq!(Parallelism::new(4).threads(), 4);
/// assert_eq!(Parallelism::new(0).threads(), 1, "zero is clamped");
/// assert!(Parallelism::available().threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Exactly one thread: every phase runs sequentially.
    pub fn sequential() -> Self {
        Parallelism { threads: 1 }
    }

    /// A fixed thread count (`0` is treated as `1`).
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// One thread per available hardware thread.
    pub fn available() -> Self {
        Parallelism::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker count (always at least 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when more than one worker is configured.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Splits `n` items into one contiguous range per worker (first
    /// `n % threads` ranges get one extra item; trailing ranges may be
    /// empty). Merging per-range results *in range order* reproduces the
    /// sequential iteration order — the key to bit-identical output.
    pub fn shard_ranges(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        let parts = self.threads;
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly_once() {
        let p = Parallelism::new(3);
        let ranges = p.shard_ranges(8);
        assert_eq!(ranges, vec![0..3, 3..6, 6..8]);
        let p = Parallelism::new(4);
        assert_eq!(p.shard_ranges(2), vec![0..1, 1..2, 2..2, 2..2]);
        assert_eq!(Parallelism::sequential().shard_ranges(5), vec![0..5]);
    }
}
