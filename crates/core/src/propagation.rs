//! Yacc-style LALR(1) look-aheads by spontaneous generation and
//! propagation.
//!
//! This is the pre-DeRemer–Pennello technique (Aho–Sethi–Ullman
//! Algorithm 4.63, what YACC's generation did): for each LR(0) kernel item,
//! compute the LR(1) closure with a *dummy* look-ahead `#`; concrete
//! look-aheads found on GOTO successors are **spontaneous**, while `#`
//! marks kernel-to-kernel **propagation** links. The links are then
//! iterated to a fixpoint. It yields the same sets as the paper's
//! algorithm (the integration tests assert this) but repeats closure work
//! per kernel item and iterates, which is exactly the inefficiency the
//! paper removes — this module is the timing baseline of experiment **E2**.

use lalr_automata::{closure1, Item, Lr0Automaton, StateId};
use lalr_bitset::BitSet;
use lalr_grammar::analysis::{nullable, FirstSets};
use lalr_grammar::{Grammar, ProdId, Terminal};
use rustc_hash::FxHashMap;

use crate::lookahead::LookaheadSets;

/// Computes LALR(1) look-ahead sets via spontaneous generation and
/// propagation over LR(0) kernel items.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::{propagation_lookaheads, LalrAnalysis};
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let yacc_style = propagation_lookaheads(&g, &lr0);
/// let dp = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// assert!(yacc_style.agrees_with(&dp));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn propagation_lookaheads(grammar: &Grammar, lr0: &Lr0Automaton) -> LookaheadSets {
    propagation_recorded(grammar, lr0, &lalr_obs::NULL)
}

/// [`propagation_lookaheads`] under an observer: the three stages run in
/// spans (`prop.closure` — per-kernel LR(1) closures discovering
/// spontaneous look-aheads and links; `prop.fixpoint` — iterating the
/// links; `prop.emit` — the final per-state closure emission), with
/// kernel/link/pass counters. Table 9 uses this to attribute where the
/// propagation baseline spends its time.
pub fn propagation_recorded(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    rec: &dyn lalr_obs::Recorder,
) -> LookaheadSets {
    let nullable_set = nullable(grammar);
    let first = FirstSets::compute(grammar, &nullable_set);
    // The dummy "#" terminal gets one extra column past the real alphabet.
    let n_real = grammar.terminal_count();
    let n_cols = n_real + 1;
    let dummy = n_real;

    // Enumerate kernel items: (state, item) → dense index.
    let closure_span = lalr_obs::span(rec, "prop.closure");
    let mut kernel_idx: FxHashMap<(StateId, Item), usize> = FxHashMap::default();
    let mut kernels: Vec<(StateId, Item)> = Vec::new();
    for state in lr0.states() {
        for &item in lr0.kernel(state).items() {
            kernel_idx.insert((state, item), kernels.len());
            kernels.push((state, item));
        }
    }

    // Look-ahead set per kernel item (over the real alphabet).
    let mut la: Vec<BitSet> = vec![BitSet::new(n_real); kernels.len()];
    // Propagation links between kernel items.
    let mut links: Vec<Vec<usize>> = vec![Vec::new(); kernels.len()];

    // The start kernel item spontaneously receives $.
    let start_item = Item::start_of(ProdId::START);
    la[kernel_idx[&(StateId::START, start_item)]].insert(Terminal::EOF.index());

    // Discover spontaneous look-aheads and propagation links by closing
    // each kernel item with the dummy look-ahead.
    for (k, &(state, item)) in kernels.iter().enumerate() {
        let mut seed = BitSet::new(n_cols);
        seed.insert(dummy);
        let closed = closure1(grammar, &first, &[(item, seed)], n_cols);
        for (cit, cla) in &closed {
            let Some(sym) = cit.next_symbol(grammar) else {
                continue;
            };
            let target = lr0
                .transition(state, sym)
                .expect("closure item's transition exists");
            let tk = kernel_idx[&(target, cit.advanced())];
            for col in cla.iter() {
                if col == dummy {
                    links[k].push(tk);
                } else {
                    la[tk].insert(col);
                }
            }
        }
    }

    if rec.is_enabled() {
        rec.add("prop.kernel_items", kernels.len() as u64);
        let link_count: usize = links.iter().map(Vec::len).sum();
        rec.add("prop.links", link_count as u64);
    }
    drop(closure_span);

    // Iterate propagation to a fixpoint.
    let fixpoint_span = lalr_obs::span(rec, "prop.fixpoint");
    let mut passes = 0u64;
    let mut changed = true;
    while changed {
        changed = false;
        passes += 1;
        for k in 0..kernels.len() {
            if la[k].is_empty() {
                continue;
            }
            for &t in &links[k] {
                if t == k {
                    continue;
                }
                // Split-borrow the source and destination sets so the
                // union kernel runs without cloning the source each
                // pass.
                let (dst, src) = if t > k {
                    let (lo, hi) = la.split_at_mut(t);
                    (&mut hi[0], &lo[k])
                } else {
                    let (lo, hi) = la.split_at_mut(k);
                    (&mut lo[t], &hi[0])
                };
                changed |= dst.union_with(src);
            }
        }
    }
    if rec.is_enabled() {
        rec.add("prop.passes", passes);
    }
    drop(fixpoint_span);
    let _emit_span = lalr_obs::span(rec, "prop.emit");

    // Reductions of kernel items directly; reductions of non-kernel ε-items
    // via one more closure pass per state with the converged kernel LAs.
    let mut out = LookaheadSets::for_automaton(lr0, n_real);
    for state in lr0.states() {
        let kernel_with_la: Vec<(Item, BitSet)> = lr0
            .kernel(state)
            .items()
            .iter()
            .map(|&item| {
                let mut set = BitSet::new(n_cols);
                for b in la[kernel_idx[&(state, item)]].iter() {
                    set.insert(b);
                }
                (item, set)
            })
            .collect();
        let closed = closure1(grammar, &first, &kernel_with_la, n_cols);
        for (cit, cla) in &closed {
            if cit.is_final(grammar) {
                let mut real = BitSet::new(n_real);
                for col in cla.iter() {
                    if col != dummy {
                        real.insert(col);
                    }
                }
                out.union_into(state, cit.production(), &real);
            }
        }
    }
    // Reductions never reached with any look-ahead still need an entry.
    for state in lr0.states() {
        for &prod in lr0.reductions(state) {
            out.touch(state, prod);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    fn agree(src: &str) {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let prop = propagation_lookaheads(&g, &lr0);
        let dp = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        assert_eq!(prop, dp, "methods disagree on {src}");
    }

    #[test]
    fn agrees_with_dp_on_simple_grammars() {
        agree("s : \"a\" ;");
        agree("s : \"a\" s | \"b\" ;");
        agree("e : e \"+\" t | t ; t : \"x\" ;");
    }

    #[test]
    fn agrees_with_dp_on_nullable_heavy_grammar() {
        agree("s : a b c ; a : \"x\" | ; b : \"y\" | ; c : \"z\" | ;");
    }

    #[test]
    fn agrees_with_dp_on_lalr_not_slr() {
        agree("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;");
    }

    #[test]
    fn agrees_with_dp_on_dragon_expression() {
        agree("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;");
    }

    #[test]
    fn epsilon_reductions_get_lookaheads() {
        let g = parse_grammar("s : a \"x\" ; a : ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let prop = propagation_lookaheads(&g, &lr0);
        let a = g.nonterminal_by_name("a").unwrap();
        let eps = g.productions_of(a)[0];
        let la = prop.la(StateId::START, eps).unwrap();
        let x = g.terminal_by_name("x").unwrap();
        assert!(la.contains(x.index()));
        assert_eq!(la.count(), 1);
    }
}
