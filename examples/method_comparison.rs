//! Compare the five look-ahead methods on one grammar: sizes of the sets,
//! conflicts reported, and agreement with the LR(1)-merge definition.
//!
//! ```text
//! cargo run --example method_comparison -- lalr_not_slr
//! ```

use lalr::automata::merge_lr1;
use lalr::core::{propagation_lookaheads, NqlalrAnalysis};
use lalr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lalr_not_slr".to_string());
    let entry =
        lalr::corpus::by_name(&name).ok_or_else(|| format!("unknown corpus grammar {name:?}"))?;
    let grammar = entry.grammar();
    println!("grammar {name}: {}", entry.description);

    let lr0 = Lr0Automaton::build(&grammar);
    let lr1 = Lr1Automaton::build(&grammar);
    println!(
        "LR(0) states {}  canonical LR(1) states {}",
        lr0.state_count(),
        lr1.state_count()
    );

    let dp = LalrAnalysis::compute(&grammar, &lr0).into_lookaheads();
    let prop = propagation_lookaheads(&grammar, &lr0);
    let slr = slr_lookaheads(&grammar, &lr0);
    let nq = NqlalrAnalysis::compute(&grammar, &lr0).into_lookaheads();
    let merged = LookaheadSets::from(&merge_lr1(&grammar, &lr1, &lr0));

    println!(
        "\n{:<24} {:>10} {:>10} {:>10}",
        "method", "points", "total-LA", "conflicts"
    );
    for (label, las) in [
        ("DeRemer-Pennello", &dp),
        ("yacc propagation", &prop),
        ("canonical LR(1)+merge", &merged),
        ("SLR(1)", &slr),
        ("NQLALR(1)", &nq),
    ] {
        let conflicts = find_conflicts(&grammar, &lr0, las).len();
        println!(
            "{:<24} {:>10} {:>10} {:>10}",
            label,
            las.reduction_count(),
            las.total_bits(),
            conflicts
        );
    }

    println!(
        "\nDP == propagation: {}",
        if dp == prop { "yes" } else { "NO (bug!)" }
    );
    let agree_with_merge = merged
        .iter()
        .all(|((s, p), set)| dp.la(s, p).is_some_and(|d| d == set));
    println!(
        "DP == LR(1)-merge on reachable reductions: {}",
        if agree_with_merge { "yes" } else { "NO (bug!)" }
    );
    Ok(())
}
