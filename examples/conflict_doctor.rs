//! Conflict doctor: explain every conflict in a grammar, show how
//! precedence resolves some of them, and demonstrate panic-mode recovery
//! on a broken input.
//!
//! ```text
//! cargo run --example conflict_doctor
//! ```

use lalr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The dangling-else grammar with an assignment statement list.
    let grammar = parse_grammar(
        r#"
        %start stmts
        stmts : stmt | stmts ";" stmt ;
        stmt  : IF expr THEN stmt
              | IF expr THEN stmt ELSE stmt
              | ID "=" expr
              | ;
        expr  : ID | NUM ;
        "#,
    )?;

    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    let conflicts = analysis.conflicts(&grammar, &lr0);
    println!("== raw LALR(1) conflicts ({}) ==", conflicts.len());
    for c in &conflicts {
        println!("  {}", c.display(&grammar));
    }

    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    println!("\n== resolutions applied (yacc defaults) ==");
    for r in table.resolutions() {
        println!(
            "  state {} on {:?}: kept {} over {} ({:?})",
            r.state,
            table.terminal_name(r.terminal),
            r.kept,
            r.discarded,
            r.reason
        );
    }

    // Parse a valid input: else binds to the nearest if (the shift).
    let lexer = Lexer::for_table(&table)
        .number("NUM")
        .identifier("ID")
        .build();
    let tokens = lexer.tokenize("IF x THEN IF y THEN a = 1 ELSE b = 2")?;
    let tree = Parser::new(&table).parse(tokens)?;
    println!(
        "\ndangling else attaches inner-most:\n{}",
        tree.to_sexpr(&table)
    );

    // Error recovery across statements.
    let semi = table.terminal_by_name(";").expect("services ;");
    let broken = lexer.tokenize("a = 1 ; b = = 9 ; c = 3 ; IF THEN")?;
    let (tree, errors) = Parser::new(&table).parse_with_recovery(broken, &[semi], 8);
    println!("\n== recovery over broken input ==");
    for e in &errors {
        println!("  error: {e}");
    }
    println!("recovered tree produced: {}", tree.is_some());
    Ok(())
}
