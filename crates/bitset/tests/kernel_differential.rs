//! Differential pinning of every kernel lane against a naive reference.
//!
//! The kernel module carries four implementations of the same row union:
//! the `W1`/`W2` fixed-width lanes, the 4-way unrolled scalar wide lane,
//! and (under the `simd` feature) the SSE2/AVX2 lanes selected at
//! runtime. Widths `1..=8` words cross every dispatch boundary — 1 and 2
//! hit the fixed lanes, 3+ the wide lane, and 5/7 exercise the unroll
//! remainders — and universes deliberately include ragged tails
//! (`bits % 64 != 0`). Whatever lane this build dispatches to must be
//! bit-identical to the one-word-at-a-time reference.

use lalr_bitset::{BitMatrix, BitSet};
use proptest::prelude::*;

const BITS: usize = usize::BITS as usize;

/// A universe of 1..=8 words, with ragged tails more likely than full
/// words.
fn universe() -> impl Strategy<Value = usize> {
    (1usize..=8, 1usize..=BITS).prop_map(|(words, used)| (words - 1) * BITS + used)
}

/// An arbitrary set over `0..bits` plus the naive mirror of its indices.
fn set_with_mirror(bits: usize) -> impl Strategy<Value = (BitSet, Vec<usize>)> {
    prop::collection::vec(0..bits, 0..64).prop_map(move |idx| {
        let set = BitSet::from_indices(bits, idx.iter().copied());
        (set, idx)
    })
}

proptest! {
    /// `union_with` (whatever lane it dispatches to) matches per-index
    /// insertion, bit for bit, including the changed flag and the
    /// tail-word invariant.
    #[test]
    fn union_matches_naive_reference(
        input in universe().prop_flat_map(|bits| {
            (Just(bits), (set_with_mirror(bits), set_with_mirror(bits)))
        })
    ) {
        let (bits, ((mut a, ia), (b, ib))) = input.clone();
        let before = a.clone();
        let changed = a.union_with(&b);

        let mut naive = BitSet::new(bits);
        for &i in ia.iter().chain(&ib) {
            naive.insert(i);
        }
        prop_assert_eq!(&a, &naive);
        prop_assert_eq!(changed, a != before, "changed flag must track mutation");

        // Tail invariant: counting through words equals counting through
        // indices, which fails if a lane smeared bits past `bits`.
        prop_assert_eq!(a.count(), naive.iter().count());

        // Idempotence: a second union through the same lane is a no-op.
        let mut again = a.clone();
        prop_assert!(!again.union_with(&b));
        prop_assert_eq!(again, a);
    }

    /// Matrix row unions (two-row, external-words and row-copy kernels)
    /// agree with the owned-set union across the same widths.
    #[test]
    fn matrix_kernels_match_bitset_union(
        input in universe().prop_flat_map(|bits| {
            (Just(bits), (set_with_mirror(bits), set_with_mirror(bits)))
        })
    ) {
        let (bits, ((a, _), (b, _))) = input.clone();
        let mut m = BitMatrix::new(3, bits);
        for i in &a {
            m.set(0, i);
        }
        for i in &b {
            m.set(1, i);
        }

        let mut want = a.clone();
        let want_changed = want.union_with(&b);

        let mut via_rows = m.clone();
        prop_assert_eq!(via_rows.union_rows(0, 1), want_changed);
        prop_assert_eq!(via_rows.row_to_bitset(0), want.clone());

        let mut via_words = m.clone();
        prop_assert_eq!(via_words.union_row_with_words(0, b.as_words()), want_changed);
        prop_assert_eq!(via_words.row_to_bitset(0), want.clone());

        m.copy_row(2, 0);
        prop_assert_eq!(m.row_to_bitset(2), a);
    }

    /// The atomic lane (`fetch_or_row` / `union_row_from`) is
    /// bit-identical to the plain matrix lane.
    #[test]
    fn atomic_kernels_match_plain_matrix(
        input in universe().prop_flat_map(|bits| {
            (Just(bits), (set_with_mirror(bits), set_with_mirror(bits)))
        })
    ) {
        let (bits, ((a, _), (b, _))) = input.clone();
        let mut m = BitMatrix::new(2, bits);
        for i in &a {
            m.set(0, i);
        }
        for i in &b {
            m.set(1, i);
        }
        let atomic = lalr_bitset::AtomicBitMatrix::from_matrix(&m);
        let plain_changed = m.union_rows(0, 1);
        let atomic_changed = atomic.union_row_from(0, 1);
        prop_assert_eq!(atomic_changed, plain_changed);
        prop_assert_eq!(atomic.into_matrix(), m);
    }

    /// Query kernels (popcount / subset / disjoint) across the owned,
    /// borrowed and matrix-row paths all agree with index arithmetic.
    #[test]
    fn query_kernels_agree_with_index_sets(
        input in universe().prop_flat_map(|bits| {
            (Just(bits), (set_with_mirror(bits), set_with_mirror(bits)))
        })
    ) {
        let (_bits, ((a, ia), (b, ib))) = input.clone();
        use std::collections::BTreeSet;
        let sa: BTreeSet<usize> = ia.into_iter().collect();
        let sb: BTreeSet<usize> = ib.into_iter().collect();

        prop_assert_eq!(a.count(), sa.len());
        prop_assert_eq!(a.as_ref_set().count(), sa.len());
        prop_assert_eq!(a.is_subset(&b), sa.is_subset(&sb));
        prop_assert_eq!(a.as_ref_set().is_subset(b.as_ref_set()), sa.is_subset(&sb));
        prop_assert_eq!(a.is_disjoint(&b), sa.is_disjoint(&sb));
        prop_assert_eq!(a.as_ref_set().is_disjoint(b.as_ref_set()), sa.is_disjoint(&sb));
    }
}

/// The layout a universe selects is a pure function of its width, and
/// the selected lane name is consistent with the build's features — the
/// anchor for `kernel_budget.rs` in `lalr-bench`.
#[test]
fn layouts_and_dispatch_are_deterministic() {
    use lalr_bitset::RowLayout;
    for words in 1usize..=8 {
        for used in [1, BITS / 2, BITS] {
            let bits = (words - 1) * BITS + used;
            let layout = RowLayout::select(bits);
            assert_eq!(layout.words(), words.max(1), "bits={bits}");
            let expected = match words {
                1 => "fixed-64",
                2 => "fixed-128",
                _ => "multi-word",
            };
            assert_eq!(layout.name(), expected, "bits={bits}");
            assert_eq!(BitMatrix::new(1, bits).layout(), layout);
        }
    }
    if lalr_bitset::simd_compiled() {
        assert!(matches!(lalr_bitset::dispatch_name(), "sse2" | "avx2"));
    } else {
        assert_eq!(lalr_bitset::dispatch_name(), "scalar-unrolled");
    }
}
