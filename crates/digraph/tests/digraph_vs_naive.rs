//! Property tests: the Digraph algorithm must agree with the naive fixpoint
//! reference on random graphs, and with reachability semantics.

use lalr_bitset::BitMatrix;
use lalr_digraph::{digraph, naive_closure, tarjan_scc, Graph};
use proptest::prelude::*;

const COLS: usize = 64;

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    edges: Vec<(usize, usize)>,
    init: Vec<(usize, usize)>,
}

fn case() -> impl Strategy<Value = Case> {
    (1usize..24).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..80);
        let init = prop::collection::vec((0..n, 0..COLS), 0..40);
        (Just(n), edges, init).prop_map(|(n, edges, init)| Case { n, edges, init })
    })
}

fn setup(c: &Case) -> (Graph, BitMatrix) {
    let g = Graph::from_edges(c.n, c.edges.iter().copied());
    let mut m = BitMatrix::new(c.n, COLS);
    for &(r, col) in &c.init {
        m.set(r, col);
    }
    (g, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn digraph_equals_naive_closure(c in case()) {
        let (g, init) = setup(&c);
        let mut fast = init.clone();
        let mut slow = init;
        digraph(&g, &mut fast);
        naive_closure(&g, &mut slow);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn digraph_result_is_reachability_union(c in case()) {
        // F(x) must equal the union of F'(y) over all y reachable from x
        // (including x itself), computed here by plain BFS.
        let (g, init) = setup(&c);
        let mut fast = init.clone();
        digraph(&g, &mut fast);
        for x in 0..c.n {
            let mut seen = vec![false; c.n];
            let mut queue = vec![x];
            seen[x] = true;
            let mut want = lalr_bitset::BitSet::new(COLS);
            while let Some(u) = queue.pop() {
                for col in init.iter_row(u) {
                    want.insert(col);
                }
                for &v in g.successors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push(v as usize);
                    }
                }
            }
            prop_assert_eq!(fast.row_to_bitset(x), want, "node {}", x);
        }
    }

    #[test]
    fn scc_members_get_identical_sets(c in case()) {
        let (g, init) = setup(&c);
        let mut fast = init;
        digraph(&g, &mut fast);
        let scc = tarjan_scc(&g);
        for a in 0..c.n {
            for b in 0..c.n {
                if scc.same_component(a, b) {
                    prop_assert_eq!(fast.row_to_bitset(a), fast.row_to_bitset(b));
                }
            }
        }
    }

    #[test]
    fn digraph_is_monotone_in_init(c in case(), extra in prop::collection::vec((0usize..24, 0..COLS), 0..10)) {
        let (g, init) = setup(&c);
        let mut bigger = init.clone();
        for &(r, col) in &extra {
            if r < c.n {
                bigger.set(r, col);
            }
        }
        let mut f_small = init;
        let mut f_big = bigger;
        digraph(&g, &mut f_small);
        digraph(&g, &mut f_big);
        for x in 0..c.n {
            prop_assert!(f_small.row_to_bitset(x).is_subset(&f_big.row_to_bitset(x)));
        }
    }

    #[test]
    fn scc_count_plus_sizes_consistent(c in case()) {
        let (g, _) = setup(&c);
        let scc = tarjan_scc(&g);
        let sizes = scc.sizes();
        prop_assert_eq!(sizes.len(), scc.count());
        prop_assert_eq!(sizes.iter().sum::<usize>(), c.n);
        prop_assert!(sizes.iter().all(|&s| s >= 1));
    }
}
