//! Load generator for the `lalr-service` compilation service
//! (EXPERIMENTS.md Table 8).
//!
//! Drives N client threads against an in-process [`Service`] with a
//! mixed compile/classify/table/parse workload over the grammar corpus,
//! and reports throughput plus latency percentiles for two arms:
//!
//! * **cold** — caching disabled, so every request pays the full
//!   grammar → LR(0) → Read/Follow → tables pipeline;
//! * **warm** — the default cache, pre-warmed with one pass over the
//!   corpus, so steady-state requests are fingerprint lookups.
//!
//! ```text
//! cargo run --release -p lalr-bench --bin loadgen              # 8 threads × 40 requests
//! cargo run --release -p lalr-bench --bin loadgen -- 4 100     # 4 threads × 100 requests
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use lalr_core::Parallelism;
use lalr_service::{GrammarFormat, Request, Service, ServiceConfig};

/// The request mix: for every corpus grammar one compile, one classify,
/// one table, and (where a sentence exists) one parse.
fn workload() -> Vec<Request> {
    let mut requests = Vec::new();
    for entry in lalr_corpus::all_entries() {
        let grammar = entry.source.to_string();
        requests.push(Request::Compile {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Classify {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Table {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
            compressed: true,
        });
        let parsed = entry.grammar();
        if let Some(sentence) = lalr_corpus::sentences::generate(&parsed, 7, 20) {
            let input: Vec<&str> = sentence.iter().map(|&t| parsed.terminal_name(t)).collect();
            requests.push(Request::Parse {
                grammar,
                format: GrammarFormat::Native,
                input: input.join(" "),
            });
        }
    }
    requests
}

struct ArmResult {
    name: &'static str,
    requests: usize,
    errors: u64,
    elapsed: Duration,
    p50: Duration,
    p90: Duration,
    p99: Duration,
}

impl ArmResult {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Runs one arm: `threads` clients, each issuing `per_thread` requests
/// drawn round-robin (with a per-thread offset) from the workload.
fn run_arm(
    name: &'static str,
    service: &Arc<Service>,
    requests: &Arc<Vec<Request>>,
    threads: usize,
    per_thread: usize,
) -> ArmResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(service);
            let requests = Arc::clone(requests);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_thread);
                let mut errors = 0u64;
                for k in 0..per_thread {
                    // Offset by thread so the arms exercise concurrent
                    // requests for *different* grammars, not a convoy.
                    let request = &requests[(t * 7 + k) % requests.len()];
                    let call_start = Instant::now();
                    let response = service.call(request.clone(), None);
                    latencies.push(call_start.elapsed());
                    if !response.is_ok() {
                        errors += 1;
                    }
                }
                (latencies, errors)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(threads * per_thread);
    let mut errors = 0;
    for h in handles {
        let (l, e) = h.join().expect("client thread");
        latencies.extend(l);
        errors += e;
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    ArmResult {
        name,
        requests: latencies.len(),
        errors,
        elapsed,
        p50: percentile(&latencies, 0.50),
        p90: percentile(&latencies, 0.90),
        p99: percentile(&latencies, 0.99),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(8);
    let per_thread: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);

    let requests = Arc::new(workload());
    eprintln!(
        "loadgen: {threads} threads x {per_thread} requests, {} distinct requests in the mix",
        requests.len()
    );

    // Cold arm: no cache, every request compiles.
    let cold_service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::new(threads),
        cache: None,
        ..ServiceConfig::default()
    }));
    let cold = run_arm("cold", &cold_service, &requests, threads, per_thread);
    cold_service.shutdown();

    // Warm arm: default cache, pre-warmed with one sequential pass.
    let warm_service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::new(threads),
        ..ServiceConfig::default()
    }));
    for request in requests.iter() {
        let response = warm_service.call(request.clone(), None);
        assert!(response.is_ok(), "warm-up request failed: {response:?}");
    }
    let warm = run_arm("warm", &warm_service, &requests, threads, per_thread);
    let stats = warm_service.stats();
    warm_service.shutdown();

    println!("| arm  | requests | errors | req/s | p50 (ms) | p90 (ms) | p99 (ms) |");
    println!("|------|---------:|-------:|------:|---------:|---------:|---------:|");
    for arm in [&cold, &warm] {
        println!(
            "| {} | {} | {} | {:.0} | {:.3} | {:.3} | {:.3} |",
            arm.name,
            arm.requests,
            arm.errors,
            arm.throughput(),
            ms(arm.p50),
            ms(arm.p90),
            ms(arm.p99),
        );
    }
    let speedup = warm.throughput() / cold.throughput();
    println!();
    println!("warm/cold throughput: {speedup:.1}x");
    if let Some(cache) = stats.cache {
        println!(
            "warm-arm cache: {:.1}% hit rate ({} hits, {} misses, {} coalesced)",
            cache.hit_rate() * 100.0,
            cache.hits,
            cache.misses,
            cache.coalesced
        );
    }
    if cold.errors + warm.errors > 0 {
        eprintln!("loadgen: some requests failed");
        std::process::exit(1);
    }
}
