//! Recursion structure of a grammar.

use lalr_digraph::{tarjan_scc, Graph};

use crate::analysis::nullable::NullableSet;
use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol};

/// How a nonterminal recurses (relevant because left recursion is what LR
/// handles natively and LL cannot; the corpus statistics report it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecursionKind {
    /// `A ⇒+ A γ` — the recursive occurrence can be leftmost.
    Left,
}

/// The nonterminals `A` with `A ⇒+ A γ` (left recursion, possibly through
/// nullable prefixes and other nonterminals).
///
/// # Examples
///
/// ```
/// use lalr_grammar::{analysis::{left_recursive_nonterminals, nullable}, parse_grammar};
///
/// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
/// let lr = left_recursive_nonterminals(&g, &nullable(&g));
/// assert_eq!(lr, vec![g.nonterminal_by_name("e").unwrap()]);
/// # Ok::<(), lalr_grammar::GrammarError>(())
/// ```
pub fn left_recursive_nonterminals(grammar: &Grammar, nullable: &NullableSet) -> Vec<NonTerminal> {
    // Build the "can begin with" relation: A -> B when A → αBβ with α ⇒* ε.
    let n = grammar.nonterminal_count();
    let mut graph = Graph::new(n);
    for p in grammar.productions() {
        for &sym in p.rhs() {
            match sym {
                Symbol::Terminal(_) => break,
                Symbol::NonTerminal(b) => {
                    graph.add_edge_dedup(p.lhs().index(), b.index());
                    if !nullable.contains(b) {
                        break;
                    }
                }
            }
        }
    }
    // A is left-recursive iff it lies on a cycle of this relation.
    let scc = tarjan_scc(&graph);
    let sizes = scc.sizes();
    (0..n)
        .filter(|&i| sizes[scc.component(i)] > 1 || graph.has_self_loop(i))
        .map(NonTerminal::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::nullable;
    use crate::parse_grammar;

    fn left_rec(src: &str) -> Vec<String> {
        let g = parse_grammar(src).unwrap();
        left_recursive_nonterminals(&g, &nullable(&g))
            .into_iter()
            .map(|nt| g.nonterminal_name(nt).to_string())
            .collect()
    }

    #[test]
    fn direct_left_recursion() {
        assert_eq!(left_rec("e : e \"+\" \"x\" | \"x\" ;"), vec!["e"]);
    }

    #[test]
    fn right_recursion_is_not_left() {
        assert!(left_rec("e : \"x\" \"+\" e | \"x\" ;").is_empty());
    }

    #[test]
    fn indirect_left_recursion() {
        assert_eq!(
            left_rec("a : b \"x\" | \"q\" ; b : a \"y\" ;"),
            vec!["a", "b"]
        );
    }

    #[test]
    fn hidden_left_recursion_through_nullable() {
        // a → n a "x": n nullable, so `a` can begin with `a`.
        assert_eq!(left_rec("a : n a \"x\" | \"q\" ; n : | \"m\" ;"), vec!["a"]);
    }

    #[test]
    fn nonnullable_prefix_blocks() {
        assert!(left_rec("a : n a \"x\" | \"q\" ; n : \"m\" ;").is_empty());
    }
}
