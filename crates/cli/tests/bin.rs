//! End-to-end tests of the `lalrgen` binary itself (argument handling,
//! exit codes, stdout/stderr split).

use std::process::Command;

fn lalrgen(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lalrgen"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero() {
    let out = lalrgen(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn unknown_command_exits_two() {
    let out = lalrgen(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("available: analyze,"), "{stderr}");
}

/// The full daemon lifecycle through the binary alone: serve on an
/// ephemeral port, compile through the client (cold then warm), read
/// stats, shut down in-band, and verify the server exits zero.
#[test]
fn serve_client_stats_shutdown_round_trip() {
    use std::io::BufRead;

    let mut server = Command::new(env!("CARGO_BIN_EXE_lalrgen"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");

    // The daemon announces its picked port on stderr before accepting.
    let mut stderr = std::io::BufReader::new(server.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();

    let client = |args: &[&str]| -> String {
        let out = lalrgen(&[&["client"], args, &["--addr", &addr]].concat());
        assert!(
            out.status.success(),
            "client {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let cold = client(&["compile", "expr"]);
    assert!(cold.contains("\"cached\":false"), "{cold}");
    let warm = client(&["compile", "expr"]);
    assert!(warm.contains("\"cached\":true"), "{warm}");

    let parse = client(&["parse", "expr", "--input", "NUM + NUM * NUM"]);
    assert!(parse.contains("\"accepted\":true"), "{parse}");

    let stats = lalrgen(&["stats", "--addr", &addr]);
    assert!(stats.status.success());
    let stats = String::from_utf8_lossy(&stats.stdout);
    assert!(stats.contains("\"hits\":"), "{stats}");

    client(&["shutdown"]);
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");
}

#[test]
fn serve_rejects_a_malformed_chaos_spec_naming_the_problem() {
    let out = lalrgen(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--chaos",
        "daemon.read:frobnicate:0.5",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--chaos"), "{stderr}");
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

#[test]
fn unknown_flag_lists_include_the_resilience_flags() {
    let out = lalrgen(&["serve", "--bogus"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--chaos"), "{stderr}");
    assert!(stderr.contains("--drain-ms"), "{stderr}");
    assert!(stderr.contains("--max-pending"), "{stderr}");

    let out = lalrgen(&["client", "compile", "expr", "--bogus"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--retries"), "{stderr}");
    assert!(stderr.contains("--backoff-ms"), "{stderr}");
}

/// A chaos-armed daemon through the binary alone: the first compile
/// panics in the worker, the retrying client succeeds anyway, and the
/// shutdown summary reports the drain.
#[test]
fn chaos_armed_serve_round_trip_with_retrying_client() {
    use std::io::BufRead;

    let mut server = Command::new(env!("CARGO_BIN_EXE_lalrgen"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--chaos",
            "service.compile:panic:@1",
            "--chaos-seed",
            "7",
            "--drain-ms",
            "2000",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");

    let mut stderr = std::io::BufReader::new(server.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .to_string();

    // Without retries the injected panic is the client's answer…
    let out = lalrgen(&["client", "compile", "expr", "--addr", &addr]);
    assert_eq!(out.status.code(), Some(1), "first compile should fail");
    let body = String::from_utf8_lossy(&out.stderr);
    assert!(body.contains("\"panicked\""), "{body}");

    // …and with them the next injected hit (none remain) cannot stop it.
    let out = lalrgen(&[
        "client",
        "compile",
        "expr",
        "--addr",
        &addr,
        "--retries",
        "2",
        "--backoff-ms",
        "1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"ok\":true"));

    let out = lalrgen(&["client", "shutdown", "--addr", &addr]);
    assert!(out.status.success());
    let mut stdout = server.stdout.take().unwrap();
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");
    let mut summary = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut summary).unwrap();
    assert!(summary.contains("drained"), "{summary}");
    assert!(summary.contains("aborted 0"), "{summary}");
}

/// Warm restart through the binary alone: a daemon with `--store`
/// compiles and persists, a second daemon over the same directory
/// serves the repeat request from disk (cached, store hit in stats)
/// without recompiling.
#[test]
fn serve_with_store_survives_a_restart_warm() {
    use std::io::BufRead;

    let dir = std::env::temp_dir().join(format!("lalrgen-store-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_string_lossy().into_owned();

    let spawn_server = || {
        let mut server = Command::new(env!("CARGO_BIN_EXE_lalrgen"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--store",
                &dir_arg,
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("server starts");
        let mut stderr = std::io::BufReader::new(server.stderr.take().unwrap());
        let mut line = String::new();
        stderr.read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("serving on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        (server, addr, stderr)
    };

    let (mut first, addr, mut first_err) = spawn_server();
    let cold = lalrgen(&["client", "compile", "expr", "--addr", &addr]);
    if !cold.status.success() {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut first_err, &mut rest).ok();
        panic!(
            "cold compile: {}\nserver stderr: {rest}",
            String::from_utf8_lossy(&cold.stderr)
        );
    }
    assert!(String::from_utf8_lossy(&cold.stdout).contains("\"cached\":false"));
    assert!(lalrgen(&["client", "shutdown", "--addr", &addr])
        .status
        .success());
    assert!(first.wait().unwrap().success());

    // The artifact store survives on disk between the two processes.
    let out = lalrgen(&["store", "verify", "--dir", &dir_arg]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 ok, 0 corrupt"));

    let (mut second, addr, _second_err) = spawn_server();
    let warm = lalrgen(&["client", "compile", "expr", "--addr", &addr]);
    assert!(warm.status.success());
    assert!(
        String::from_utf8_lossy(&warm.stdout).contains("\"cached\":true"),
        "warm restart must serve from the store: {}",
        String::from_utf8_lossy(&warm.stdout)
    );
    let stats = lalrgen(&["stats", "--addr", &addr]);
    let stats = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(stats.contains("\"store_hits\":1"), "{stats}");
    assert!(stats.contains("\"compiles\":0"), "{stats}");
    assert!(lalrgen(&["client", "shutdown", "--addr", &addr])
        .status
        .success());
    assert!(second.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn classify_corpus_grammar_on_stdout() {
    let out = lalrgen(&["classify", "ada_subset"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LALR(1)"), "{stdout}");
    assert!(out.stderr.is_empty());
}

#[test]
fn parse_rejection_exits_nonzero() {
    let out = lalrgen(&["parse", "expr", "1 +", "--number", "NUM"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("rejected"));
}

#[test]
fn codegen_emits_compilable_looking_source() {
    let out = lalrgen(&["codegen", "json", "json_parser"]);
    assert!(out.status.success());
    let src = String::from_utf8_lossy(&out.stdout);
    assert!(src.contains("@generated"));
    assert!(src.contains("json_parser"));
    assert!(src.contains("pub fn parse"));
}

#[test]
fn grammar_file_workflow() {
    let dir = std::env::temp_dir().join("lalrgen_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ab.g");
    std::fs::write(&path, "s : \"a\" s \"b\" | ;").unwrap();
    let p = path.to_str().unwrap();

    let out = lalrgen(&["analyze", p]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lalrgen(&["parse", p, "a a b b"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("accepted"));

    let out = lalrgen(&["parse", p, "a b b"]);
    assert_eq!(out.status.code(), Some(1));
}
