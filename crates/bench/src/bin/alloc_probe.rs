//! Prints allocation count/bytes of the cold `grammar → LA sets`
//! pipeline per method and corpus grammar (the raw data behind
//! EXPERIMENTS.md Table 7).

use lalr_automata::Lr0Automaton;
use lalr_bench::alloc_counter::measure;
use lalr_bench::methods::Method;

fn main() {
    println!(
        "{:<12} {:<16} {:>12} {:>14}",
        "grammar", "method", "allocations", "bytes"
    );
    for entry in lalr_corpus::all_entries() {
        for method in Method::ALL {
            let ((), stats) = measure(|| {
                let grammar = entry.grammar();
                let lr0 = Lr0Automaton::build(&grammar);
                let la = method.run(&grammar, &lr0);
                std::hint::black_box(la.total_bits());
            });
            println!(
                "{:<12} {:<16} {:>12} {:>14}",
                entry.name,
                method.label(),
                stats.allocations,
                stats.bytes
            );
        }
    }
}
