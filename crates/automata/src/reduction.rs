//! Dense enumeration of reduction points.
//!
//! A *reduction point* is a pair `(q, A → ω)` of an LR(0) state and a
//! production reducible in it — the row space of the paper's `LA`
//! function. Enumerating them once into a [`ReductionId`] range lets the
//! look-ahead pipeline replace `HashMap<(StateId, ProdId), …>` with flat
//! arrays indexed by a small integer: look-ahead sets become bit-matrix
//! rows and the lookback relation a CSR slab.

use lalr_grammar::ProdId;

use crate::lr0::{Lr0Automaton, StateId};

/// Identifier of a reduction point `(state, production)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReductionId(u32);

impl ReductionId {
    /// Creates an id from a raw index.
    #[inline]
    pub fn new(index: usize) -> ReductionId {
        ReductionId(index as u32)
    }

    /// The index into the enumeration (a [`ReductionIndex`] row).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The dense enumeration of all reduction points, in `(state, production)`
/// order.
///
/// Stored as CSR: the productions reducible in state `s` occupy
/// `prods[offsets[s] .. offsets[s + 1]]`, sorted, so `(state, prod) → id`
/// is a binary search in the state's run and `id → (state, prod)` is a
/// partition point over the offsets.
///
/// # Examples
///
/// ```
/// use lalr_automata::{Lr0Automaton, ReductionIndex};
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let idx = ReductionIndex::from_lr0(&lr0);
/// for (id, state, prod) in idx.iter() {
///     assert_eq!(idx.id(state, prod), Some(id));
///     assert_eq!(idx.point(id), (state, prod));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionIndex {
    /// CSR offsets, one per state plus a final total.
    offsets: Vec<u32>,
    /// Per-state sorted production ids, concatenated in state order.
    prods: Vec<ProdId>,
}

impl ReductionIndex {
    /// Enumerates the reduction points of an automaton.
    pub fn from_lr0(lr0: &Lr0Automaton) -> ReductionIndex {
        let mut offsets = Vec::with_capacity(lr0.state_count() + 1);
        offsets.push(0u32);
        let mut prods = Vec::new();
        for s in lr0.states() {
            // Per-state reductions are already sorted and deduplicated.
            prods.extend_from_slice(lr0.reductions(s));
            offsets.push(prods.len() as u32);
        }
        ReductionIndex { offsets, prods }
    }

    /// Builds an index over an explicit list of points (sorted and
    /// deduplicated here), for callers without an automaton at hand.
    pub fn from_points(points: impl IntoIterator<Item = (StateId, ProdId)>) -> ReductionIndex {
        let mut pts: Vec<(StateId, ProdId)> = points.into_iter().collect();
        pts.sort_unstable();
        pts.dedup();
        let n_states = pts.last().map_or(0, |&(s, _)| s.index() + 1);
        let mut offsets = Vec::with_capacity(n_states + 1);
        offsets.push(0u32);
        let mut prods = Vec::with_capacity(pts.len());
        let mut next = pts.iter().peekable();
        for s in 0..n_states {
            while let Some(&(_, p)) = next.next_if(|&&(q, _)| q.index() == s) {
                prods.push(p);
            }
            offsets.push(prods.len() as u32);
        }
        ReductionIndex { offsets, prods }
    }

    /// Number of reduction points.
    #[inline]
    pub fn len(&self) -> usize {
        self.prods.len()
    }

    /// `true` when the grammar has no reduction point (never for a built
    /// automaton — the accept state reduces the start production).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prods.is_empty()
    }

    /// Number of states covered by the index.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Looks up the id of `(state, prod)`, or `None` if that pair is not a
    /// reduction point.
    #[inline]
    pub fn id(&self, state: StateId, prod: ProdId) -> Option<ReductionId> {
        let s = state.index();
        if s >= self.state_count() {
            return None;
        }
        let lo = self.offsets[s] as usize;
        let hi = self.offsets[s + 1] as usize;
        self.prods[lo..hi]
            .binary_search(&prod)
            .ok()
            .map(|i| ReductionId::new(lo + i))
    }

    /// The `(state, production)` pair of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn point(&self, id: ReductionId) -> (StateId, ProdId) {
        let i = id.index();
        let prod = self.prods[i];
        let state = self.offsets.partition_point(|&o| o as usize <= i) - 1;
        (StateId::new(state), prod)
    }

    /// Iterates all points in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ReductionId, StateId, ProdId)> + '_ {
        (0..self.state_count()).flat_map(move |s| {
            let lo = self.offsets[s] as usize;
            let hi = self.offsets[s + 1] as usize;
            self.prods[lo..hi]
                .iter()
                .enumerate()
                .map(move |(i, &p)| (ReductionId::new(lo + i), StateId::new(s), p))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lr0Automaton;
    use lalr_grammar::parse_grammar;

    #[test]
    fn from_lr0_covers_every_reduction() {
        let g = parse_grammar(
            r#"
            e : e "+" t | t ;
            t : t "*" f | f ;
            f : "(" e ")" | "id" ;
            "#,
        )
        .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let idx = ReductionIndex::from_lr0(&lr0);
        let manual: usize = lr0.states().map(|s| lr0.reductions(s).len()).sum();
        assert_eq!(idx.len(), manual);
        for s in lr0.states() {
            for &p in lr0.reductions(s) {
                let id = idx.id(s, p).expect("every reduction point has an id");
                assert_eq!(idx.point(id), (s, p));
            }
        }
    }

    #[test]
    fn accept_reduction_is_indexed() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let idx = ReductionIndex::from_lr0(&lr0);
        let acc = lr0.accept_state(&g);
        assert!(idx.id(acc, ProdId::START).is_some());
    }

    #[test]
    fn unknown_points_have_no_id() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let idx = ReductionIndex::from_lr0(&lr0);
        assert_eq!(idx.id(StateId::START, ProdId::new(1)), None);
        assert_eq!(idx.id(StateId::new(999), ProdId::START), None);
    }

    #[test]
    fn from_points_matches_explicit_listing() {
        let pts = vec![
            (StateId::new(3), ProdId::new(2)),
            (StateId::new(0), ProdId::new(1)),
            (StateId::new(3), ProdId::new(1)),
            (StateId::new(0), ProdId::new(1)), // duplicate
        ];
        let idx = ReductionIndex::from_points(pts);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.state_count(), 4);
        let listed: Vec<_> = idx.iter().collect();
        assert_eq!(
            listed,
            vec![
                (ReductionId::new(0), StateId::new(0), ProdId::new(1)),
                (ReductionId::new(1), StateId::new(3), ProdId::new(1)),
                (ReductionId::new(2), StateId::new(3), ProdId::new(2)),
            ]
        );
        // State 1 and 2 have empty runs; lookups there miss cleanly.
        assert_eq!(idx.id(StateId::new(1), ProdId::new(1)), None);
    }

    #[test]
    fn empty_index() {
        let idx = ReductionIndex::from_points(std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.state_count(), 0);
        assert_eq!(idx.id(StateId::START, ProdId::START), None);
    }
}
