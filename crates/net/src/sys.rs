//! Raw Linux syscalls for the event loop and the artifact store.
//!
//! The workspace vendors external crates as offline shims rather than
//! pulling dependencies, and the same discipline applies here: instead
//! of `libc`/`mio` this module issues the five syscalls the event loop
//! needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd2`,
//! `close`) plus `mmap`/`munmap` for the store and `prlimit64` for
//! fd-limit introspection, directly via inline assembly on x86-64
//! Linux. Everything above this module is safe code working with
//! `io::Result`s.
//!
//! On any other target the functions exist but return
//! [`std::io::ErrorKind::Unsupported`], so the crate still compiles and
//! callers degrade gracefully (the service falls back to the
//! thread-per-connection daemon, the store falls back to `read`).

/// One epoll readiness record, laid out as the kernel expects
/// (`struct epoll_event` is packed on x86-64).
#[repr(C, packed)]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each event.
    pub data: u64,
}

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered registration.
pub const EPOLLET: u32 = 1 << 31;

/// One resource limit, laid out as the kernel's `struct rlimit64`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct RLimit {
    /// Soft (enforced) limit.
    pub cur: u64,
    /// Hard ceiling the soft limit may be raised to.
    pub max: u64,
}

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an existing registration.
pub const EPOLL_CTL_MOD: i32 = 3;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::EpollEvent;
    use std::io;

    const SYS_READ: u64 = 0;
    const SYS_WRITE: u64 = 1;
    const SYS_CLOSE: u64 = 3;
    const SYS_MMAP: u64 = 9;
    const SYS_MUNMAP: u64 = 11;
    const SYS_EPOLL_WAIT: u64 = 232;
    const SYS_EPOLL_CTL: u64 = 233;
    const SYS_EVENTFD2: u64 = 290;
    const SYS_EPOLL_CREATE1: u64 = 291;
    const SYS_PRLIMIT64: u64 = 302;

    const RLIMIT_NOFILE: u64 = 7;

    const EPOLL_CLOEXEC: u64 = 0x80000;
    const EFD_CLOEXEC: u64 = 0x80000;
    const EFD_NONBLOCK: u64 = 0x800;

    const PROT_READ: u64 = 0x1;
    const MAP_PRIVATE: u64 = 0x2;

    /// Issues one syscall; negative returns are `-errno`.
    ///
    /// # Safety
    ///
    /// The caller must uphold the kernel contract for syscall `n` —
    /// in particular any pointer arguments must be valid for the
    /// access the kernel will perform.
    unsafe fn syscall6(n: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    fn check(ret: i64) -> io::Result<i64> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1() -> io::Result<i32> {
        // SAFETY: no pointer arguments.
        let ret = unsafe { syscall6(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn epoll_ctl(
        epfd: i32,
        op: i32,
        fd: i32,
        event: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event.map_or(0u64, |e| e as *mut EpollEvent as u64);
        // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent the
        // kernel only reads.
        let ret = unsafe { syscall6(SYS_EPOLL_CTL, epfd as u64, op as u64, fd as u64, ptr, 0, 0) };
        check(ret).map(|_| ())
    }

    pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a live, writable slice; the kernel
            // writes at most `events.len()` records.
            let ret = unsafe {
                syscall6(
                    SYS_EPOLL_WAIT,
                    epfd as u64,
                    events.as_mut_ptr() as u64,
                    events.len() as u64,
                    timeout_ms as i64 as u64,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    pub fn eventfd() -> io::Result<i32> {
        // SAFETY: no pointer arguments.
        let ret = unsafe { syscall6(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) };
        check(ret).map(|fd| fd as i32)
    }

    pub fn write_u64(fd: i32, value: u64) -> io::Result<()> {
        let bytes = value.to_ne_bytes();
        // SAFETY: `bytes` outlives the call; the kernel reads 8 bytes.
        let ret = unsafe { syscall6(SYS_WRITE, fd as u64, bytes.as_ptr() as u64, 8, 0, 0, 0) };
        check(ret).map(|_| ())
    }

    pub fn read_u64(fd: i32) -> io::Result<u64> {
        let mut bytes = [0u8; 8];
        // SAFETY: `bytes` is writable for 8 bytes.
        let ret = unsafe { syscall6(SYS_READ, fd as u64, bytes.as_mut_ptr() as u64, 8, 0, 0, 0) };
        check(ret).map(|_| u64::from_ne_bytes(bytes))
    }

    pub fn close(fd: i32) -> io::Result<()> {
        // SAFETY: no pointer arguments; closing an fd we own.
        let ret = unsafe { syscall6(SYS_CLOSE, fd as u64, 0, 0, 0, 0, 0) };
        check(ret).map(|_| ())
    }

    pub fn mmap_readonly(fd: i32, len: usize) -> io::Result<*const u8> {
        // SAFETY: a fresh private read-only mapping at a kernel-chosen
        // address; no existing memory is affected.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len as u64,
                PROT_READ,
                MAP_PRIVATE,
                fd as u64,
                0,
            )
        };
        check(ret).map(|addr| addr as *const u8)
    }

    pub fn munmap(addr: *const u8, len: usize) -> io::Result<()> {
        // SAFETY: unmapping a region this process previously mapped.
        let ret = unsafe { syscall6(SYS_MUNMAP, addr as u64, len as u64, 0, 0, 0, 0) };
        check(ret).map(|_| ())
    }

    pub fn get_nofile() -> io::Result<super::RLimit> {
        let mut lim = super::RLimit { cur: 0, max: 0 };
        // SAFETY: the kernel writes one rlimit64 into `lim` (pid 0 =
        // this process, old_limit out-pointer, no new limit).
        let ret = unsafe {
            syscall6(
                SYS_PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut lim as *mut super::RLimit as u64,
                0,
                0,
            )
        };
        check(ret).map(|_| lim)
    }

    pub fn set_nofile(lim: super::RLimit) -> io::Result<()> {
        // SAFETY: the kernel reads one rlimit64 from `lim` (new limit,
        // no out-pointer).
        let ret = unsafe {
            syscall6(
                SYS_PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &lim as *const super::RLimit as u64,
                0,
                0,
                0,
            )
        };
        check(ret).map(|_| ())
    }

    /// Dereferences a mapped region as a byte slice.
    ///
    /// # Safety encapsulation
    ///
    /// Only [`crate::Mmap`] calls this, with the pointer and length it
    /// got from a successful [`mmap_readonly`] and before the matching
    /// [`munmap`], so the region is live and immutable for the slice's
    /// lifetime.
    pub fn map_slice<'a>(addr: *const u8, len: usize) -> &'a [u8] {
        // SAFETY: see above — addr/len name a live PROT_READ mapping.
        unsafe { std::slice::from_raw_parts(addr, len) }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::EpollEvent;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "lalr-net raw syscalls are only implemented for x86-64 Linux",
        ))
    }

    pub fn epoll_create1() -> io::Result<i32> {
        unsupported()
    }
    pub fn epoll_ctl(_: i32, _: i32, _: i32, _: Option<&mut EpollEvent>) -> io::Result<()> {
        unsupported()
    }
    pub fn epoll_wait(_: i32, _: &mut [EpollEvent], _: i32) -> io::Result<usize> {
        unsupported()
    }
    pub fn eventfd() -> io::Result<i32> {
        unsupported()
    }
    pub fn write_u64(_: i32, _: u64) -> io::Result<()> {
        unsupported()
    }
    pub fn read_u64(_: i32) -> io::Result<u64> {
        unsupported()
    }
    pub fn close(_: i32) -> io::Result<()> {
        unsupported()
    }
    pub fn mmap_readonly(_: i32, _: usize) -> io::Result<*const u8> {
        unsupported()
    }
    pub fn munmap(_: *const u8, _: usize) -> io::Result<()> {
        unsupported()
    }
    pub fn get_nofile() -> io::Result<super::RLimit> {
        unsupported()
    }
    pub fn set_nofile(_: super::RLimit) -> io::Result<()> {
        unsupported()
    }
    pub fn map_slice<'a>(_: *const u8, _: usize) -> &'a [u8] {
        &[]
    }
}

pub(crate) use imp::{
    close, epoll_create1, epoll_ctl, epoll_wait, eventfd, map_slice, mmap_readonly, munmap,
    read_u64, write_u64,
};

/// `true` when the raw-syscall backend is available on this target.
pub fn supported() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

/// The process's current `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> std::io::Result<(u64, u64)> {
    imp::get_nofile().map(|l| (l.cur, l.max))
}

/// Raises the soft fd limit toward `want` (never beyond the hard
/// ceiling) and returns the soft limit now in effect. A `want` at or
/// below the current soft limit is a no-op, so callers can ask for
/// their ideal capacity unconditionally.
pub fn raise_nofile_limit(want: u64) -> std::io::Result<u64> {
    let (cur, max) = nofile_limit()?;
    let target = want.min(max);
    if target > cur {
        imp::set_nofile(RLimit { cur: target, max })?;
        Ok(target)
    } else {
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn nofile_limit_reads_and_no_op_raise_succeeds() {
        if !super::supported() {
            return;
        }
        let (cur, max) = super::nofile_limit().expect("prlimit64 reads");
        assert!(cur > 0 && cur <= max, "({cur}, {max})");
        // Asking for what we already have must not fail or shrink.
        let soft = super::raise_nofile_limit(cur).expect("no-op raise");
        assert!(soft >= cur);
    }
}
