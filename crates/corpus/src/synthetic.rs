//! Parameterized grammar families and a seeded random generator.
//!
//! The scaling figure (experiment **E4**) sweeps these families; property
//! tests use [`random`] to cross-validate the look-ahead methods on
//! thousands of arbitrary grammars.

use lalr_grammar::{Grammar, GrammarBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An expression grammar with `levels` left-associative binary-operator
/// precedence levels over parenthesised atoms.
///
/// `levels = 2` is exactly the dragon-book grammar. The LR(0) state count
/// grows linearly in `levels`, which makes the family ideal for the
/// scaling sweep.
///
/// # Panics
///
/// Panics if `levels == 0`.
///
/// # Examples
///
/// ```
/// let g = lalr_corpus::synthetic::expr_ladder(5);
/// assert_eq!(g.production_count(), 1 + 2 * 5 + 2);
/// ```
pub fn expr_ladder(levels: usize) -> Grammar {
    assert!(levels > 0, "at least one precedence level");
    let mut b = GrammarBuilder::new();
    let nt = |i: usize| format!("e{i}");
    for i in 0..levels {
        let op = format!("op{i}");
        b.rule(nt(i), [nt(i), op, nt(i + 1)]);
        b.rule(nt(i), [nt(i + 1)]);
    }
    b.rule(nt(levels), ["(".to_string(), nt(0), ")".to_string()]);
    b.rule(nt(levels), ["atom".to_string()]);
    b.start(nt(0));
    b.build().expect("ladder family is well-formed")
}

/// A unit-production chain of `depth` nonterminals ending in one terminal —
/// the worst case for `includes`-chain traversal (every link is an
/// includes edge).
///
/// # Panics
///
/// Panics if `depth == 0`.
///
/// # Examples
///
/// ```
/// let g = lalr_corpus::synthetic::chain(100);
/// // 100 links + the terminal rule + the `top` wrapper + the augmentation.
/// assert_eq!(g.production_count(), 103);
/// ```
pub fn chain(depth: usize) -> Grammar {
    assert!(depth > 0, "at least one link");
    let mut b = GrammarBuilder::new();
    for i in 0..depth {
        b.rule(format!("c{i}"), [format!("c{}", i + 1)]);
    }
    b.rule(format!("c{depth}"), ["x"]);
    // A trailing marker so the chain's FOLLOW is not just $.
    b.rule("top", [String::from("c0"), String::from("mark")]);
    b.start("top");
    b.build().expect("chain family is well-formed")
}

/// `n` optional (nullable) blocks followed by a terminator — produces a
/// dense `reads` relation (every block transition reads through all the
/// following nullable blocks).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use lalr_grammar::analysis::nullable;
///
/// let g = lalr_corpus::synthetic::nullable_blocks(8);
/// assert_eq!(nullable(&g).count(), 8);
/// ```
pub fn nullable_blocks(n: usize) -> Grammar {
    assert!(n > 0, "at least one block");
    let mut b = GrammarBuilder::new();
    let rhs: Vec<String> = (0..n)
        .map(|i| format!("b{i}"))
        .chain(std::iter::once("end".to_string()))
        .collect();
    b.rule("s", rhs);
    for i in 0..n {
        b.rule(format!("b{i}"), [format!("t{i}")]);
        b.rule(format!("b{i}"), Vec::<String>::new());
    }
    b.start("s");
    b.build().expect("nullable family is well-formed")
}

/// `n` left-recursive, comma-separated list nonterminals nested inside one
/// another — a statement/declaration-list shape common in real grammars.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn nested_lists(n: usize) -> Grammar {
    assert!(n > 0, "at least one list");
    let mut b = GrammarBuilder::new();
    for i in 0..n {
        let list = format!("list{i}");
        let item = format!("item{i}");
        let sep = format!("sep{i}");
        b.rule(list.clone(), [item.clone()]);
        b.rule(list.clone(), [list.clone(), sep, item.clone()]);
        if i + 1 < n {
            b.rule(
                item.clone(),
                [
                    format!("open{i}"),
                    format!("list{}", i + 1),
                    format!("close{i}"),
                ],
            );
        }
        b.rule(item, [format!("leaf{i}")]);
    }
    b.start("list0");
    b.build().expect("list family is well-formed")
}

/// A right-recursive cluster whose `includes` relation forms one big
/// strongly connected component per context — the stress case for the
/// Digraph SCC collapse: `a0 → a1 → … → a(n-1) → a0 tail | leaf`, all
/// links carrying nullable tails.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn includes_scc(n: usize) -> Grammar {
    assert!(n >= 2, "a cycle needs at least two nonterminals");
    let mut b = GrammarBuilder::new();
    b.rule("top", [String::from("a0"), String::from("mark")]);
    for i in 0..n {
        let next = format!("a{}", (i + 1) % n);
        // a_i : a_{i+1} opt  — opt nullable keeps the includes edge.
        b.rule(format!("a{i}"), [next, "opt".to_string()]);
        b.rule(format!("a{i}"), [format!("leaf{i}")]);
    }
    b.rule("opt", ["o"]);
    b.rule("opt", Vec::<String>::new());
    b.start("top");
    b.build().expect("scc family is well-formed")
}

/// `n` independent expression sub-grammars under one root — the `includes`
/// condensation is a wide forest (every sub-grammar is its own weakly
/// connected component hanging off the root transition), so the
/// level-scheduled Digraph traversal sees levels that are `n` components
/// wide. This is the stress case for *parallel* traversal, complementing
/// [`chain`] (deep and narrow) and [`includes_scc`] (one big component).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let g = lalr_corpus::synthetic::wide_forest(16);
/// // Per sub-grammar: 2 rules for u, 2 for v; plus n root alternatives
/// // and the augmentation rule.
/// assert_eq!(g.production_count(), 5 * 16 + 1);
/// ```
pub fn wide_forest(n: usize) -> Grammar {
    assert!(n > 0, "at least one sub-grammar");
    let mut b = GrammarBuilder::new();
    for i in 0..n {
        let u = format!("u{i}");
        let v = format!("v{i}");
        b.rule("s", [u.clone()]);
        b.rule(u.clone(), [u.clone(), format!("plus{i}"), v.clone()]);
        b.rule(u, [v.clone()]);
        b.rule(
            v.clone(),
            [format!("open{i}"), format!("u{i}"), format!("close{i}")],
        );
        b.rule(v, [format!("x{i}")]);
    }
    b.start("s");
    b.build().expect("forest family is well-formed")
}

/// Configuration for [`random`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomConfig {
    /// Number of nonterminals.
    pub nonterminals: usize,
    /// Number of terminals.
    pub terminals: usize,
    /// Number of productions (at least one per nonterminal is forced).
    pub productions: usize,
    /// Maximum right-hand-side length.
    pub max_rhs: usize,
    /// Probability that a production is an ε-production.
    pub epsilon_prob: f64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            nonterminals: 6,
            terminals: 5,
            productions: 14,
            max_rhs: 4,
            epsilon_prob: 0.15,
        }
    }
}

/// A seeded random grammar. Deterministic for a given `(seed, config)`.
///
/// The grammar may be ambiguous, non-LR, or contain useless symbols — the
/// point: the property tests assert that all LALR methods agree on
/// *arbitrary* grammars, not just polished ones.
///
/// # Panics
///
/// Panics if the config has zero nonterminals or terminals.
///
/// # Examples
///
/// ```
/// use lalr_corpus::synthetic::{random, RandomConfig};
///
/// let a = random(42, RandomConfig::default());
/// let b = random(42, RandomConfig::default());
/// assert_eq!(a, b, "same seed, same grammar");
/// ```
pub fn random(seed: u64, config: RandomConfig) -> Grammar {
    assert!(config.nonterminals > 0 && config.terminals > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GrammarBuilder::new();
    let nt = |i: usize| format!("n{i}");
    let t = |i: usize| format!("t{i}");

    let add_random_rule = |b: &mut GrammarBuilder, rng: &mut StdRng, lhs: usize| {
        if rng.gen_bool(config.epsilon_prob) {
            b.rule(nt(lhs), Vec::<String>::new());
            return;
        }
        let len = rng.gen_range(1..=config.max_rhs);
        let rhs: Vec<String> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    nt(rng.gen_range(0..config.nonterminals))
                } else {
                    t(rng.gen_range(0..config.terminals))
                }
            })
            .collect();
        b.rule(nt(lhs), rhs);
    };

    // One production per nonterminal, then the rest at random.
    for i in 0..config.nonterminals {
        add_random_rule(&mut b, &mut rng, i);
    }
    for _ in config.nonterminals..config.productions.max(config.nonterminals) {
        let lhs = rng.gen_range(0..config.nonterminals);
        add_random_rule(&mut b, &mut rng, lhs);
    }
    b.start(nt(0));
    b.build().expect("random grammars are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::GrammarStats;

    #[test]
    fn ladder_sizes_scale_linearly() {
        let s5 = GrammarStats::compute(&expr_ladder(5));
        let s10 = GrammarStats::compute(&expr_ladder(10));
        assert_eq!(s5.productions, 12);
        assert_eq!(s10.productions, 22);
        assert_eq!(s10.nonterminals, 11);
    }

    #[test]
    fn chain_depth_matches() {
        let g = chain(10);
        let stats = GrammarStats::compute(&g);
        assert_eq!(stats.nonterminals, 12); // c0..c10 + top
        assert_eq!(stats.left_recursive, 0);
    }

    #[test]
    fn nullable_blocks_are_all_nullable() {
        let g = nullable_blocks(5);
        let n = lalr_grammar::analysis::nullable(&g);
        assert_eq!(n.count(), 5);
    }

    #[test]
    fn nested_lists_are_left_recursive() {
        let g = nested_lists(3);
        let stats = GrammarStats::compute(&g);
        assert_eq!(stats.left_recursive, 3);
    }

    #[test]
    fn includes_scc_family_is_cyclic() {
        use lalr_digraph::tarjan_scc;
        let g = includes_scc(6);
        let lr0 = lalr_automata::Lr0Automaton::build(&g);
        let rel = lalr_core_free_includes(&g, &lr0);
        let scc = tarjan_scc(&rel);
        let sizes = scc.sizes();
        assert!(
            sizes.iter().any(|&s| s >= 6),
            "a big includes SCC exists: {sizes:?}"
        );
    }

    /// Builds just the includes graph without depending on lalr-core
    /// (corpus sits below core in the crate DAG).
    fn lalr_core_free_includes(
        g: &Grammar,
        lr0: &lalr_automata::Lr0Automaton,
    ) -> lalr_digraph::Graph {
        use lalr_grammar::Symbol;
        let nullable = lalr_grammar::analysis::nullable(g);
        let nts = lr0.nt_transitions();
        let mut graph = lalr_digraph::Graph::new(nts.len());
        for (j, t) in nts.iter().enumerate() {
            for &pid in g.productions_of(t.nt) {
                let rhs = g.production(pid).rhs();
                let mut state = t.from;
                for (k, &sym) in rhs.iter().enumerate() {
                    if let Symbol::NonTerminal(a) = sym {
                        let tail_nullable = rhs[k + 1..]
                            .iter()
                            .all(|&s| matches!(s, Symbol::NonTerminal(n) if nullable.contains(n)));
                        if tail_nullable {
                            let i = lr0.nt_transition_id(state, a).unwrap();
                            graph.add_edge_dedup(i.index(), j);
                        }
                    }
                    state = lr0.transition(state, sym).unwrap();
                }
            }
        }
        graph
    }

    #[test]
    fn wide_forest_condensation_has_wide_levels() {
        use lalr_digraph::LevelSchedule;
        let n = 12;
        let g = wide_forest(n);
        let lr0 = lalr_automata::Lr0Automaton::build(&g);
        let includes = lalr_core_free_includes(&g, &lr0);
        let schedule = LevelSchedule::of(&includes);
        assert!(
            schedule.max_width() >= n,
            "a level should be at least {n} components wide, widest is {}",
            schedule.max_width()
        );
    }

    #[test]
    fn random_is_deterministic_and_seed_sensitive() {
        let cfg = RandomConfig::default();
        assert_eq!(random(7, cfg), random(7, cfg));
        assert_ne!(random(7, cfg), random(8, cfg));
    }

    #[test]
    fn random_respects_size_bounds() {
        let cfg = RandomConfig {
            nonterminals: 4,
            terminals: 3,
            productions: 10,
            max_rhs: 3,
            epsilon_prob: 0.0,
        };
        let g = random(1, cfg);
        let stats = GrammarStats::compute(&g);
        assert_eq!(stats.productions, 10);
        assert!(stats.max_rhs_len <= 3);
        assert!(stats.nonterminals <= 4);
        assert_eq!(stats.epsilon_productions, 0);
    }
}
