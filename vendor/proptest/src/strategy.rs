//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// Generates values of one type from the deterministic test stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into a strategy-producing `f` and draws
    /// from the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+ ;))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1 ;)
    (A.0, B.1, C.2 ;)
    (A.0, B.1, C.2, D.3 ;)
    (A.0, B.1, C.2, D.3, E.4 ;)
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use crate::test_runner::TestRng;

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `&str` regex-subset strategies: sequences of `.`-or-class atoms with
/// optional `{m,n}`/`{m}` repetition, e.g. `".{0,120}"` or
/// `"[ a-z0-9+()]{0,80}"`. This covers the patterns used by the
/// workspace's tests; anything else panics loudly.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let units = parse_pattern(self);
        let mut out = String::new();
        for unit in &units {
            let span = (unit.max - unit.min + 1) as u64;
            let count = unit.min + rng.below(span) as usize;
            for _ in 0..count {
                out.push(unit.atom.pick(rng));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — an arbitrary character (printable ASCII, plus occasional
    /// multi-byte code points to stress UTF-8 handling).
    Any,
    /// `[...]` — one of an explicit character set.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

impl Atom {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Any => {
                const EXOTIC: [char; 6] = ['\n', '\t', 'α', 'ß', '中', '🦀'];
                if rng.below(16) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    // Printable ASCII: ' ' (0x20) ..= '~' (0x7E).
                    char::from(0x20 + rng.below(0x5F) as u8)
                }
            }
            Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
            Atom::Literal(c) => *c,
        }
    }
}

struct Unit {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Unit> {
    let mut chars = pat.chars().peekable();
    let mut units = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("range end");
                            assert!(lo <= hi, "bad class range {lo}-{hi} in {pat:?}");
                            // `lo` was already pushed as a literal; extend
                            // with the rest of the range.
                            for u in (lo as u32 + 1)..=(hi as u32) {
                                set.push(char::from_u32(u).expect("valid range char"));
                            }
                        }
                        Some(c) => {
                            set.push(c);
                            prev = Some(c);
                        }
                        None => panic!("unterminated character class in {pat:?}"),
                    }
                }
                assert!(!set.is_empty(), "empty character class in {pat:?}");
                Atom::Class(set)
            }
            '\\' => Atom::Literal(chars.next().expect("escape target")),
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut digits = String::new();
            let mut min: Option<usize> = None;
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(',') => {
                        min = Some(digits.parse().expect("repeat lower bound"));
                        digits.clear();
                    }
                    Some(d) if d.is_ascii_digit() => digits.push(d),
                    other => panic!("bad repetition in {pat:?}: {other:?}"),
                }
            }
            let hi: usize = digits.parse().expect("repeat upper bound");
            (min.map_or(hi, |m| m), hi)
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition bounds in {pat:?}");
        units.push(Unit { atom, min, max });
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-unit")
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (2usize..9, 1u64..=3).generate(&mut r);
            assert!((2..9).contains(&a));
            assert!((1..=3).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..5)
            .prop_flat_map(|n| (Just(n), 0..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut r);
            assert!(k < n);
        }
    }

    #[test]
    fn regex_dot_and_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = ".{0,12}".generate(&mut r);
            assert!(s.chars().count() <= 12);
            let t = "[a-c9]{2,4}".generate(&mut r);
            assert!((2..=4).contains(&t.chars().count()));
            assert!(t.chars().all(|c| "abc9".contains(c)));
        }
    }

    #[test]
    fn literal_and_fixed_repeat() {
        let mut r = rng();
        assert_eq!("ab".generate(&mut r), "ab");
        assert_eq!("a{3}".generate(&mut r), "aaa");
    }
}
