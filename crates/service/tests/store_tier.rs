//! Service-level tests of the persistent artifact store tier: two
//! services sharing one directory serve bit-identical responses,
//! concurrent publishes of the same fingerprint are idempotent, and a
//! torn publish (a process killed mid-write) is never served — the
//! reopened service either loads the old artifact or takes a clean
//! miss and recompiles.

use std::path::PathBuf;
use std::sync::Arc;

use lalr_core::Parallelism;
use lalr_service::protocol::response_to_line;
use lalr_service::{Fault, FaultPlan, GrammarFormat, Request, Service, ServiceConfig, Trigger};

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lalr-tier-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn with_store(dir: &PathBuf) -> ServiceConfig {
    ServiceConfig {
        workers: Parallelism::sequential(),
        store_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    }
}

fn workload() -> Vec<Request> {
    let mut requests = Vec::new();
    for entry in lalr_corpus::all_entries().iter().take(6) {
        let grammar = entry.source.to_string();
        requests.push(Request::Compile {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Classify {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Table {
            grammar,
            format: GrammarFormat::Native,
            compressed: true,
        });
    }
    requests
}

/// Drops the provenance-dependent `cached` flag (a store load reports
/// `cached:true` where the original compile said `false`).
fn normalize(line: &str) -> String {
    line.replace("\"cached\":true", "\"cached\":false")
}

fn artifact_files(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.ends_with(".lalr"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

#[test]
fn two_services_over_one_store_serve_bit_identical_responses() {
    let dir = temp_store_dir("shared");
    let requests = workload();

    // Both services are alive at once over the same directory.
    let a = Service::new(with_store(&dir));
    let b = Service::new(with_store(&dir));

    for (i, r) in requests.iter().enumerate() {
        let line_a = normalize(&response_to_line(&a.call(r.clone(), None)));
        let line_b = normalize(&response_to_line(&b.call(r.clone(), None)));
        assert_eq!(line_a, line_b, "request {i} diverged across services");
    }

    // A compiled everything; B served every artifact from A's publishes
    // without a single pipeline run of its own.
    let sa = a.stats().cache.expect("cache enabled");
    let sb = b.stats().cache.expect("cache enabled");
    assert!(sa.compiles >= 6, "{sa:?}");
    assert!(sa.store_writes >= 6, "{sa:?}");
    assert_eq!(sb.compiles, 0, "{sb:?}");
    assert!(sb.store_hits >= 6, "{sb:?}");
    assert_eq!(sb.store_corrupt, 0, "{sb:?}");

    a.shutdown();
    b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_publish_of_the_same_fingerprint_is_idempotent() {
    let dir = temp_store_dir("idem");
    const WRITERS: usize = 4;
    let grammar = "e : e \"+\" t | t ; t : \"x\" ;";

    // Four independent services race to compile-and-publish the same
    // grammar. Each uses its own cache, so every one really publishes.
    let services: Vec<Arc<Service>> = (0..WRITERS)
        .map(|_| Arc::new(Service::new(with_store(&dir))))
        .collect();
    let handles: Vec<_> = services
        .iter()
        .map(|s| {
            let s = Arc::clone(s);
            std::thread::spawn(move || {
                s.call(
                    Request::Compile {
                        grammar: grammar.to_string(),
                        format: GrammarFormat::Native,
                    },
                    None,
                )
            })
        })
        .collect();
    for h in handles {
        assert!(h.join().unwrap().is_ok());
    }

    // Exactly one artifact file survives, and it is valid: a fresh
    // service takes a store hit, not a corrupt rejection.
    assert_eq!(artifact_files(&dir).len(), 1, "{:?}", artifact_files(&dir));
    let fresh = Service::new(with_store(&dir));
    assert!(fresh
        .call(
            Request::Compile {
                grammar: grammar.to_string(),
                format: GrammarFormat::Native,
            },
            None,
        )
        .is_ok());
    let stats = fresh.stats().cache.expect("cache enabled");
    assert_eq!(stats.store_hits, 1, "{stats:?}");
    assert_eq!(stats.store_corrupt, 0, "{stats:?}");
    assert_eq!(stats.compiles, 0, "{stats:?}");

    for s in services {
        s.shutdown();
    }
    fresh.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_publish_is_never_served_reopen_takes_a_clean_miss() {
    let dir = temp_store_dir("torn");
    // Every publish is truncated mid-file — the moral equivalent of the
    // process dying between write and rename on every artifact.
    let faults = FaultPlan::new(0xDEAD)
        .rule("store.write", Fault::Truncate, Trigger::Rate(1.0))
        .build();
    let torn = Service::new(ServiceConfig {
        faults,
        ..with_store(&dir)
    });
    let requests = workload();
    let reference: Vec<String> = requests
        .iter()
        .map(|r| normalize(&response_to_line(&torn.call(r.clone(), None))))
        .collect();
    torn.shutdown();

    // The reopened service must never decode a torn file as an
    // artifact: every load is a corrupt rejection or clean miss, every
    // response recompiles to the exact reference bytes.
    let reopened = Service::new(with_store(&dir));
    for (i, r) in requests.iter().enumerate() {
        let line = normalize(&response_to_line(&reopened.call(r.clone(), None)));
        assert_eq!(
            line, reference[i],
            "request {i} diverged after torn publish"
        );
    }
    let stats = reopened.stats().cache.expect("cache enabled");
    assert_eq!(
        stats.store_hits, 0,
        "torn artifacts must not load: {stats:?}"
    );
    assert!(
        stats.store_corrupt + stats.store_misses >= 6,
        "every lookup was rejected or missed: {stats:?}"
    );
    assert!(stats.compiles >= 6, "{stats:?}");
    reopened.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn leftover_publish_temp_files_do_not_hide_the_committed_artifact() {
    let dir = temp_store_dir("tmpjunk");
    let grammar = "e : e \"+\" t | t ; t : \"x\" ;";
    let writer = Service::new(with_store(&dir));
    assert!(writer
        .call(
            Request::Compile {
                grammar: grammar.to_string(),
                format: GrammarFormat::Native,
            },
            None,
        )
        .is_ok());
    writer.shutdown();
    let committed = artifact_files(&dir);
    assert_eq!(committed.len(), 1);

    // Simulate a writer killed mid-publish: orphaned temp files left in
    // the directory next to the committed artifact.
    let stem = committed[0].trim_end_matches(".lalr");
    std::fs::write(dir.join(format!(".{stem}.99999.7.tmp")), b"half a hea").unwrap();
    std::fs::write(dir.join(".deadbeef00000000.99999.8.tmp"), b"").unwrap();

    let reopened = Service::new(with_store(&dir));
    assert!(reopened
        .call(
            Request::Compile {
                grammar: grammar.to_string(),
                format: GrammarFormat::Native,
            },
            None,
        )
        .is_ok());
    let stats = reopened.stats().cache.expect("cache enabled");
    assert_eq!(stats.store_hits, 1, "{stats:?}");
    assert_eq!(stats.store_corrupt, 0, "{stats:?}");
    reopened.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
