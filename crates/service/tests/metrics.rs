//! The `metrics` op: its text exposition must parse and agree with the
//! [`StatsSnapshot`] the service reports at the same moment.

use std::collections::HashMap;
use std::time::Duration;

use lalr_core::Parallelism;
use lalr_service::{GrammarFormat, Request, Response, Service, ServiceConfig, OPS};

fn compile(grammar: &str) -> Request {
    Request::Compile {
        grammar: grammar.to_string(),
        format: GrammarFormat::Native,
    }
}

/// Parses exposition text into `name{labels} → value`, skipping comments.
fn parse_exposition(text: &str) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line {line:?}"));
        // Counter families are integers; the few float-valued families
        // (uptime seconds, wait seconds) just need to parse as numbers.
        let value: u64 = match value.parse() {
            Ok(v) => v,
            Err(_) => {
                value
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
                continue;
            }
        };
        assert!(
            out.insert(key.to_string(), value).is_none(),
            "duplicate sample {key}"
        );
    }
    out
}

#[test]
fn metrics_exposition_is_consistent_with_stats() {
    let service = Service::new(ServiceConfig {
        workers: Parallelism::new(2),
        ..ServiceConfig::default()
    });

    // A mixed workload: a cold compile, a warm repeat, a classify, one
    // bad grammar (error), and one oversized request (error).
    let good = "e : e \"+\" t | t ; t : \"x\" ;";
    assert!(service.call(compile(good), None).is_ok());
    assert!(service.call(compile(good), None).is_ok());
    assert!(service
        .call(
            Request::Classify {
                grammar: good.to_string(),
                format: GrammarFormat::Native,
            },
            None,
        )
        .is_ok());
    assert!(!service.call(compile("e : : ;"), None).is_ok());
    let oversized = Service::new(ServiceConfig {
        max_request_bytes: 4,
        ..ServiceConfig::default()
    });
    assert!(!oversized.call(compile(good), None).is_ok());

    // `stats()` reads the counters directly (unrecorded); the `metrics`
    // request is recorded only *after* its text is rendered, so both
    // views describe exactly the preceding five requests.
    let snap = service.stats();
    let text = match service.call(Request::Metrics, None) {
        Response::Metrics(text) => text,
        other => panic!("{other:?}"),
    };
    let samples = parse_exposition(&text);

    assert_eq!(samples["lalr_requests_total"], snap.requests);
    assert_eq!(samples["lalr_errors_total"], snap.errors);
    assert_eq!(snap.errors, 1, "the bad grammar is the only error");
    assert_eq!(
        samples["lalr_deadline_exceeded_total"],
        snap.deadline_exceeded
    );
    for (i, op) in OPS.iter().enumerate() {
        assert_eq!(
            samples[&format!("lalr_requests_by_op_total{{op=\"{op}\"}}")],
            snap.by_op[i]
        );
        assert_eq!(
            samples[&format!("lalr_errors_by_op_total{{op=\"{op}\"}}")],
            snap.errors_by_op[i]
        );
        // Each op's histogram count equals its request count: every
        // request is recorded exactly once.
        assert_eq!(
            samples[&format!("lalr_request_duration_us_count{{op=\"{op}\"}}")],
            snap.by_op[i]
        );
        assert_eq!(
            samples[&format!("lalr_request_duration_us_bucket{{le=\"+Inf\",op=\"{op}\"}}")],
            snap.by_op[i]
        );
    }
    let cache = snap.cache.expect("cache enabled");
    assert_eq!(
        samples["lalr_cache_events_total{kind=\"hits\"}"],
        cache.hits
    );
    assert_eq!(
        samples["lalr_cache_events_total{kind=\"compiles\"}"],
        cache.compiles
    );

    // The compile that ran left phase observations behind; a cache hit
    // adds none, so calls track pipeline runs, not requests. The bad
    // grammar stopped after `parse`, so `parse` leads the counts.
    assert_eq!(samples["lalr_phase_calls_total{phase=\"parse\"}"], 2);
    assert_eq!(samples["lalr_phase_calls_total{phase=\"lr0.build\"}"], 1);
    assert_eq!(samples["lalr_phase_calls_total{phase=\"tables.build\"}"], 1);
    assert!(samples["lalr_phase_ns_total{phase=\"lr0.build\"}"] > 0);
}

#[test]
fn failed_requests_are_recorded() {
    // An oversized request is rejected before execution but must still
    // land in the per-op error counter and the latency histogram.
    let service = Service::new(ServiceConfig {
        max_request_bytes: 4,
        ..ServiceConfig::default()
    });
    let r = service.call(compile("e : e \"+\" t | t ;"), None);
    assert!(!r.is_ok());
    let snap = service.stats();
    assert_eq!(snap.requests, 1);
    assert_eq!(snap.errors, 1);
    assert_eq!(snap.errors_by_op[0], 1, "compile is op 0");
    assert_eq!(snap.latency_buckets.iter().sum::<u64>(), 1);

    // A deadline in the past is exceeded at dequeue time.
    let r = service.call(compile("s : \"a\" ;"), Some(Duration::ZERO));
    let snap = service.stats();
    if let Response::Error(e) = &r {
        if e.kind() == "deadline" {
            assert_eq!(snap.deadline_exceeded, 1);
        }
    }
    assert_eq!(snap.requests, 2);

    // Calls after shutdown are recorded as unavailable errors.
    service.shutdown();
    let r = service.call(Request::Stats, None);
    assert!(!r.is_ok());
    let snap = service.stats();
    assert_eq!(snap.requests, 3);
    assert_eq!(snap.errors_by_op[4], 1, "stats is op 4");
    assert_eq!(snap.latency_buckets.iter().sum::<u64>(), 3);
}

#[test]
fn compile_response_carries_relation_and_traversal_stats() {
    let service = Service::new(ServiceConfig::default());
    let r = service.call(compile("e : e \"+\" t | t ; t : \"x\" ;"), None);
    let Response::Compile(c) = r else {
        panic!("{r:?}")
    };
    assert!(c.relations.nt_transitions > 0);
    assert!(c.relations.lookback_edges > 0);
    assert!(c.reads.scc_count > 0);
    assert!(c.includes.scc_count > 0);
    assert_eq!(c.reads.nontrivial_sccs, 0, "grammar is LALR(1)");
}
