//! Edge-triggered epoll wrapper: [`Poller`], [`Event`], [`Waker`].

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

use crate::sys;

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readable readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLET | sys::EPOLLRDHUP;
        if self.readable {
            m |= sys::EPOLLIN;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or error/hang-up, which must be drained like reads).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition.
    pub closed: bool,
}

/// Cumulative [`Poller::wait`] accounting (see [`Poller::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollStats {
    /// `epoll_wait` calls issued.
    pub waits: u64,
    /// Nanoseconds spent blocked inside `epoll_wait`.
    pub wait_ns: u64,
    /// Events delivered across all waits.
    pub events: u64,
}

/// An edge-triggered epoll instance.
///
/// All registrations are edge-triggered (`EPOLLET`): after a readiness
/// report the caller must read/write until `WouldBlock` before the next
/// report for that direction arrives. Tokens are caller-chosen `u64`s
/// returned verbatim in [`Event::token`].
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
    stats: PollStats,
}

impl Poller {
    /// Creates a new epoll instance (fails with `Unsupported` off
    /// x86-64 Linux).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create1()?,
            buf: vec![sys::EpollEvent::default(); 256],
            stats: PollStats::default(),
        })
    }

    /// Cumulative wait accounting since creation: calls, blocked time,
    /// and events delivered. Plain counters (no atomics) — `wait` takes
    /// `&mut self`, so there is exactly one writer.
    pub fn stats(&self) -> PollStats {
        self.stats
    }

    /// Registers `fd` for edge-triggered readiness under `token`.
    pub fn register(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd.as_raw_fd(), Some(&mut ev))
    }

    /// Changes an existing registration's interest set.
    pub fn reregister(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd.as_raw_fd(), Some(&mut ev))
    }

    /// Removes an fd from the interest set. Harmless if the fd is
    /// already closed (the kernel auto-deregisters on close).
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), None)
    }

    /// Blocks until readiness or `timeout` (None = forever), appending
    /// decoded events to `out`. Returns the number of events delivered.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            // Round up so a 0 < t < 1ms timeout still sleeps rather
            // than busy-spinning.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
        };
        let started = std::time::Instant::now();
        let n = sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms)?;
        self.stats.waits += 1;
        self.stats.wait_ns += started.elapsed().as_nanos() as u64;
        self.stats.events += n as u64;
        for ev in &self.buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = sys::close(self.epfd);
    }
}

/// Cross-thread wake-up for a [`Poller`], built on `eventfd`.
///
/// Register the waker's fd under a reserved token; [`Waker::wake`] makes
/// the poller's `wait` return with that token readable. Wakes coalesce
/// (many wakes, one event) and [`Waker::drain`] re-arms the edge.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd()?,
        })
    }

    /// Registers the waker with `poller` under `token`.
    pub fn register(&self, poller: &Poller, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLET,
            data: token,
        };
        sys::epoll_ctl(poller.epfd, sys::EPOLL_CTL_ADD, self.fd, Some(&mut ev))
    }

    /// Wakes the poller. Safe from any thread; never blocks (the
    /// eventfd counter saturates long before `u64::MAX`).
    pub fn wake(&self) -> io::Result<()> {
        match sys::write_u64(self.fd, 1) {
            // Counter full: a wake is already pending, which is all we need.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            other => other,
        }
    }

    /// Consumes pending wakes, re-arming the edge trigger.
    pub fn drain(&self) {
        while sys::read_u64(self.fd).is_ok() {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = sys::close(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readiness_round_trip_over_a_socketpair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&server, 7, Interest::READABLE).unwrap();

        // Nothing pending yet: a zero-ish timeout reports no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");

        // Data arrives → readable edge for our token.
        (&client).write_all(b"ping\n").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable && !events[0].closed);

        // Edge-triggered: without draining, writing more data still
        // produces a fresh edge; after draining to WouldBlock the next
        // wait times out quietly.
        let mut buf = [0u8; 64];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping\n");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained edge must not re-report");

        // Peer close → closed readiness.
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].closed, "{events:?}");
    }

    #[test]
    fn wait_accounting_tracks_calls_time_and_events() {
        let mut poller = Poller::new().unwrap();
        assert_eq!(poller.stats(), PollStats::default());

        // A timed-out wait: one call, some blocked time, zero events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(15)))
            .unwrap();
        let after_timeout = poller.stats();
        assert_eq!(after_timeout.waits, 1);
        assert_eq!(after_timeout.events, 0);
        assert!(
            after_timeout.wait_ns >= 10_000_000,
            "{after_timeout:?} — a 15ms timeout should block ≥10ms"
        );

        // A delivered event bumps the event counter.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(&server, 7, Interest::READABLE).unwrap();
        (&client).write_all(b"ping\n").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let after_event = poller.stats();
        assert_eq!(after_event.waits, 2);
        assert_eq!(after_event.events, 1);
    }

    #[test]
    fn waker_crosses_threads_and_coalesces() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        waker.register(&poller, 99).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                w.wake().unwrap();
            }
        });
        t.join().unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "wakes coalesce into one event");
        assert_eq!(events[0].token, 99);
        waker.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drain re-arms the edge");
    }
}
