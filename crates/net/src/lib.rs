//! Dependency-free readiness-driven I/O primitives.
//!
//! The workspace's external dependencies are vendored shims; this crate
//! extends the same discipline to the operating system: instead of
//! `libc`/`mio`/`memmap2` it issues the handful of Linux syscalls the
//! daemon and the artifact store need directly (see [`sys`]), and wraps
//! them in safe types:
//!
//! * [`Poller`] / [`Waker`] — an edge-triggered epoll event loop with
//!   cross-thread wake-up (eventfd);
//! * [`TimerWheel`] — hashed-wheel connection timeouts with O(1) lazy
//!   cancellation;
//! * [`TokenBucket`] — a caller-clocked token bucket for request
//!   admission (pure state machine, deterministic under test);
//! * [`LineReader`] / [`WriteBuf`] — per-connection buffers that
//!   reproduce the blocking daemon's newline framing and line-length
//!   caps under nonblocking reads and partial writes;
//! * [`Mmap`] — read-only file mappings for zero-copy artifact loads,
//!   with a `read` fallback so callers have one code path.
//!
//! All `unsafe` in the workspace's service stack lives behind this
//! crate's [`sys`] module; everything above it (including the epoll
//! front end in `lalr-service`) stays `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

pub mod bucket;
pub mod buf;
pub mod mmap;
pub mod poll;
pub mod sys;
pub mod timer;

pub use bucket::TokenBucket;
pub use buf::{LineEvent, LineReader, WriteBuf};
pub use mmap::Mmap;
pub use poll::{Event, Interest, PollStats, Poller, Waker};
pub use timer::{Expired, TimerWheel};

/// `true` when the raw epoll/eventfd/mmap backend is available on this
/// target (x86-64 Linux).
pub fn supported() -> bool {
    sys::supported()
}
