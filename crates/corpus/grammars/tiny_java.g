// A small Java-like language: classes, fields, methods, statements,
// expressions with the usual precedence ladder. LALR(1) except the
// dangling else (as in real Java grammars).
%start goal

goal : class_decls ;
class_decls : class_decl | class_decls class_decl ;

class_decl : modifiers CLASS IDENT super_opt "{" member_decls "}" ;
super_opt : %empty | EXTENDS IDENT ;
modifiers : %empty | modifiers modifier ;
modifier : PUBLIC | PRIVATE | STATIC | FINAL ;

member_decls : %empty | member_decls member_decl ;
member_decl : field_decl | method_decl | ctor_decl ;

field_decl : modifiers type_ declarators ";" ;
declarators : declarator | declarators "," declarator ;
declarator : IDENT | IDENT "=" expression ;

method_decl : modifiers type_ IDENT "(" params ")" method_body
            | modifiers VOID IDENT "(" params ")" method_body ;
ctor_decl   : modifiers IDENT "(" params ")" block ;
method_body : block | ";" ;

params : %empty | param_list ;
param_list : param | param_list "," param ;
param : type_ IDENT ;

type_ : primitive_type | IDENT | type_ "[" "]" ;
primitive_type : INT | BOOLEAN | CHAR | DOUBLE ;

block : "{" block_stmts "}" ;
block_stmts : %empty | block_stmts block_stmt ;
block_stmt : local_var_decl ";" | statement ;

local_var_decl : type_ declarators ;

statement
    : block
    | ";"
    | expr_stmt ";"
    | IF "(" expression ")" statement
    | IF "(" expression ")" statement ELSE statement
    | WHILE "(" expression ")" statement
    | FOR "(" for_init ";" expr_opt ";" expr_opt ")" statement
    | RETURN expr_opt ";"
    | BREAK ";"
    | CONTINUE ";"
    ;

for_init : %empty | expr_stmt | local_var_decl ;
expr_opt : %empty | expression ;

expr_stmt : assignment_ | method_invocation | new_expr | postfix_inc ;
postfix_inc : lhs INC | lhs DEC ;

assignment_ : lhs "=" expression | lhs ADD_ASSIGN expression | lhs SUB_ASSIGN expression ;
lhs : IDENT | field_access | array_access ;

expression : cond_or ;
cond_or  : cond_and | cond_or OROR cond_and ;
cond_and : eq | cond_and ANDAND eq ;
eq  : rel | eq EQEQ rel | eq NOTEQ rel ;
rel : add | rel "<" add | rel ">" add | rel LE add | rel GE add | rel INSTANCEOF type_ ;
add : mul | add "+" mul | add "-" mul ;
mul : unary | mul "*" unary | mul "/" unary | mul "%" unary ;

unary : postfix | "-" unary | "!" unary ;

postfix
    : literal
    | THIS
    | "(" expression ")"
    | IDENT
    | field_access
    | method_invocation
    | array_access
    | new_expr
    ;

new_expr : NEW IDENT "(" args ")" | NEW type_ "[" expression "]" ;

field_access : postfix "." IDENT ;
method_invocation : IDENT "(" args ")" | postfix "." IDENT "(" args ")" ;
array_access : IDENT "[" expression "]" | postfix "[" expression "]" ;

args : %empty | arg_list ;
arg_list : expression | arg_list "," expression ;

literal : INT_LIT | CHAR_LIT | STRING_LIT | TRUE | FALSE | NULL_LIT ;
