// An ALGOL-60-flavoured grammar: blocks, declarations, conditional and
// iterative statements, designational expressions. Follows the Revised
// Report's shape (simplified to stay unambiguous where the Report relies
// on prose).
%start program

program : block_ | compound_statement ;

block_ : block_head ";" compound_tail ;
block_head : BEGIN declaration_ | block_head ";" declaration_ ;

compound_statement : BEGIN compound_tail ;
compound_tail : statement END | statement ";" compound_tail ;

declaration_
    : type_declaration
    | array_declaration
    | switch_declaration
    | procedure_declaration
    ;

type_declaration : type_ type_list ;
type_ : REAL | INTEGER | BOOLEAN ;
type_list : IDENT | type_list "," IDENT ;

array_declaration
    : type_ ARRAY array_segments
    | ARRAY array_segments
    ;
array_segments : array_segment | array_segments "," array_segment ;
array_segment  : IDENT "[" bound_pairs "]" ;
bound_pairs    : bound_pair | bound_pairs "," bound_pair ;
bound_pair     : arith_expr ":" arith_expr ;

switch_declaration : SWITCH IDENT ASSIGN switch_list ;
switch_list : designational_expr | switch_list "," designational_expr ;

procedure_declaration
    : PROCEDURE IDENT formal_part ";" statement
    | type_ PROCEDURE IDENT formal_part ";" statement
    ;
formal_part : %empty | "(" formal_list ")" ;
formal_list : IDENT | formal_list "," IDENT ;

statement
    : unconditional_statement
    | conditional_statement
    | for_statement
    ;

unconditional_statement
    : basic_statement
    | compound_statement
    | block_
    ;

basic_statement
    : %empty
    | assignment_statement
    | goto_statement
    | procedure_statement
    ;

assignment_statement : left_part_list arith_expr | left_part_list bool_expr_toplevel ;
left_part_list : left_part | left_part_list left_part ;
left_part : variable_ ASSIGN ;

goto_statement : GOTO designational_expr ;

procedure_statement : IDENT actual_part ;
actual_part : %empty | "(" actual_list ")" ;
actual_list : actual_param | actual_list "," actual_param ;
actual_param : arith_expr | STRING ;

conditional_statement
    : if_clause statement
    | if_clause statement ELSE statement
    ;
if_clause : IF bool_expr THEN ;

for_statement : FOR variable_ ASSIGN for_list DO statement ;
for_list : for_list_element | for_list "," for_list_element ;
for_list_element
    : arith_expr
    | arith_expr STEP arith_expr UNTIL arith_expr
    | arith_expr WHILE bool_expr
    ;

designational_expr : IDENT | IDENT "[" arith_expr "]" ;

// Boolean expressions (Report's implication/equivalence ladder).
bool_expr_toplevel : bool_expr ;
bool_expr    : implication | bool_expr EQUIV implication ;
implication  : bool_term | implication IMPL bool_term ;
bool_term    : bool_factor | bool_term OR bool_factor ;
bool_factor  : bool_secondary | bool_factor AND bool_secondary ;
bool_secondary : bool_primary | NOT bool_primary ;
bool_primary
    : TRUE
    | FALSE
    | relation
    | "(" bool_expr ")"
    ;
relation : arith_expr relop arith_expr ;
relop : "<" | LE | "=" | GE | ">" | NE ;

// Arithmetic expressions.
arith_expr : term_a | arith_expr addop term_a | addop term_a ;
addop : "+" | "-" ;
term_a : factor_a | term_a mulop factor_a ;
mulop : "*" | "/" | DIV ;
factor_a : primary_a | factor_a POW primary_a ;
primary_a
    : NUMBER
    | variable_
    | "(" arith_expr ")"
    ;
variable_ : IDENT | IDENT "[" subscript_list "]" | IDENT "(" actual_list ")" ;
subscript_list : arith_expr | subscript_list "," arith_expr ;
