//! Productions and production ids.

use crate::symbol::{NonTerminal, Symbol, Terminal};

/// Identifier of a production; an index into [`crate::Grammar::productions`].
///
/// Production `0` is always the augmented start production `<start> → S`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProdId(pub(crate) u32);

impl ProdId {
    /// The augmented start production.
    pub const START: ProdId = ProdId(0);

    /// Creates a production id from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        ProdId(index as u32)
    }

    /// The index into the grammar's production table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single production `A → X₁ … Xₙ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Production {
    pub(crate) lhs: NonTerminal,
    pub(crate) rhs: Box<[Symbol]>,
    pub(crate) prec: Option<Terminal>,
}

impl Production {
    /// The left-hand-side nonterminal.
    #[inline]
    pub fn lhs(&self) -> NonTerminal {
        self.lhs
    }

    /// The right-hand-side symbol string (empty for ε-productions).
    #[inline]
    pub fn rhs(&self) -> &[Symbol] {
        &self.rhs
    }

    /// Length of the right-hand side.
    #[inline]
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// `true` for an ε-production.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// An explicit `%prec` terminal overriding the default precedence (the
    /// rightmost terminal of the right-hand side).
    #[inline]
    pub fn prec_override(&self) -> Option<Terminal> {
        self.prec
    }

    /// The terminal that decides this production's precedence: the `%prec`
    /// override if present, otherwise the rightmost terminal of the
    /// right-hand side.
    pub fn precedence_terminal(&self) -> Option<Terminal> {
        self.prec
            .or_else(|| self.rhs.iter().rev().find_map(|s| s.terminal()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prod(rhs: Vec<Symbol>, prec: Option<Terminal>) -> Production {
        Production {
            lhs: NonTerminal::new(1),
            rhs: rhs.into_boxed_slice(),
            prec,
        }
    }

    #[test]
    fn epsilon_production() {
        let p = prod(vec![], None);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.precedence_terminal(), None);
    }

    #[test]
    fn default_precedence_is_rightmost_terminal() {
        let p = prod(
            vec![
                Terminal::new(1).into(),
                NonTerminal::new(2).into(),
                Terminal::new(3).into(),
                NonTerminal::new(4).into(),
            ],
            None,
        );
        assert_eq!(p.precedence_terminal(), Some(Terminal::new(3)));
    }

    #[test]
    fn prec_override_wins() {
        let p = prod(vec![Terminal::new(3).into()], Some(Terminal::new(9)));
        assert_eq!(p.precedence_terminal(), Some(Terminal::new(9)));
        assert_eq!(p.prec_override(), Some(Terminal::new(9)));
    }

    #[test]
    fn prod_id_round_trip() {
        assert_eq!(ProdId::new(7).index(), 7);
        assert_eq!(ProdId::START.index(), 0);
    }
}
