//! The shift-reduce driver.

use lalr_tables::{Action, CompressedTable, ParseTable, ProductionInfo};

use crate::error::ParseError;
use crate::token::Token;
use crate::tree::ParseTree;

/// What the driver needs from a table — implemented by the dense
/// [`ParseTable`] and by [`CompressedSource`] (compressed actions, dense
/// gotos), so both run through the same loop and can be differential-tested.
pub trait ActionSource {
    /// `ACTION[state][terminal]`.
    fn action(&self, state: u32, terminal: u32) -> Action;
    /// `GOTO[state][nonterminal]`.
    fn goto(&self, state: u32, nonterminal: u32) -> Option<u32>;
    /// Production metadata.
    fn production(&self, prod: u32) -> &ProductionInfo;
    /// Terminals expected in `state` (for error messages).
    fn expected(&self, state: u32) -> Vec<String>;
}

impl ActionSource for ParseTable {
    fn action(&self, state: u32, terminal: u32) -> Action {
        ParseTable::action(self, state, terminal)
    }

    fn goto(&self, state: u32, nonterminal: u32) -> Option<u32> {
        ParseTable::goto(self, state, nonterminal)
    }

    fn production(&self, prod: u32) -> &ProductionInfo {
        ParseTable::production(self, prod)
    }

    fn expected(&self, state: u32) -> Vec<String> {
        self.expected_terminals(state)
            .into_iter()
            .map(|t| self.terminal_name(t).to_string())
            .collect()
    }
}

/// A compressed action table paired with the dense table it came from
/// (for GOTO, metadata and names).
#[derive(Debug, Clone)]
pub struct CompressedSource<'a> {
    compressed: &'a CompressedTable,
    dense: &'a ParseTable,
}

impl<'a> CompressedSource<'a> {
    /// Pairs a compressed table with its dense origin.
    pub fn new(compressed: &'a CompressedTable, dense: &'a ParseTable) -> Self {
        CompressedSource { compressed, dense }
    }
}

impl ActionSource for CompressedSource<'_> {
    fn action(&self, state: u32, terminal: u32) -> Action {
        self.compressed.action(state, terminal)
    }

    fn goto(&self, state: u32, nonterminal: u32) -> Option<u32> {
        self.dense.goto(state, nonterminal)
    }

    fn production(&self, prod: u32) -> &ProductionInfo {
        self.dense.production(prod)
    }

    fn expected(&self, state: u32) -> Vec<String> {
        self.dense.expected(state)
    }
}

/// The LR driver.
///
/// # Examples
///
/// See the [crate documentation](crate).
#[derive(Debug, Clone)]
pub struct Parser<'t, S: ActionSource = ParseTable> {
    table: &'t S,
}

impl<'t, S: ActionSource> Parser<'t, S> {
    /// Creates a driver over `table`.
    pub fn new(table: &'t S) -> Self {
        Parser { table }
    }

    /// Parses a token stream to a tree.
    ///
    /// # Errors
    ///
    /// Returns the first [`ParseError`]; the input is not consumed past it.
    pub fn parse<I>(&self, tokens: I) -> Result<ParseTree, ParseError>
    where
        I: IntoIterator<Item = Token>,
    {
        let mut states: Vec<u32> = vec![0];
        let mut forest: Vec<ParseTree> = Vec::new();
        let mut input = tokens.into_iter().peekable();
        let mut end = 0usize; // one past the last consumed token

        loop {
            let state = *states.last().expect("stack never empties");
            let terminal = input.peek().map_or(0, Token::terminal); // $ is terminal 0
            match self.table.action(state, terminal) {
                Action::Shift(next) => {
                    let tok = input.next().expect("shift only on real tokens");
                    end = tok.offset() + tok.text().len();
                    forest.push(ParseTree::Leaf(tok));
                    states.push(next);
                }
                Action::Reduce(prod) => {
                    let info = self.table.production(prod);
                    let n = info.rhs_len as usize;
                    let children = forest.split_off(forest.len() - n);
                    for _ in 0..n {
                        states.pop();
                    }
                    let top = *states.last().expect("stack never empties");
                    let Some(next) = self.table.goto(top, info.lhs) else {
                        // Reachable only via a compressed table's default
                        // reduce on an erroneous look-ahead.
                        return Err(self.error(top, input.peek().cloned(), end));
                    };
                    forest.push(ParseTree::Node {
                        nonterminal: info.lhs,
                        production: prod,
                        children,
                    });
                    states.push(next);
                }
                Action::Accept => {
                    let tree = forest.pop().expect("accept implies a full tree");
                    return Ok(tree);
                }
                Action::Error => {
                    return Err(self.error(state, input.peek().cloned(), end));
                }
            }
        }
    }

    fn error(&self, state: u32, found: Option<Token>, end: usize) -> ParseError {
        let offset = found.as_ref().map_or(end, Token::offset);
        ParseError {
            state,
            found,
            expected: self.table.expected(state),
            offset,
        }
    }

    /// Parses with **yacc-style `error`-token recovery**: the grammar may
    /// use an ordinary terminal (conventionally named `error`) inside
    /// productions like `stmt : error ";"`. On a syntax error the driver
    ///
    /// 1. pops states until one can shift `error_terminal`,
    /// 2. shifts a synthetic `error` token,
    /// 3. discards input until a token has an action in the new state,
    /// 4. resumes, suppressing cascaded reports until three tokens have
    ///    been shifted cleanly (yacc's hysteresis).
    ///
    /// Returns the tree (with `error` leaves where recovery happened) plus
    /// the diagnostics; `None` when recovery failed outright.
    pub fn parse_with_error_token<I>(
        &self,
        tokens: I,
        error_terminal: u32,
        max_errors: usize,
    ) -> (Option<ParseTree>, Vec<ParseError>)
    where
        I: IntoIterator<Item = Token>,
    {
        let mut errors = Vec::new();
        let mut states: Vec<u32> = vec![0];
        let mut forest: Vec<ParseTree> = Vec::new();
        let mut input = tokens.into_iter().peekable();
        let mut clean_shifts = 3usize; // suppression counter
        let mut end = 0usize;

        loop {
            let state = *states.last().expect("stack never empties");
            let terminal = input.peek().map_or(0, Token::terminal);
            match self.table.action(state, terminal) {
                Action::Shift(next) => {
                    let tok = input.next().expect("shift only on real tokens");
                    end = tok.offset() + tok.text().len();
                    forest.push(ParseTree::Leaf(tok));
                    states.push(next);
                    clean_shifts += 1;
                }
                Action::Reduce(prod) => {
                    let info = self.table.production(prod);
                    let n = info.rhs_len as usize;
                    let children = forest.split_off(forest.len() - n);
                    states.truncate(states.len() - n);
                    let top = *states.last().expect("stack never empties");
                    match self.table.goto(top, info.lhs) {
                        Some(next) => {
                            forest.push(ParseTree::Node {
                                nonterminal: info.lhs,
                                production: prod,
                                children,
                            });
                            states.push(next);
                        }
                        None => {
                            errors.push(self.error(top, input.peek().cloned(), end));
                            return (None, errors);
                        }
                    }
                }
                Action::Accept => {
                    let tree = forest.pop().expect("accept implies a full tree");
                    return (Some(tree), errors);
                }
                Action::Error => {
                    if clean_shifts >= 3 {
                        errors.push(self.error(state, input.peek().cloned(), end));
                    }
                    if errors.len() >= max_errors {
                        return (None, errors);
                    }
                    clean_shifts = 0;
                    // 1. Pop until `error` shifts.
                    loop {
                        let Some(&s) = states.last() else {
                            return (None, errors);
                        };
                        if let Action::Shift(next) = self.table.action(s, error_terminal) {
                            // 2. Shift the synthetic error token.
                            let offset = input.peek().map(Token::offset).unwrap_or(usize::MAX);
                            forest.push(ParseTree::Leaf(Token::new(
                                error_terminal,
                                "<error>",
                                offset,
                            )));
                            states.push(next);
                            break;
                        }
                        states.pop();
                        forest.pop();
                    }
                    // 3. Discard input until a token is actionable here.
                    let s = *states.last().expect("just pushed");
                    loop {
                        match input.peek() {
                            None => break, // let $ drive reductions/accept
                            Some(t) if !self.table.action(s, t.terminal()).is_error() => {
                                break;
                            }
                            Some(_) => {
                                let skipped = input.next().expect("peeked");
                                end = skipped.offset() + skipped.text().len();
                            }
                        }
                    }
                }
            }
        }
    }

    /// Parses with panic-mode recovery: on error, states are popped until
    /// one can shift a `sync` terminal, input is skipped up to and
    /// including the next sync token, and parsing resumes. Collects up to
    /// `max_errors` diagnostics.
    ///
    /// Returns the diagnostics; the tree is only returned when the input
    /// parsed without errors.
    pub fn parse_with_recovery<I>(
        &self,
        tokens: I,
        sync: &[u32],
        max_errors: usize,
    ) -> (Option<ParseTree>, Vec<ParseError>)
    where
        I: IntoIterator<Item = Token>,
    {
        let mut errors = Vec::new();
        let mut states: Vec<u32> = vec![0];
        let mut forest: Vec<ParseTree> = Vec::new();
        let mut input = tokens.into_iter().peekable();
        let mut end = 0usize;

        loop {
            let state = *states.last().expect("stack never empties");
            let terminal = input.peek().map_or(0, Token::terminal);
            match self.table.action(state, terminal) {
                Action::Shift(next) => {
                    let tok = input.next().expect("shift only on real tokens");
                    end = tok.offset() + tok.text().len();
                    forest.push(ParseTree::Leaf(tok));
                    states.push(next);
                }
                Action::Reduce(prod) => {
                    let info = self.table.production(prod);
                    let n = info.rhs_len as usize;
                    let children = forest.split_off(forest.len() - n);
                    states.truncate(states.len() - n);
                    let top = *states.last().expect("stack never empties");
                    match self.table.goto(top, info.lhs) {
                        Some(next) => {
                            forest.push(ParseTree::Node {
                                nonterminal: info.lhs,
                                production: prod,
                                children,
                            });
                            states.push(next);
                        }
                        None => {
                            errors.push(self.error(top, input.peek().cloned(), end));
                            return (None, errors);
                        }
                    }
                }
                Action::Accept => {
                    let tree = forest.pop().expect("accept implies a full tree");
                    let ok = errors.is_empty();
                    return (ok.then_some(tree), errors);
                }
                Action::Error => {
                    errors.push(self.error(state, input.peek().cloned(), end));
                    if errors.len() >= max_errors {
                        return (None, errors);
                    }
                    // Panic mode: pop states until one shifts a sync token…
                    let mut recovered = false;
                    'recover: while !states.is_empty() {
                        let s = *states.last().expect("checked non-empty");
                        for &sync_t in sync {
                            if self.table.action(s, sync_t).is_shift() {
                                // …then skip input up to a sync token.
                                while let Some(t) = input.peek() {
                                    if sync.contains(&t.terminal()) {
                                        recovered = true;
                                        break 'recover;
                                    }
                                    let skipped = input.next().expect("peeked");
                                    end = skipped.offset() + skipped.text().len();
                                }
                                break 'recover;
                            }
                        }
                        states.pop();
                        forest.pop();
                    }
                    if !recovered || states.is_empty() {
                        return (None, errors);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Lexer;
    use lalr_automata::Lr0Automaton;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;
    use lalr_tables::{build_table, TableOptions};

    fn table(src: &str) -> ParseTable {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        build_table(&g, &lr0, &la, TableOptions::default())
    }

    const EXPR: &str = "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | NUM ;";

    #[test]
    fn parses_expression() {
        let t = table(EXPR);
        let lx = Lexer::for_table(&t).number("NUM").build();
        let toks = lx.tokenize("1 + 2 * (3 + 4)").unwrap();
        let tree = Parser::new(&t).parse(toks).unwrap();
        assert_eq!(tree.leaf_count(), 9);
        // Leaves round-trip in order.
        let texts: Vec<&str> = tree.leaves().iter().map(|x| x.text()).collect();
        assert_eq!(texts, vec!["1", "+", "2", "*", "(", "3", "+", "4", ")"]);
    }

    #[test]
    fn precedence_shape_left_assoc() {
        // 1+2*3 must parse as 1+(2*3) in the stratified grammar.
        let t = table(EXPR);
        let lx = Lexer::for_table(&t).number("NUM").build();
        let tree = Parser::new(&t)
            .parse(lx.tokenize("1 + 2 * 3").unwrap())
            .unwrap();
        let sexpr = tree.to_sexpr(&t);
        assert_eq!(sexpr, "(e (e (t (f 1))) + (t (t (f 2)) * (f 3)))");
    }

    #[test]
    fn syntax_error_reports_expected() {
        let t = table(EXPR);
        let lx = Lexer::for_table(&t).number("NUM").build();
        let err = Parser::new(&t)
            .parse(lx.tokenize("1 + + 2").unwrap())
            .unwrap_err();
        assert_eq!(err.found.as_ref().unwrap().text(), "+");
        assert!(err.expected.contains(&"NUM".to_string()));
        assert!(err.expected.contains(&"(".to_string()));
    }

    #[test]
    fn error_at_eof() {
        let t = table(EXPR);
        let lx = Lexer::for_table(&t).number("NUM").build();
        let err = Parser::new(&t)
            .parse(lx.tokenize("1 +").unwrap())
            .unwrap_err();
        assert!(err.found.is_none());
        // The error still has a position: one past the "+" token.
        assert_eq!(err.offset, 3);
    }

    #[test]
    fn empty_input_parses_nullable_start() {
        let t = table("s : \"a\" s | ;");
        let tree = Parser::new(&t).parse(Vec::new()).unwrap();
        assert_eq!(tree.leaf_count(), 0);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn compressed_source_parses_identically() {
        let t = table(EXPR);
        let c = lalr_tables::CompressedTable::from_dense(&t);
        let src = CompressedSource::new(&c, &t);
        let lx = Lexer::for_table(&t).number("NUM").build();
        for input in ["1", "1 + 2", "(1 + 2) * 3 + 4"] {
            let toks = lx.tokenize(input).unwrap();
            let a = Parser::new(&t).parse(toks.clone()).unwrap();
            let b = Parser::new(&src).parse(toks).unwrap();
            assert_eq!(a, b, "{input}");
        }
    }

    #[test]
    fn compressed_source_rejects_identically() {
        let t = table(EXPR);
        let c = lalr_tables::CompressedTable::from_dense(&t);
        let src = CompressedSource::new(&c, &t);
        let lx = Lexer::for_table(&t).number("NUM").build();
        for input in ["", "+", "1 +", "( 1", "1 2"] {
            let toks = lx.tokenize(input).unwrap();
            assert_eq!(
                Parser::new(&t).parse(toks.clone()).is_err(),
                Parser::new(&src).parse(toks).is_err(),
                "{input}"
            );
        }
    }

    #[test]
    fn error_token_recovery_repairs_statements() {
        // stmt : ID "=" NUM | error — the yacc pattern.
        let t = table("stmts : stmt | stmts \";\" stmt ; stmt : ID \"=\" NUM | error ;");
        let lx = Lexer::for_table(&t).number("NUM").identifier("ID").build();
        let err_t = t.terminal_by_name("error").unwrap();
        // Note: the lexer treats `error` as a keyword; inputs avoid it.
        let toks = lx.tokenize("a = 1 ; b = = 2 ; c = 3").unwrap();
        let (tree, errors) = Parser::new(&t).parse_with_error_token(toks, err_t, 10);
        assert_eq!(errors.len(), 1, "{errors:?}");
        let tree = tree.expect("recovered to a full tree");
        // The middle statement became an error node; the other two parse.
        let sexpr = tree.to_sexpr(&t);
        assert!(sexpr.contains("<error>"), "{sexpr}");
        assert!(
            sexpr.contains("a = 1") && sexpr.contains("c = 3"),
            "{sexpr}"
        );
    }

    #[test]
    fn error_token_recovery_reports_each_bad_statement_once() {
        let t = table("stmts : stmt | stmts \";\" stmt ; stmt : ID \"=\" NUM | error ;");
        let lx = Lexer::for_table(&t).number("NUM").identifier("ID").build();
        let err_t = t.terminal_by_name("error").unwrap();
        let toks = lx.tokenize("= ; b = = 2 ; = = ; d = 4").unwrap();
        let (tree, errors) = Parser::new(&t).parse_with_error_token(toks, err_t, 10);
        assert!(tree.is_some());
        assert!(
            (2..=3).contains(&errors.len()),
            "three bad statements, hysteresis may merge adjacent: {errors:?}"
        );
    }

    #[test]
    fn error_token_clean_input_is_untouched() {
        let t = table("stmts : stmt | stmts \";\" stmt ; stmt : ID \"=\" NUM | error ;");
        let lx = Lexer::for_table(&t).number("NUM").identifier("ID").build();
        let err_t = t.terminal_by_name("error").unwrap();
        let toks = lx.tokenize("a = 1 ; b = 2").unwrap();
        let (tree, errors) = Parser::new(&t).parse_with_error_token(toks.clone(), err_t, 10);
        assert!(errors.is_empty());
        assert_eq!(tree.unwrap(), Parser::new(&t).parse(toks).unwrap());
    }

    #[test]
    fn recovery_collects_multiple_errors() {
        // Statement list with ";" as the sync token.
        let t = table("list : stmt | list \";\" stmt ; stmt : ID \"=\" NUM | ;");
        let lx = Lexer::for_table(&t).number("NUM").identifier("ID").build();
        let semi = t.terminal_by_name(";").unwrap();
        let toks = lx.tokenize("a = 1 ; b = = 2 ; c = 3 ; d d d").unwrap();
        let (tree, errors) = Parser::new(&t).parse_with_recovery(toks, &[semi], 10);
        assert!(tree.is_none());
        assert!(errors.len() >= 2, "two corrupt statements: {errors:?}");
    }

    #[test]
    fn recovery_clean_input_returns_tree() {
        let t = table("list : stmt | list \";\" stmt ; stmt : ID \"=\" NUM ;");
        let lx = Lexer::for_table(&t).number("NUM").identifier("ID").build();
        let semi = t.terminal_by_name(";").unwrap();
        let toks = lx.tokenize("a = 1 ; b = 2").unwrap();
        let (tree, errors) = Parser::new(&t).parse_with_recovery(toks, &[semi], 10);
        assert!(errors.is_empty());
        assert_eq!(tree.unwrap().leaf_count(), 7);
    }
}
