//! Uniform runners for the five look-ahead methods.

use std::time::{Duration, Instant};

use lalr_automata::{merge_lr1, Lr0Automaton, Lr1Automaton};
use lalr_core::{
    propagation_lookaheads, slr_lookaheads, LalrAnalysis, LookaheadSets, NqlalrAnalysis,
};
use lalr_grammar::Grammar;

/// The look-ahead methods under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's algorithm.
    DeRemerPennello,
    /// Yacc-style spontaneous generation + propagation.
    Propagation,
    /// Canonical LR(1) then merge by core.
    Lr1Merge,
    /// Grammar-global FOLLOW sets.
    Slr,
    /// The unsound state-merged shortcut.
    Nqlalr,
}

impl Method {
    /// All methods, strongest-claim first.
    pub const ALL: [Method; 5] = [
        Method::DeRemerPennello,
        Method::Propagation,
        Method::Lr1Merge,
        Method::Slr,
        Method::Nqlalr,
    ];

    /// Short label for table columns.
    pub fn label(self) -> &'static str {
        match self {
            Method::DeRemerPennello => "DP",
            Method::Propagation => "yacc-prop",
            Method::Lr1Merge => "LR1-merge",
            Method::Slr => "SLR",
            Method::Nqlalr => "NQLALR",
        }
    }

    /// Runs the method over a prebuilt LR(0) automaton.
    ///
    /// Note `Lr1Merge` builds its LR(1) machine inside the call — that cost
    /// is the point of the comparison.
    pub fn run(self, grammar: &Grammar, lr0: &Lr0Automaton) -> LookaheadSets {
        match self {
            Method::DeRemerPennello => LalrAnalysis::compute(grammar, lr0).into_lookaheads(),
            Method::Propagation => propagation_lookaheads(grammar, lr0),
            Method::Lr1Merge => {
                let lr1 = Lr1Automaton::build(grammar);
                LookaheadSets::from(&merge_lr1(grammar, &lr1, lr0))
            }
            Method::Slr => slr_lookaheads(grammar, lr0),
            Method::Nqlalr => NqlalrAnalysis::compute(grammar, lr0).into_lookaheads(),
        }
    }
}

/// Wall-clock of one run (look-ahead computation only; the LR(0) machine is
/// shared, as in the paper's measurements).
pub fn time_method(method: Method, grammar: &Grammar, lr0: &Lr0Automaton) -> Duration {
    let t0 = Instant::now();
    let las = method.run(grammar, lr0);
    let elapsed = t0.elapsed();
    std::hint::black_box(las);
    elapsed
}

/// Median of `runs` timings.
pub fn median_time(method: Method, grammar: &Grammar, lr0: &Lr0Automaton, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs.max(1))
        .map(|_| time_method(method, grammar, lr0))
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    #[test]
    fn all_methods_run_on_a_simple_grammar() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        for m in Method::ALL {
            let las = m.run(&g, &lr0);
            assert!(las.reduction_count() > 0, "{}", m.label());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Method::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Method::ALL.len());
    }

    #[test]
    fn median_time_is_positive() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let d = median_time(Method::DeRemerPennello, &g, &lr0, 3);
        assert!(d.as_nanos() > 0);
    }
}
