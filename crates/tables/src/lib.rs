//! ACTION/GOTO parse tables.
//!
//! Turns look-ahead sets (from any method in `lalr-core`) into the driver
//! tables an LR parser executes, the way yacc/bison do:
//!
//! * [`build_table`] — table construction with precedence/associativity
//!   conflict resolution and yacc-style defaults (shift over reduce,
//!   earlier production over later), every decision logged.
//! * [`ParseTable`] — the dense table: `ACTION[state][terminal]`,
//!   `GOTO[state][nonterminal]`, plus the production metadata the runtime
//!   needs (so parsing needs no `Grammar` object).
//! * [`CompressedTable`] — default-reduction row compression, the classic
//!   space optimization, with equivalence tests against the dense table.
//!
//! # Examples
//!
//! ```
//! use lalr_automata::Lr0Automaton;
//! use lalr_core::LalrAnalysis;
//! use lalr_grammar::parse_grammar;
//! use lalr_tables::{build_table, TableOptions};
//!
//! let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
//! let lr0 = Lr0Automaton::build(&g);
//! let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
//! let table = build_table(&g, &lr0, &la, TableOptions::default());
//! assert!(table.resolutions().is_empty(), "grammar is conflict-free");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod build;
mod compress;
mod display;
mod table;

pub use action::Action;
pub use build::{build_table, Resolution, ResolutionReason, TableOptions};
pub use compress::CompressedTable;
pub use table::{ParseTable, ProductionInfo, TableStats};
