//! Hand-written lexer for the grammar text format.

use crate::error::{GrammarError, ParseErrorKind};

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// The kinds of token the format uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// An identifier or a quoted literal; the payload is the symbol name.
    Name(String),
    /// A `%directive` keyword, payload without the `%`.
    Directive(String),
    /// `:`
    Colon,
    /// `|`
    Pipe,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Name(n) => format!("symbol {n:?}"),
            TokenKind::Directive(d) => format!("%{d}"),
            TokenKind::Colon => "':'".to_string(),
            TokenKind::Pipe => "'|'".to_string(),
            TokenKind::Semi => "';'".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

pub(crate) struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, kind: ParseErrorKind) -> GrammarError {
        GrammarError::Parse {
            line: self.line,
            col: self.col,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), GrammarError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            None => {
                                return Err(GrammarError::Parse {
                                    line,
                                    col,
                                    kind: ParseErrorKind::UnterminatedComment,
                                })
                            }
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn is_ident_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b == b'\'' || b == b'.'
    }

    /// Produces the next token.
    pub fn next_token(&mut self) -> Result<Token, GrammarError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let tok = |kind| Token { kind, line, col };

        let Some(b) = self.peek() else {
            return Ok(tok(TokenKind::Eof));
        };
        match b {
            b':' => {
                self.bump();
                Ok(tok(TokenKind::Colon))
            }
            b'|' => {
                self.bump();
                Ok(tok(TokenKind::Pipe))
            }
            b';' => {
                self.bump();
                Ok(tok(TokenKind::Semi))
            }
            b'%' => {
                self.bump();
                let mut name = String::new();
                while let Some(b) = self.peek() {
                    if Self::is_ident_byte(b) {
                        name.push(b as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(tok(TokenKind::Directive(name)))
            }
            b'"' | b'\'' => {
                let quote = b;
                self.bump();
                let mut name = String::new();
                loop {
                    match self.bump() {
                        None | Some(b'\n') => {
                            return Err(GrammarError::Parse {
                                line,
                                col,
                                kind: ParseErrorKind::UnterminatedLiteral,
                            })
                        }
                        Some(b) if b == quote => break,
                        Some(b) => name.push(b as char),
                    }
                }
                Ok(tok(TokenKind::Name(name)))
            }
            b if Self::is_ident_byte(b) || !b.is_ascii() => {
                let mut name = String::new();
                // Accept UTF-8 identifier bytes verbatim.
                while let Some(b) = self.peek() {
                    if Self::is_ident_byte(b) || !b.is_ascii() {
                        name.push(b as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(tok(TokenKind::Name(name)))
            }
            other => Err(self.error(ParseErrorKind::UnexpectedChar(other as char))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<TokenKind> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token().expect("lex ok");
            let eof = t.kind == TokenKind::Eof;
            out.push(t.kind);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn punctuation_and_names() {
        let toks = lex_all("e : e \"+\" t | t ;");
        assert_eq!(
            toks,
            vec![
                TokenKind::Name("e".into()),
                TokenKind::Colon,
                TokenKind::Name("e".into()),
                TokenKind::Name("+".into()),
                TokenKind::Name("t".into()),
                TokenKind::Pipe,
                TokenKind::Name("t".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn directives() {
        let toks = lex_all("%start e %left '+'");
        assert_eq!(
            toks,
            vec![
                TokenKind::Directive("start".into()),
                TokenKind::Name("e".into()),
                TokenKind::Directive("left".into()),
                TokenKind::Name("+".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_trivia() {
        let toks = lex_all("a // x\n /* y\n z */ b");
        assert_eq!(
            toks,
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Name("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_literal_reports_position() {
        let mut lx = Lexer::new("\n  \"abc");
        let err = loop {
            match lx.next_token() {
                Err(e) => break e,
                Ok(t) if t.kind == TokenKind::Eof => panic!("expected error"),
                Ok(_) => {}
            }
        };
        assert_eq!(
            err,
            GrammarError::Parse {
                line: 2,
                col: 3,
                kind: ParseErrorKind::UnterminatedLiteral
            }
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        let mut lx = Lexer::new("/* never closed");
        assert!(matches!(
            lx.next_token(),
            Err(GrammarError::Parse {
                kind: ParseErrorKind::UnterminatedComment,
                ..
            })
        ));
    }

    #[test]
    fn unexpected_char_is_error() {
        let mut lx = Lexer::new("(");
        assert!(matches!(
            lx.next_token(),
            Err(GrammarError::Parse {
                kind: ParseErrorKind::UnexpectedChar('('),
                ..
            })
        ));
    }

    #[test]
    fn primes_and_dots_in_identifiers() {
        let toks = lex_all("e' stmt.list");
        assert_eq!(
            toks,
            vec![
                TokenKind::Name("e'".into()),
                TokenKind::Name("stmt.list".into()),
                TokenKind::Eof,
            ]
        );
    }
}
