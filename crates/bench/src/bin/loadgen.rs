//! Load generator for the `lalr-service` compilation service
//! (EXPERIMENTS.md Table 8).
//!
//! Drives N client threads against an in-process [`Service`] with a
//! mixed compile/classify/table/parse workload over the grammar corpus,
//! and reports throughput plus latency percentiles for two arms:
//!
//! * **cold** — caching disabled, so every request pays the full
//!   grammar → LR(0) → Read/Follow → tables pipeline;
//! * **warm** — the default cache, pre-warmed with one pass over the
//!   corpus, so steady-state requests are fingerprint lookups.
//!
//! With `--chaos` (EXPERIMENTS.md Table 10) the harness instead drives
//! a real TCP daemon through the retrying client at increasing fault
//! rates — injected read/write failures, partial responses, and compile
//! panics — and reports how throughput and tail latency degrade while
//! the retry layer keeps the error column at zero.
//!
//! With `--parse` (EXPERIMENTS.md Table 11) the harness runs a
//! parse-heavy sweep: corpus sentences chunked into batches of 1, 8,
//! and 64 documents, each batch size measured cold (no cache, every
//! batch recompiles its grammar) and warm (cached artifacts, one
//! resolution amortized over the whole batch). The headline number is
//! documents/second; docs-per-resolution shows the amortization.
//!
//! With `--restart` (EXPERIMENTS.md Table 13) the harness measures the
//! warm-restart story: a daemon compiles the corpus cold over TCP,
//! answers repeats from the in-memory cache, is stopped, and a fresh
//! daemon over the same configuration answers the same fingerprints
//! again. Without a persistent store the restarted daemon recompiles
//! everything; with `--store` semantics it serves every repeat from
//! disk. Reported per phase: latency percentiles plus the
//! restart-to-first-warm-reply wall time.
//!
//! With `--hostile` (EXPERIMENTS.md Table 15) the harness points abusive
//! clients at the event-loop daemon — connection floods past the
//! per-peer quota, byte-at-a-time request writers, and stalled readers
//! that pipeline requests and never drain the responses — while
//! well-behaved clients keep issuing the normal mix through the
//! circuit-breaking retry layer. The run fails unless every
//! well-behaved request succeeds, the flood is visibly rejected, the
//! stalled connections are closed by the daemon, and the daemon ends
//! back in the `ok` health state with a clean drain. (The request rate
//! limit is configured generously here so the abusive pipelines reach
//! the write path; exact rate-limit accounting lives in the
//! `event_hostile` integration tests.) `--no-degrade` is the A/B
//! control arm: the same mix against a daemon whose health state
//! machine never enters `degraded`, so Table 15 can compare goodput
//! and tail latency with graceful degradation on versus off.
//!
//! ```text
//! cargo run --release -p lalr-bench --bin loadgen              # 8 threads × 40 requests
//! cargo run --release -p lalr-bench --bin loadgen -- 4 100     # 4 threads × 100 requests
//! cargo run --release -p lalr-bench --bin loadgen -- --chaos   # fault-rate sweep over TCP
//! cargo run --release -p lalr-bench --bin loadgen -- --parse   # batched-parse sweep
//! cargo run --release -p lalr-bench --bin loadgen -- --restart # warm-restart latency
//! cargo run --release -p lalr-bench --bin loadgen -- --hostile # abusive-client survival
//! cargo run --release -p lalr-bench --bin loadgen -- --hostile --no-degrade  # Table 15 control arm
//! cargo run --release -p lalr-bench --bin loadgen -- --trace   # mixed mode, recorder armed
//! ```
//!
//! `--trace` arms the flight recorder (sampling every request) on the
//! mixed-mode services, so running the same mix with and without it
//! prices the tracing overhead (EXPERIMENTS.md Table 14).
//!
//! Every mode also accepts `--json OUT`: alongside the human-readable
//! table, the run's results (throughput, per-percentile latency, error
//! and fault accounting) are written to `OUT` as one JSON object, so CI
//! and scripts can assert on numbers without scraping markdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lalr_chaos::{Fault, FaultPlan, Trigger};
use lalr_core::Parallelism;
use lalr_service::client::{call_with_retry, RetryPolicy};
use lalr_service::{
    call_with_breaker, CircuitBreaker, Daemon, DaemonConfig, EventDaemon, GrammarFormat,
    ParseTarget, Request, Service, ServiceConfig,
};

/// The request mix: for every corpus grammar one compile, one classify,
/// one table, and (where sentences exist) one small parse batch.
fn workload() -> Vec<Request> {
    let mut requests = Vec::new();
    for entry in lalr_corpus::all_entries() {
        let grammar = entry.source.to_string();
        requests.push(Request::Compile {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Classify {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
        });
        requests.push(Request::Table {
            grammar: grammar.clone(),
            format: GrammarFormat::Native,
            compressed: true,
        });
        let parsed = entry.grammar();
        let documents: Vec<String> = lalr_corpus::sentences::generate_many(&parsed, 7, 3, 20)
            .iter()
            .map(|s| to_document(&parsed, s))
            .collect();
        if !documents.is_empty() {
            requests.push(Request::Parse {
                target: ParseTarget::Text {
                    grammar,
                    format: GrammarFormat::Native,
                },
                documents,
                recover: false,
                sync: Vec::new(),
            });
        }
    }
    requests
}

/// Renders a generated sentence as a whitespace-separated document.
fn to_document(grammar: &lalr_grammar::Grammar, sentence: &[lalr_grammar::Terminal]) -> String {
    sentence
        .iter()
        .map(|&t| grammar.terminal_name(t))
        .collect::<Vec<_>>()
        .join(" ")
}

struct ArmResult {
    name: &'static str,
    requests: usize,
    errors: u64,
    elapsed: Duration,
    p50: Duration,
    p90: Duration,
    p99: Duration,
}

impl ArmResult {
    fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Runs one arm: `threads` clients, each issuing `per_thread` requests
/// drawn round-robin (with a per-thread offset) from the workload.
fn run_arm(
    name: &'static str,
    service: &Arc<Service>,
    requests: &Arc<Vec<Request>>,
    threads: usize,
    per_thread: usize,
) -> ArmResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(service);
            let requests = Arc::clone(requests);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_thread);
                let mut errors = 0u64;
                for k in 0..per_thread {
                    // Offset by thread so the arms exercise concurrent
                    // requests for *different* grammars, not a convoy.
                    let request = &requests[(t * 7 + k) % requests.len()];
                    let call_start = Instant::now();
                    let response = service.call(request.clone(), None);
                    latencies.push(call_start.elapsed());
                    if !response.is_ok() {
                        errors += 1;
                    }
                }
                (latencies, errors)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(threads * per_thread);
    let mut errors = 0;
    for h in handles {
        let (l, e) = h.join().expect("client thread");
        latencies.extend(l);
        errors += e;
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    ArmResult {
        name,
        requests: latencies.len(),
        errors,
        elapsed,
        p50: percentile(&latencies, 0.50),
        p90: percentile(&latencies, 0.90),
        p99: percentile(&latencies, 0.99),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Writes the machine-readable results file requested with `--json`.
fn write_json(path: &str, body: String) {
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("loadgen: cannot write {path:?}: {e}");
        std::process::exit(1);
    }
    eprintln!("loadgen: json results -> {path}");
}

/// The Table 10 fault mix at a given base rate: transport faults on
/// both directions of the daemon socket plus worker panics and slow
/// compiles. Every fault here is one the retrying client recovers from.
fn chaos_plan(rate: f64, seed: u64) -> lalr_service::FaultInjector {
    FaultPlan::new(seed)
        .rule("daemon.read", Fault::Error, Trigger::Rate(rate))
        .rule("daemon.write", Fault::PartialWrite, Trigger::Rate(rate))
        .rule("service.compile", Fault::Panic, Trigger::Rate(rate))
        .rule("service.compile", Fault::Delay(2), Trigger::Rate(rate))
        .build()
}

struct ChaosArm {
    rate: f64,
    requests: usize,
    errors: u64,
    retries: u64,
    injected: u64,
    accounted: bool,
    elapsed: Duration,
    p50: Duration,
    p99: Duration,
}

/// One sweep point: a fresh daemon armed with `chaos_plan(rate)`, hit by
/// `threads` retrying TCP clients. Returns per-arm totals; panics if the
/// daemon loses a connection tracking invariant (aborted drains).
fn run_chaos_arm(
    rate: f64,
    requests: &Arc<Vec<Request>>,
    threads: usize,
    per_thread: usize,
) -> ChaosArm {
    let faults = chaos_plan(rate, 0xC4A05);
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        drain_deadline: Duration::from_secs(5),
        faults: faults.clone(),
        service: ServiceConfig {
            workers: Parallelism::new(threads),
            faults: faults.clone(),
            ..ServiceConfig::default()
        },
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    let addr = daemon.addr().to_string();

    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let requests = Arc::clone(requests);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    retries: 40,
                    backoff: Duration::from_millis(1),
                    cap: Duration::from_millis(16),
                    seed: 0xC4A05 ^ t as u64,
                };
                let mut latencies = Vec::with_capacity(per_thread);
                let mut errors = 0u64;
                let mut attempts = 0u64;
                let none = lalr_service::FaultInjector::disabled();
                for k in 0..per_thread {
                    let request = &requests[(t * 7 + k) % requests.len()];
                    let call_start = Instant::now();
                    let reply = call_with_retry(
                        &addr,
                        request,
                        None,
                        Duration::from_secs(10),
                        &policy,
                        &none,
                    );
                    latencies.push(call_start.elapsed());
                    match reply {
                        Ok(r) => {
                            attempts += u64::from(r.attempts);
                            if !r.is_ok() {
                                errors += 1;
                            }
                        }
                        Err(_) => {
                            attempts += u64::from(policy.retries) + 1;
                            errors += 1;
                        }
                    }
                }
                (latencies, errors, attempts)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(threads * per_thread);
    let mut errors = 0;
    let mut attempts = 0;
    for h in handles {
        let (l, e, a) = h.join().expect("client thread");
        latencies.extend(l);
        errors += e;
        attempts += a;
    }
    let elapsed = started.elapsed();
    daemon.stop();
    let summary = daemon.join();
    assert_eq!(
        summary.aborted, 0,
        "chaos arm aborted connections: {summary:?}"
    );

    latencies.sort_unstable();
    let stats = faults.stats();
    ChaosArm {
        rate,
        requests: latencies.len(),
        errors,
        retries: attempts - latencies.len() as u64,
        injected: stats.iter().map(|s| s.injected).sum(),
        accounted: stats.iter().all(|s| s.injected == s.expected),
        elapsed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn chaos_main(threads: usize, per_thread: usize, json_out: Option<&str>) {
    let requests = Arc::new(workload());
    eprintln!(
        "loadgen --chaos: {threads} threads x {per_thread} requests over TCP, \
         {} distinct requests in the mix",
        requests.len()
    );

    let arms: Vec<ChaosArm> = [0.0, 0.01, 0.05, 0.20]
        .iter()
        .map(|&rate| run_chaos_arm(rate, &requests, threads, per_thread))
        .collect();

    println!("| fault rate | requests | errors | retries | injected | accounted | req/s | p50 (ms) | p99 (ms) |");
    println!("|-----------:|---------:|-------:|--------:|---------:|:---------:|------:|---------:|---------:|");
    let mut failed = false;
    for arm in &arms {
        println!(
            "| {:.0}% | {} | {} | {} | {} | {} | {:.0} | {:.3} | {:.3} |",
            arm.rate * 100.0,
            arm.requests,
            arm.errors,
            arm.retries,
            arm.injected,
            if arm.accounted { "yes" } else { "NO" },
            arm.requests as f64 / arm.elapsed.as_secs_f64(),
            ms(arm.p50),
            ms(arm.p99),
        );
        failed |= arm.errors > 0 || !arm.accounted;
    }
    if let Some(path) = json_out {
        let rows: Vec<String> = arms
            .iter()
            .map(|arm| {
                format!(
                    "{{\"accounted\":{},\"errors\":{},\"injected\":{},\"p50_ms\":{:.3},\
                     \"p99_ms\":{:.3},\"rate\":{},\"req_per_s\":{:.1},\"requests\":{},\
                     \"retries\":{}}}",
                    arm.accounted,
                    arm.errors,
                    arm.injected,
                    ms(arm.p50),
                    ms(arm.p99),
                    arm.rate,
                    arm.requests as f64 / arm.elapsed.as_secs_f64(),
                    arm.requests,
                    arm.retries,
                )
            })
            .collect();
        write_json(
            path,
            format!(
                "{{\"arms\":[{}],\"mode\":\"chaos\",\"per_thread\":{per_thread},\
                 \"threads\":{threads}}}\n",
                rows.join(",")
            ),
        );
    }
    if failed {
        eprintln!("loadgen --chaos: requests failed or fault accounting drifted");
        std::process::exit(1);
    }
}

/// The Table 11 workload: every corpus grammar's sentence pool (64
/// generated sentences per grammar) chunked into parse batches of
/// `batch` documents. Returns the requests plus the total document
/// count per full pass.
fn parse_workload(batch: usize) -> Vec<Request> {
    let mut requests = Vec::new();
    for entry in lalr_corpus::all_entries() {
        let parsed = entry.grammar();
        let documents: Vec<String> = lalr_corpus::sentences::generate_many(&parsed, 11, 64, 20)
            .iter()
            .map(|s| to_document(&parsed, s))
            .collect();
        for chunk in documents.chunks(batch) {
            requests.push(Request::Parse {
                target: ParseTarget::Text {
                    grammar: entry.source.to_string(),
                    format: GrammarFormat::Native,
                },
                documents: chunk.to_vec(),
                recover: false,
                sync: Vec::new(),
            });
        }
    }
    requests
}

/// Runs one Table 11 arm and returns (documents parsed, errors, wall
/// time). Each thread walks a strided slice of the request list for
/// `passes` full passes, so every arm — whatever the batch size —
/// parses exactly the same documents the same number of times.
fn run_parse_arm(
    service: &Arc<Service>,
    requests: &Arc<Vec<Request>>,
    threads: usize,
    passes: usize,
) -> (u64, u64, Duration) {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(service);
            let requests = Arc::clone(requests);
            std::thread::spawn(move || {
                let mut docs = 0u64;
                let mut errors = 0u64;
                for _ in 0..passes {
                    for i in (t..requests.len()).step_by(threads) {
                        let request = &requests[i];
                        if let Request::Parse { documents, .. } = request {
                            docs += documents.len() as u64;
                        }
                        let response = service.call(request.clone(), None);
                        if !response.is_ok() {
                            errors += 1;
                        }
                    }
                }
                (docs, errors)
            })
        })
        .collect();
    let mut docs = 0;
    let mut errors = 0;
    for h in handles {
        let (d, e) = h.join().expect("client thread");
        docs += d;
        errors += e;
    }
    (docs, errors, started.elapsed())
}

fn parse_main(threads: usize, passes: usize, json_out: Option<&str>) {
    eprintln!("loadgen --parse: {threads} threads x {passes} full corpus passes per arm");
    println!("| batch | arm  | batches | docs | errors | docs/s | resolutions | docs/resolution |");
    println!("|------:|------|--------:|-----:|-------:|-------:|------------:|----------------:|");
    let mut failed = false;
    let mut rows: Vec<String> = Vec::new();
    for batch in [1usize, 8, 64] {
        let requests = Arc::new(parse_workload(batch));
        for warm in [false, true] {
            let service = Arc::new(Service::new(ServiceConfig {
                workers: Parallelism::new(threads),
                cache: if warm {
                    ServiceConfig::default().cache
                } else {
                    None
                },
                ..ServiceConfig::default()
            }));
            if warm {
                // One sequential pass so steady-state batches resolve
                // their artifact from the cache.
                for request in requests.iter() {
                    let response = service.call(request.clone(), None);
                    assert!(response.is_ok(), "warm-up request failed: {response:?}");
                }
            }
            let before = service.stats().parse;
            let (docs, errors, elapsed) = run_parse_arm(&service, &requests, threads, passes);
            let after = service.stats().parse;
            service.shutdown();
            let resolutions = after.resolutions - before.resolutions;
            println!(
                "| {} | {} | {} | {} | {} | {:.0} | {} | {:.1} |",
                batch,
                if warm { "warm" } else { "cold" },
                requests.len() * passes,
                docs,
                errors,
                docs as f64 / elapsed.as_secs_f64(),
                resolutions,
                docs as f64 / resolutions.max(1) as f64,
            );
            rows.push(format!(
                "{{\"arm\":\"{}\",\"batch\":{batch},\"batches\":{},\"docs\":{docs},\
                 \"docs_per_s\":{:.1},\"errors\":{errors},\"resolutions\":{resolutions}}}",
                if warm { "warm" } else { "cold" },
                requests.len() * passes,
                docs as f64 / elapsed.as_secs_f64(),
            ));
            failed |= errors > 0;
        }
    }
    if let Some(path) = json_out {
        write_json(
            path,
            format!(
                "{{\"mode\":\"parse\",\"passes\":{passes},\"rows\":[{}],\"threads\":{threads}}}\n",
                rows.join(",")
            ),
        );
    }
    if failed {
        eprintln!("loadgen --parse: some batches failed");
        std::process::exit(1);
    }
}

/// One daemon lifetime for the `--restart` harness: the epoll front
/// end where the platform supports it, the thread-per-connection
/// reference otherwise — both speak the same wire protocol, so the
/// measurement code never cares which is running.
enum RunningFront {
    Threaded(Daemon),
    Event(lalr_service::EventDaemon),
}

impl RunningFront {
    fn start(workers: usize, store_dir: Option<std::path::PathBuf>) -> RunningFront {
        let config = DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            service: ServiceConfig {
                workers: Parallelism::new(workers),
                store_dir,
                ..ServiceConfig::default()
            },
            ..DaemonConfig::default()
        };
        if lalr_net::supported() {
            RunningFront::Event(lalr_service::EventDaemon::start(config, 1).expect("bind loopback"))
        } else {
            RunningFront::Threaded(Daemon::start(config).expect("bind loopback"))
        }
    }

    fn addr(&self) -> String {
        match self {
            RunningFront::Threaded(d) => d.addr().to_string(),
            RunningFront::Event(d) => d.addr().to_string(),
        }
    }

    fn finish(self) {
        match self {
            RunningFront::Threaded(d) => {
                d.stop();
                d.join();
            }
            RunningFront::Event(d) => {
                d.stop();
                d.join();
            }
        }
    }
}

/// Pulls an integer counter (`"key":N`) out of a raw response line.
fn counter(raw: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    raw.split(&pattern)
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Issues `requests` sequentially over TCP and returns sorted
/// latencies; counts error replies into `errors`.
fn timed_pass(addr: &str, requests: &[Request], errors: &mut u64) -> Vec<Duration> {
    let timeout = Duration::from_secs(30);
    let mut latencies = Vec::with_capacity(requests.len());
    for request in requests {
        let started = Instant::now();
        match lalr_service::client::call(addr, request, None, timeout) {
            Ok(reply) if reply.is_ok() => latencies.push(started.elapsed()),
            _ => *errors += 1,
        }
    }
    latencies.sort_unstable();
    latencies
}

/// The Table 13 harness. A single sequential client keeps the latency
/// numbers clean (no queueing); `workers` only sizes the daemon's pool.
fn restart_main(workers: usize, json_out: Option<&str>) {
    let requests: Vec<Request> = lalr_corpus::all_entries()
        .iter()
        .map(|entry| Request::Compile {
            grammar: entry.source.to_string(),
            format: GrammarFormat::Native,
        })
        .collect();
    eprintln!(
        "loadgen --restart: {} corpus compiles per phase, {} front end",
        requests.len(),
        if lalr_net::supported() {
            "event-loop"
        } else {
            "thread-per-connection"
        }
    );

    println!("| arm | phase | requests | p50 (ms) | p99 (ms) |");
    println!("|------|-------|---------:|---------:|---------:|");
    let mut failed = false;
    let mut arms_json: Vec<String> = Vec::new();
    for with_store in [false, true] {
        let arm = if with_store { "store" } else { "no-store" };
        let dir =
            std::env::temp_dir().join(format!("lalr-loadgen-restart-{}-{arm}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store_dir = with_store.then(|| dir.clone());
        let mut errors = 0u64;

        let first = RunningFront::start(workers, store_dir.clone());
        let addr = first.addr();
        let cold = timed_pass(&addr, &requests, &mut errors);
        let hits = timed_pass(&addr, &requests, &mut errors);
        first.finish();

        // The restart clock starts before the bind: time-to-first-warm
        // reply includes daemon startup, connect, and the disk load (or
        // recompile) of the first repeated fingerprint.
        let restart_started = Instant::now();
        let second = RunningFront::start(workers, store_dir);
        let addr = second.addr();
        let first_reply = timed_pass(&addr, &requests[..1], &mut errors);
        let time_to_first = restart_started.elapsed();
        let rest = timed_pass(&addr, &requests[1..], &mut errors);
        let mut post_restart: Vec<Duration> = first_reply.iter().chain(&rest).copied().collect();
        post_restart.sort_unstable();

        let stats_raw =
            lalr_service::client::call(&addr, &Request::Stats, None, Duration::from_secs(10))
                .map(|r| r.raw)
                .unwrap_or_default();
        second.finish();

        let mut phases_json: Vec<String> = Vec::new();
        for (phase, latencies) in [
            ("cold compile", &cold),
            ("in-memory hit", &hits),
            ("post-restart", &post_restart),
        ] {
            println!(
                "| {arm} | {phase} | {} | {:.3} | {:.3} |",
                latencies.len(),
                ms(percentile(latencies, 0.50)),
                ms(percentile(latencies, 0.99)),
            );
            phases_json.push(format!(
                "{{\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"phase\":\"{phase}\",\"requests\":{}}}",
                ms(percentile(latencies, 0.50)),
                ms(percentile(latencies, 0.99)),
                latencies.len(),
            ));
        }
        let compiles = counter(&stats_raw, "compiles");
        let store_hits = counter(&stats_raw, "store_hits");
        println!(
            "| {arm} | restart→first reply | 1 | {:.3} | — |",
            time_to_first.as_secs_f64() * 1e3
        );
        eprintln!(
            "{arm}: restarted daemon ran {compiles} compiles, {store_hits} store hits, \
             {errors} errors"
        );
        arms_json.push(format!(
            "{{\"arm\":\"{arm}\",\"compiles\":{compiles},\"errors\":{errors},\"phases\":[{}],\
             \"store_hits\":{store_hits},\"time_to_first_ms\":{:.3}}}",
            phases_json.join(","),
            time_to_first.as_secs_f64() * 1e3,
        ));

        failed |= errors > 0;
        // The whole point of the store arm: the restarted daemon must
        // answer every repeated fingerprint from disk, not recompile.
        if with_store && (compiles != 0 || store_hits < requests.len() as u64) {
            eprintln!("loadgen --restart: store arm recompiled after restart");
            failed = true;
        }
        if !with_store && compiles != requests.len() as u64 {
            eprintln!("loadgen --restart: no-store arm should recompile everything");
            failed = true;
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    if let Some(path) = json_out {
        write_json(
            path,
            format!(
                "{{\"arms\":[{}],\"mode\":\"restart\",\"workers\":{workers}}}\n",
                arms_json.join(",")
            ),
        );
    }
    if failed {
        eprintln!("loadgen --restart: failed");
        std::process::exit(1);
    }
}

/// Reads one response line from a raw hostile-client socket, bounded by
/// `timeout`. Returns `None` on timeout, EOF, or a transport error.
fn read_line_timeout(stream: &mut TcpStream, timeout: Duration) -> Option<String> {
    stream.set_read_timeout(Some(timeout)).ok()?;
    let mut line = String::new();
    let mut reader = BufReader::new(stream);
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => None,
        Ok(_) => Some(line),
    }
}

/// The well-behaved side of the `--hostile` run: the standard mixed
/// workload through the circuit-breaking retry client, sharing the
/// daemon with the abusive phases. Returns (sorted latencies, errors,
/// retries).
fn hostile_good_clients(
    addr: &str,
    requests: &Arc<Vec<Request>>,
    breaker: &Arc<CircuitBreaker>,
    threads: usize,
    per_thread: usize,
) -> (Vec<Duration>, u64, u64) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let requests = Arc::clone(requests);
            let breaker = Arc::clone(breaker);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    retries: 80,
                    backoff: Duration::from_millis(1),
                    cap: Duration::from_millis(16),
                    seed: 0x5711E ^ t as u64,
                };
                let none = lalr_service::FaultInjector::disabled();
                let mut latencies = Vec::with_capacity(per_thread);
                let mut errors = 0u64;
                let mut attempts = 0u64;
                for k in 0..per_thread {
                    let request = &requests[(t * 7 + k) % requests.len()];
                    let call_start = Instant::now();
                    let reply = call_with_breaker(
                        &addr,
                        request,
                        None,
                        Duration::from_secs(10),
                        &policy,
                        &breaker,
                        &none,
                    );
                    latencies.push(call_start.elapsed());
                    match reply {
                        Ok(r) => {
                            attempts += u64::from(r.attempts);
                            if !r.is_ok() {
                                errors += 1;
                            }
                        }
                        Err(_) => {
                            attempts += u64::from(policy.retries) + 1;
                            errors += 1;
                        }
                    }
                }
                (latencies, errors, attempts)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(threads * per_thread);
    let mut errors = 0;
    let mut attempts = 0;
    for h in handles {
        let (l, e, a) = h.join().expect("well-behaved client thread");
        latencies.extend(l);
        errors += e;
        attempts += a;
    }
    let retries = attempts - latencies.len() as u64;
    latencies.sort_unstable();
    (latencies, errors, retries)
}

/// Connection flood: waves of simultaneous connects from one peer, well
/// past the per-peer quota. Over-quota connections must be answered
/// with a fast explicit rejection line, never silently dropped. Returns
/// (attempted, rejected).
fn hostile_flood(addr: &str, wave: usize, waves: usize) -> (u64, u64) {
    let mut attempted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..waves {
        let conns: Vec<TcpStream> = (0..wave)
            .filter_map(|_| TcpStream::connect(addr).ok())
            .collect();
        attempted += conns.len() as u64;
        for mut c in conns {
            // Rejected connections carry their error line immediately;
            // admitted ones (we never send a request) just time out
            // here and are dropped, which the daemon sees as EOF.
            if let Some(line) = read_line_timeout(&mut c, Duration::from_millis(50)) {
                if line.contains("\"throttled\"") || line.contains("\"unavailable\"") {
                    rejected += 1;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    (attempted, rejected)
}

/// Byte-at-a-time writers: each request line dribbles in one byte per
/// millisecond. The daemon must still assemble and answer it. Each
/// attempt retries a few times so a transient quota/throttle rejection
/// during the concurrent flood does not count against the daemon.
fn hostile_trickle(addr: &str, attempts: usize) -> (u64, u64) {
    let line = lalr_service::protocol::request_to_line(
        &Request::Classify {
            grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
            format: GrammarFormat::Native,
        },
        None,
    ) + "\n";
    let mut succeeded = 0u64;
    for _ in 0..attempts {
        for _retry in 0..20 {
            let Ok(mut c) = TcpStream::connect(addr) else {
                std::thread::sleep(Duration::from_millis(25));
                continue;
            };
            c.set_nodelay(true).ok();
            let mut wrote_all = true;
            for &b in line.as_bytes() {
                if c.write_all(&[b]).is_err() {
                    wrote_all = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let reply = read_line_timeout(&mut c, Duration::from_secs(10));
            if wrote_all && reply.is_some_and(|l| l.contains("\"ok\":true")) {
                succeeded += 1;
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    (attempts as u64, succeeded)
}

/// Stalled readers: pipeline a burst of requests and never read the
/// responses, so the daemon's write buffers back up. Liveness demands
/// the daemon eventually close every such connection — via the
/// slow-client write budget when the buffered bytes overflow the
/// socket, or the idle read timeout otherwise. Every line is a *cold*
/// compile of a distinct chain grammar, so the admitted part of the
/// burst is real pipeline work that overflows the worker queue — the
/// pressure the Table 15 degradation A/B measures. Returns
/// (opened, closed).
fn hostile_stalled(addr: &str, conns: usize, pipeline: usize) -> (u64, u64) {
    let chain = |salt: String| {
        let mut g = String::from("s : p0 ; ");
        for i in 0..300 {
            if i + 1 < 300 {
                g.push_str(&format!("p{i} : \"t{i}_{salt}\" p{} | \"t{i}\" ; ", i + 1));
            } else {
                g.push_str(&format!("p{i} : \"t{i}_{salt}\" ; "));
            }
        }
        g
    };
    let mut streams = Vec::new();
    for conn in 0..conns {
        let payload: String = (0..pipeline)
            .map(|k| {
                lalr_service::protocol::request_to_line(
                    &Request::Compile {
                        grammar: chain(format!("c{conn}k{k}")),
                        format: GrammarFormat::Native,
                    },
                    None,
                ) + "\n"
            })
            .collect();
        if let Ok(mut c) = TcpStream::connect(addr) {
            let _ = c.write_all(payload.as_bytes());
            streams.push(c);
        }
    }
    let opened = streams.len() as u64;
    // Hold past the write budget without reading a byte.
    std::thread::sleep(Duration::from_millis(800));
    let mut closed = 0u64;
    let mut sink = [0u8; 16384];
    for mut c in streams {
        c.set_read_timeout(Some(Duration::from_secs(5))).ok();
        loop {
            match c.read(&mut sink) {
                // EOF or a reset: the daemon dropped us. Draining data
                // first is fine — a not-yet-closed connection empties
                // its backlog and is then closed at the idle timeout.
                Ok(0) => {
                    closed += 1;
                    break;
                }
                Ok(_) => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(_) => {
                    closed += 1;
                    break;
                }
            }
        }
    }
    (opened, closed)
}

/// The Table 15 harness: hostile clients and well-behaved clients share
/// one event-loop daemon configured with a tight per-peer quota and a
/// slow-client write budget. Exits 1 unless the daemon survives —
/// zero well-behaved errors, visible flood rejection, stalled readers
/// closed, final health `ok`, clean drain.
fn hostile_main(threads: usize, per_thread: usize, json_out: Option<&str>, degrade: bool) {
    if !lalr_net::supported() {
        eprintln!("loadgen --hostile: event-loop front end unsupported on this platform; skipping");
        return;
    }
    let quota = threads + 6;
    // A deliberately small worker pool and queue. The event loop admits
    // at most one in-flight request per connection, so pipelining alone
    // can never overflow the queue — overload is connections × work:
    // the stalled readers' cold chain compiles plus the well-behaved
    // mix outnumber workers + queue slots, the service sheds, and the
    // `--no-degrade` A/B arm (Table 15) measures a daemon that actually
    // degrades, not one hiding behind a deep queue.
    let workers = 2;
    let max_pending = 2;
    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(5),
            max_connections_per_peer: quota,
            rate_limit_per_sec: 2000,
            rate_limit_burst: 1000,
            write_budget: Duration::from_millis(200),
            service: ServiceConfig {
                workers: Parallelism::new(workers),
                max_pending,
                health: if degrade {
                    lalr_service::HealthConfig::default()
                } else {
                    lalr_service::HealthConfig {
                        degrade_after_sheds: 0,
                        ..lalr_service::HealthConfig::default()
                    }
                },
                ..ServiceConfig::default()
            },
            ..DaemonConfig::default()
        },
        2,
    )
    .expect("bind loopback");
    let addr = daemon.addr().to_string();
    let requests = Arc::new(workload());
    eprintln!(
        "loadgen --hostile: {threads} well-behaved threads x {per_thread} requests, \
         per-peer quota {quota}, 2000/s rate limit (burst 1000), 200ms write budget, \
         queue {max_pending}, degradation {}",
        if degrade { "on" } else { "off" }
    );

    let breaker = Arc::new(CircuitBreaker::new(8, Duration::from_millis(25)));
    let flood = {
        let addr = addr.clone();
        std::thread::spawn(move || hostile_flood(&addr, quota + 12, 6))
    };
    let trickle = {
        let addr = addr.clone();
        std::thread::spawn(move || hostile_trickle(&addr, 6))
    };
    let stalled = {
        let addr = addr.clone();
        std::thread::spawn(move || hostile_stalled(&addr, 4, 300))
    };
    let (latencies, errors, retries) =
        hostile_good_clients(&addr, &requests, &breaker, threads, per_thread);
    let (flood_attempted, flood_rejected) = flood.join().expect("flood thread");
    let (trickle_attempted, trickle_ok) = trickle.join().expect("trickle thread");
    let (stalled_opened, stalled_closed) = stalled.join().expect("stalled thread");

    // Calm traffic until the health state machine recovers to `ok` —
    // the stalled-reader burst usually sheds enough to reach degraded.
    let mut state = "unknown".to_string();
    let mut health_raw = String::new();
    for _ in 0..600 {
        let _ = lalr_service::client::call(&addr, &requests[0], None, Duration::from_secs(5));
        if let Ok(reply) =
            lalr_service::client::call(&addr, &Request::Health, None, Duration::from_secs(5))
        {
            health_raw = reply.raw;
            for s in ["ok", "degraded", "draining"] {
                if health_raw.contains(&format!("\"state\":\"{s}\"")) {
                    state = s.to_string();
                }
            }
            if state == "ok" {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon.stop();
    let summary = daemon.join();

    let peer_quota_rejects = counter(&health_raw, "peer_quota");
    let rate_limit_rejects = counter(&health_raw, "rate_limit");
    let slow_client_rejects = counter(&health_raw, "slow_client");
    let degraded_transitions = counter(&health_raw, "degraded_transitions");
    let shard_restarts = counter(&health_raw, "shard_restarts");

    println!("| arm | attempted | succeeded | rejected | closed |");
    println!("|------|----------:|----------:|---------:|-------:|");
    println!(
        "| well-behaved | {} | {} | — | — |",
        latencies.len(),
        latencies.len() as u64 - errors,
    );
    println!("| conn-flood | {flood_attempted} | — | {flood_rejected} | — |");
    println!("| byte-at-a-time | {trickle_attempted} | {trickle_ok} | — | — |");
    println!("| stalled-reader | {stalled_opened} | — | — | {stalled_closed} |");
    eprintln!(
        "well-behaved: {retries} retries, {} breaker opens, p50 {:.3}ms p99 {:.3}ms",
        breaker.opens(),
        ms(percentile(&latencies, 0.50)),
        ms(percentile(&latencies, 0.99)),
    );
    eprintln!(
        "daemon: final health {state}, rejects peer-quota {peer_quota_rejects} \
         rate-limit {rate_limit_rejects} slow-client {slow_client_rejects}, \
         {degraded_transitions} degraded transitions, {shard_restarts} shard restarts, \
         drained {} aborted {}",
        summary.drained, summary.aborted,
    );

    let mut failures: Vec<&str> = Vec::new();
    if errors > 0 {
        failures.push("well-behaved requests failed");
    }
    if flood_rejected == 0 {
        failures.push("connection flood was never rejected");
    }
    if trickle_ok < trickle_attempted {
        failures.push("byte-at-a-time requests went unanswered");
    }
    if stalled_closed < stalled_opened {
        failures.push("stalled readers were not closed");
    }
    if state != "ok" {
        failures.push("daemon did not recover to the ok health state");
    }
    if summary.aborted > 0 {
        failures.push("drain aborted connections");
    }
    if let Some(path) = json_out {
        write_json(
            path,
            format!(
                "{{\"breaker_opens\":{},\"degrade\":{degrade},\"errors\":{errors},\"flood\":{{\"attempted\":\
                 {flood_attempted},\"rejected\":{flood_rejected}}},\"health\":{{\
                 \"degraded_transitions\":{degraded_transitions},\"peer_quota_rejects\":\
                 {peer_quota_rejects},\"rate_limit_rejects\":{rate_limit_rejects},\
                 \"shard_restarts\":{shard_restarts},\"slow_client_rejects\":\
                 {slow_client_rejects},\"state\":\"{state}\"}},\"mode\":\"hostile\",\
                 \"p50_ms\":{:.3},\"p99_ms\":{:.3},\"per_thread\":{per_thread},\"requests\":{},\
                 \"retries\":{retries},\"stalled\":{{\"closed\":{stalled_closed},\"opened\":\
                 {stalled_opened}}},\"summary\":{{\"aborted\":{},\"drained\":{}}},\"threads\":\
                 {threads},\"trickle\":{{\"attempted\":{trickle_attempted},\"ok\":{trickle_ok}}}}}\n",
                breaker.opens(),
                ms(percentile(&latencies, 0.50)),
                ms(percentile(&latencies, 0.99)),
                latencies.len(),
                summary.aborted,
                summary.drained,
            ),
        );
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("loadgen --hostile: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let parse = args.iter().any(|a| a == "--parse");
    let restart = args.iter().any(|a| a == "--restart");
    let hostile = args.iter().any(|a| a == "--hostile");
    // `--no-degrade` is the Table 15 control arm: same hostile mix, but
    // the health state machine never enters `degraded`.
    let no_degrade = args.iter().any(|a| a == "--no-degrade");
    // `--trace` arms the flight recorder (sample-every-request) on the
    // mixed-mode services, for the Table 14 armed-vs-disabled overhead
    // comparison.
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| {
        a != "--chaos"
            && a != "--parse"
            && a != "--restart"
            && a != "--hostile"
            && a != "--no-degrade"
            && a != "--trace"
    });
    // `--json OUT` is a value flag: pull it (and its value) out before
    // the remaining words are read as positionals.
    let mut json_out: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if pos + 1 >= args.len() {
            eprintln!("loadgen: --json needs an output path");
            std::process::exit(2);
        }
        json_out = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let json_out = json_out.as_deref();
    let threads: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(8);
    let per_thread: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    if restart {
        restart_main(threads.min(4), json_out);
        return;
    }
    if chaos {
        chaos_main(threads, per_thread, json_out);
        return;
    }
    if hostile {
        hostile_main(threads, per_thread, json_out, !no_degrade);
        return;
    }
    if parse {
        // The second positional is *passes* here, not requests per
        // thread: every pass covers the whole corpus workload.
        let passes = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
        parse_main(threads, passes, json_out);
        return;
    }

    let requests = Arc::new(workload());
    let tracing = trace.then(lalr_service::TraceConfig::default);
    eprintln!(
        "loadgen: {threads} threads x {per_thread} requests, {} distinct requests in the mix{}",
        requests.len(),
        if trace { ", tracing armed" } else { "" }
    );

    // Cold arm: no cache, every request compiles.
    let cold_service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::new(threads),
        cache: None,
        tracing,
        ..ServiceConfig::default()
    }));
    let cold = run_arm("cold", &cold_service, &requests, threads, per_thread);
    cold_service.shutdown();

    // Warm arm: default cache, pre-warmed with one sequential pass.
    let warm_service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::new(threads),
        tracing,
        ..ServiceConfig::default()
    }));
    for request in requests.iter() {
        let response = warm_service.call(request.clone(), None);
        assert!(response.is_ok(), "warm-up request failed: {response:?}");
    }
    let warm = run_arm("warm", &warm_service, &requests, threads, per_thread);
    let stats = warm_service.stats();
    warm_service.shutdown();

    println!("| arm  | requests | errors | req/s | p50 (ms) | p90 (ms) | p99 (ms) |");
    println!("|------|---------:|-------:|------:|---------:|---------:|---------:|");
    for arm in [&cold, &warm] {
        println!(
            "| {} | {} | {} | {:.0} | {:.3} | {:.3} | {:.3} |",
            arm.name,
            arm.requests,
            arm.errors,
            arm.throughput(),
            ms(arm.p50),
            ms(arm.p90),
            ms(arm.p99),
        );
    }
    let speedup = warm.throughput() / cold.throughput();
    println!();
    println!("warm/cold throughput: {speedup:.1}x");
    if let Some(cache) = &stats.cache {
        println!(
            "warm-arm cache: {:.1}% hit rate ({} hits, {} misses, {} coalesced)",
            cache.hit_rate() * 100.0,
            cache.hits,
            cache.misses,
            cache.coalesced
        );
    }
    if let Some(path) = json_out {
        let rows: Vec<String> = [&cold, &warm]
            .iter()
            .map(|arm| {
                format!(
                    "{{\"errors\":{},\"name\":\"{}\",\"p50_ms\":{:.3},\"p90_ms\":{:.3},\
                     \"p99_ms\":{:.3},\"req_per_s\":{:.1},\"requests\":{}}}",
                    arm.errors,
                    arm.name,
                    ms(arm.p50),
                    ms(arm.p90),
                    ms(arm.p99),
                    arm.throughput(),
                    arm.requests,
                )
            })
            .collect();
        let cache_json = stats.cache.as_ref().map_or_else(
            || "null".to_string(),
            |c| {
                format!(
                    "{{\"coalesced\":{},\"hits\":{},\"misses\":{}}}",
                    c.coalesced, c.hits, c.misses
                )
            },
        );
        write_json(
            path,
            format!(
                "{{\"arms\":[{}],\"mode\":\"mixed\",\"per_thread\":{per_thread},\
                 \"threads\":{threads},\"warm_cache\":{cache_json},\
                 \"warm_cold_speedup\":{speedup:.2}}}\n",
                rows.join(",")
            ),
        );
    }
    if cold.errors + warm.errors > 0 {
        eprintln!("loadgen: some requests failed");
        std::process::exit(1);
    }
}
