//! The generated modules must compile standalone. This test shells out to
//! `rustc` (metadata-only build); it is skipped when no `rustc` is on PATH.

use std::process::Command;

use lalr_automata::Lr0Automaton;
use lalr_codegen::generate_module;
use lalr_core::LalrAnalysis;
use lalr_tables::{build_table, TableOptions};

fn rustc_available() -> bool {
    Command::new("rustc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

#[test]
fn generated_modules_compile_standalone() {
    if !rustc_available() {
        eprintln!("skipping: rustc not found on PATH");
        return;
    }
    let dir = std::env::temp_dir().join("lalr_codegen_compile_test");
    std::fs::create_dir_all(&dir).expect("temp dir");

    for name in ["expr", "json", "lalr_not_slr", "nqlalr_witness"] {
        let grammar = lalr_corpus::by_name(name).expect("corpus entry").grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        let la = LalrAnalysis::compute(&grammar, &lr0).into_lookaheads();
        let table = build_table(&grammar, &lr0, &la, TableOptions::default());
        let source = format!(
            "#![forbid(unsafe_code)]\n#![deny(warnings)]\n{}",
            generate_module(&table, name)
        );

        let src_path = dir.join(format!("{name}.rs"));
        std::fs::write(&src_path, &source).expect("write source");
        let out = Command::new("rustc")
            .args([
                "--edition=2021",
                "--crate-type=lib",
                "--emit=metadata",
                "-o",
            ])
            .arg(dir.join(format!("lib{name}.rmeta")))
            .arg(&src_path)
            .output()
            .expect("run rustc");
        assert!(
            out.status.success(),
            "{name} failed to compile:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
