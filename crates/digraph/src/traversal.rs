//! The DeRemer–Pennello **Digraph** algorithm.
//!
//! Given a digraph `R` over nodes `0..n` and an array of initial sets
//! `F'(x)` (one [`lalr_bitset::BitMatrix`] row per node), compute in place
//! the smallest `F` with
//!
//! ```text
//! F(x) = F'(x) ∪ ⋃ { F(y) : x R y }
//! ```
//!
//! i.e. `F(x)` becomes the union of the initial sets of every node reachable
//! from `x`. The traversal is a single DFS that assigns every node of a
//! strongly connected component the same (complete) set, so the total work is
//! `O(n + m)` set operations — the efficiency claim at the heart of the
//! paper.

use lalr_bitset::BitMatrix;

use crate::Graph;

/// Sentinel marking a node whose component has been completed.
const INFINITY: u32 = u32::MAX;

/// Abstraction over the per-node set storage so that the same traversal can
/// run on bit-matrix rows (the paper's representation) or any alternative
/// (e.g. hash sets, for the representation ablation in experiment **E7**).
pub trait UnionSets {
    /// `F(dst) ∪= F(src)`.
    fn union(&mut self, dst: usize, src: usize);
    /// `F(dst) := F(src)` (used when collapsing a strongly connected
    /// component onto its root).
    fn assign(&mut self, dst: usize, src: usize);
}

/// Both operations bottom out in `lalr_bitset::kernels` — the same
/// width-dispatched row kernels the level-scheduled parallel sweep uses
/// — so the sequential and parallel lanes share one optimization
/// surface (and `assign` is a straight row copy with no temporary
/// allocation).
impl UnionSets for BitMatrix {
    fn union(&mut self, dst: usize, src: usize) {
        self.union_rows(dst, src);
    }

    fn assign(&mut self, dst: usize, src: usize) {
        self.copy_row(dst, src);
    }
}

/// Statistics reported by a Digraph run, used by experiment **E5** (relation
/// structure) and by the non-LR(k) cycle test on the `reads` relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DigraphStats {
    /// Total number of strongly connected components encountered.
    pub scc_count: usize,
    /// Number of components with more than one node.
    pub nontrivial_sccs: usize,
    /// Size of the largest component.
    pub max_scc_size: usize,
    /// Number of nodes on some cycle (member of a nontrivial component or
    /// carrying a self-loop).
    pub cyclic_nodes: usize,
}

impl DigraphStats {
    /// `true` when the relation contains a cycle (including self-loops).
    pub fn has_cycle(&self) -> bool {
        self.cyclic_nodes > 0
    }
}

/// Set-operation tallies from a counting traversal — the "bitset OR
/// operations" pipeline counter of the observability layer. The counts
/// are structural (one per relation edge / component member), so they
/// are deterministic for a fixed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalCounts {
    /// Number of `F(dst) ∪= F(src)` row unions performed.
    pub unions: u64,
    /// Number of `F(dst) := F(src)` row copies (SCC collapses).
    pub assigns: u64,
}

/// A [`UnionSets`] adapter that forwards to an inner store while
/// tallying every operation.
struct CountingSets<'a, S> {
    inner: &'a mut S,
    counts: TraversalCounts,
}

impl<S: UnionSets> UnionSets for CountingSets<'_, S> {
    fn union(&mut self, dst: usize, src: usize) {
        self.counts.unions += 1;
        self.inner.union(dst, src);
    }

    fn assign(&mut self, dst: usize, src: usize) {
        self.counts.assigns += 1;
        self.inner.assign(dst, src);
    }
}

/// [`digraph`] plus a [`TraversalCounts`] tally of the set operations it
/// performed. The resulting matrix and stats are identical to
/// [`digraph`]'s; the profiling layer uses this for its OR-operation
/// counters.
pub fn digraph_counting(graph: &Graph, sets: &mut BitMatrix) -> (DigraphStats, TraversalCounts) {
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    let mut counting = CountingSets {
        inner: sets,
        counts: TraversalCounts::default(),
    };
    let stats = digraph_on(graph, &mut counting);
    (stats, counting.counts)
}

/// Runs the Digraph algorithm over bit-matrix rows.
///
/// `sets` must have exactly one row per graph node; rows enter holding
/// `F'(x)` and leave holding `F(x)`.
///
/// # Panics
///
/// Panics if `sets.rows() != graph.node_count()`.
///
/// # Examples
///
/// ```
/// use lalr_bitset::BitMatrix;
/// use lalr_digraph::{digraph, Graph};
///
/// // A two-node cycle: both nodes end with the union of both initial sets.
/// let g = Graph::from_edges(2, [(0, 1), (1, 0)]);
/// let mut f = BitMatrix::new(2, 8);
/// f.set(0, 0);
/// f.set(1, 1);
/// let stats = digraph(&g, &mut f);
/// assert!(f.get(0, 1) && f.get(1, 0));
/// assert_eq!(stats.nontrivial_sccs, 1);
/// ```
pub fn digraph(graph: &Graph, sets: &mut BitMatrix) -> DigraphStats {
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    digraph_on(graph, sets)
}

/// Runs the Digraph algorithm over any [`UnionSets`] store.
///
/// This is the generic entry point; see [`digraph`] for the bit-matrix
/// convenience wrapper and an example.
pub fn digraph_on<S: UnionSets>(graph: &Graph, sets: &mut S) -> DigraphStats {
    digraph_from_on(graph, sets, 0..graph.node_count())
}

/// Runs the Digraph algorithm starting only from `roots` (over bit-matrix
/// rows).
///
/// Only nodes reachable from some root are completed; unreached rows keep
/// their initial value. This is the paper's *selective* variant: when
/// look-aheads are needed only for the reductions of inadequate states, the
/// traversal is restricted to the relation nodes those reductions look back
/// to.
///
/// # Panics
///
/// Panics if `sets.rows() != graph.node_count()` or a root is out of range.
///
/// # Examples
///
/// ```
/// use lalr_bitset::BitMatrix;
/// use lalr_digraph::{digraph_from, Graph};
///
/// // 0 -> 1, 2 -> 1: starting from 0 leaves node 2 untouched.
/// let g = Graph::from_edges(3, [(0, 1), (2, 1)]);
/// let mut f = BitMatrix::new(3, 4);
/// f.set(1, 3);
/// digraph_from(&g, &mut f, [0]);
/// assert!(f.get(0, 3));
/// assert!(!f.get(2, 3), "node 2 was not traversed");
/// ```
pub fn digraph_from<I>(graph: &Graph, sets: &mut BitMatrix, roots: I) -> DigraphStats
where
    I: IntoIterator<Item = usize>,
{
    assert_eq!(
        sets.rows(),
        graph.node_count(),
        "one set row is required per graph node"
    );
    digraph_from_on(graph, sets, roots)
}

/// Generic root-restricted traversal; see [`digraph_from`].
pub fn digraph_from_on<S, I>(graph: &Graph, sets: &mut S, roots: I) -> DigraphStats
where
    S: UnionSets,
    I: IntoIterator<Item = usize>,
{
    let n = graph.node_count();
    let mut index = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut stats = DigraphStats::default();

    struct Frame {
        node: u32,
        next_succ: u32,
        depth: u32,
    }
    let mut frames: Vec<Frame> = Vec::new();

    for root in roots {
        assert!(root < n, "root {root} out of range");
        if index[root] != 0 {
            continue;
        }
        stack.push(root as u32);
        index[root] = stack.len() as u32;
        frames.push(Frame {
            node: root as u32,
            next_succ: 0,
            depth: stack.len() as u32,
        });

        while let Some(frame) = frames.last_mut() {
            let x = frame.node as usize;
            let succs = graph.successors(x);
            if (frame.next_succ as usize) < succs.len() {
                let y = succs[frame.next_succ as usize] as usize;
                frame.next_succ += 1;
                if index[y] == 0 {
                    // Tree edge: descend.
                    stack.push(y as u32);
                    index[y] = stack.len() as u32;
                    frames.push(Frame {
                        node: y as u32,
                        next_succ: 0,
                        depth: stack.len() as u32,
                    });
                } else {
                    // Back / cross / forward edge (or self-loop).
                    index[x] = index[x].min(index[y]);
                    sets.union(x, y);
                }
            } else {
                // All successors of `x` processed.
                let depth = frame.depth;
                frames.pop();
                if index[x] == depth {
                    // `x` is the root of a completed component: pop it and
                    // assign every member the root's (now complete) set.
                    let mut size = 0usize;
                    loop {
                        let top = stack.pop().expect("stack holds the open component") as usize;
                        index[top] = INFINITY;
                        size += 1;
                        if top == x {
                            break;
                        }
                        sets.assign(top, x);
                    }
                    stats.scc_count += 1;
                    stats.max_scc_size = stats.max_scc_size.max(size);
                    if size > 1 {
                        stats.nontrivial_sccs += 1;
                        stats.cyclic_nodes += size;
                    } else if graph.has_self_loop(x) {
                        stats.cyclic_nodes += 1;
                    }
                }
                // Propagate low-link and set to the parent frame.
                if let Some(parent) = frames.last() {
                    let p = parent.node as usize;
                    index[p] = index[p].min(index[x]);
                    sets.union(p, x);
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_bitset::BitMatrix;

    fn run(
        n: usize,
        cols: usize,
        edges: &[(usize, usize)],
        init: &[(usize, usize)],
    ) -> (BitMatrix, DigraphStats) {
        let g = Graph::from_edges(n, edges.iter().copied());
        let mut m = BitMatrix::new(n, cols);
        for &(r, c) in init {
            m.set(r, c);
        }
        let stats = digraph(&g, &mut m);
        (m, stats)
    }

    fn row(m: &BitMatrix, r: usize) -> Vec<usize> {
        m.iter_row(r).collect()
    }

    #[test]
    fn chain_accumulates_downstream_sets() {
        // 0 -> 1 -> 2, F'(i) = {i}
        let (m, stats) = run(3, 8, &[(0, 1), (1, 2)], &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(row(&m, 0), vec![0, 1, 2]);
        assert_eq!(row(&m, 1), vec![1, 2]);
        assert_eq!(row(&m, 2), vec![2]);
        assert_eq!(stats.scc_count, 3);
        assert!(!stats.has_cycle());
    }

    #[test]
    fn cycle_members_share_one_set() {
        let (m, stats) = run(3, 8, &[(0, 1), (1, 2), (2, 0)], &[(0, 0), (1, 1), (2, 2)]);
        for r in 0..3 {
            assert_eq!(row(&m, r), vec![0, 1, 2]);
        }
        assert_eq!(stats.scc_count, 1);
        assert_eq!(stats.max_scc_size, 3);
        assert_eq!(stats.cyclic_nodes, 3);
    }

    #[test]
    fn scc_with_external_successor() {
        // {0,1} cycle -> 2; everything in the SCC sees F'(2).
        let (m, _) = run(3, 8, &[(0, 1), (1, 0), (1, 2)], &[(2, 7)]);
        assert_eq!(row(&m, 0), vec![7]);
        assert_eq!(row(&m, 1), vec![7]);
    }

    #[test]
    fn diamond_joins_at_bottom() {
        // 0 -> {1,2} -> 3
        let (m, stats) = run(
            4,
            8,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            &[(1, 1), (2, 2), (3, 3)],
        );
        assert_eq!(row(&m, 0), vec![1, 2, 3]);
        assert_eq!(row(&m, 3), vec![3]);
        assert_eq!(stats.scc_count, 4);
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let (_, stats) = run(2, 4, &[(0, 0)], &[]);
        assert!(stats.has_cycle());
        assert_eq!(stats.nontrivial_sccs, 0);
        assert_eq!(stats.cyclic_nodes, 1);
    }

    #[test]
    fn disconnected_components_are_independent() {
        let (m, stats) = run(4, 8, &[(0, 1), (2, 3)], &[(1, 1), (3, 3)]);
        assert_eq!(row(&m, 0), vec![1]);
        assert_eq!(row(&m, 2), vec![3]);
        assert!(row(&m, 0) != row(&m, 2));
        assert_eq!(stats.scc_count, 4);
    }

    #[test]
    fn empty_graph_is_fine() {
        let (m, stats) = run(0, 4, &[], &[]);
        assert_eq!(m.rows(), 0);
        assert_eq!(stats.scc_count, 0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 10_000-node chain exercises the iterative implementation.
        let n = 10_000;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(n, edges);
        let mut m = BitMatrix::new(n, 4);
        m.set(n - 1, 0);
        let stats = digraph(&g, &mut m);
        assert!(m.get(0, 0));
        assert_eq!(stats.scc_count, n);
    }

    #[test]
    fn counting_traversal_matches_and_tallies() {
        // A 3-cycle: the DFS performs one union per non-tree edge plus
        // one per parent propagation, and two assigns collapsing the
        // component onto its root.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let mut plain = BitMatrix::new(3, 8);
        plain.set(1, 4);
        let mut counted = plain.clone();
        let plain_stats = digraph(&g, &mut plain);
        let (stats, counts) = digraph_counting(&g, &mut counted);
        assert_eq!(plain, counted, "counting adapter must not change results");
        assert_eq!(plain_stats, stats);
        assert_eq!(counts.assigns, 2, "two members collapse onto the root");
        assert_eq!(counts.unions, 3, "back edge + two parent propagations");
    }

    #[test]
    #[should_panic(expected = "one set row")]
    fn row_count_mismatch_panics() {
        let g = Graph::new(2);
        let mut m = BitMatrix::new(1, 4);
        digraph(&g, &mut m);
    }
}
