//! Flight recorder: a fixed-capacity, lock-free ring of recent
//! [`RequestTrace`]s.
//!
//! The daemon stamps one trace per *sampled* request — stage-by-stage
//! durations from shard accept to response write-back — and pushes the
//! finished record here. The ring keeps the most recent `capacity`
//! records; the `trace` protocol op snapshots them without stopping
//! writers.
//!
//! Concurrency model (no `unsafe`, this crate forbids it): each slot is
//! a seqlock-style group of `AtomicU64` fields guarded by a sequence
//! word. A writer claims a slot by ticket (`head.fetch_add(1)`), parks
//! the sequence at 0 (in-progress), stores the fields, then publishes
//! `ticket + 1` with `Release`. A reader loads the sequence with
//! `Acquire`, copies the fields, re-reads the sequence, and keeps the
//! copy only if both reads agree on a nonzero value — a torn read
//! (writer wrapped the ring mid-copy) is simply dropped. That is the
//! right trade for a flight recorder: writers never block, readers
//! never block, and the worst case under pathological wrap races is a
//! missing record, never a corrupt one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Stage names, indexing [`RequestTrace::stages_us`].
///
/// The stages are disjoint code regions on the request path:
///
/// * `queue` — accepted (or read off the socket) until a worker
///   dequeues the job;
/// * `cache` — artifact-cache and store lookup, excluding compilation;
/// * `compile` — grammar → LALR(1) artifact construction;
/// * `parse` — running documents through the compiled tables;
/// * `write` — response serialization until the connection's output
///   buffer drains (event front end only; zero for in-process calls).
pub const STAGE_NAMES: [&str; 5] = ["queue", "cache", "compile", "parse", "write"];

/// Number of stages in [`STAGE_NAMES`].
pub const STAGE_COUNT: usize = STAGE_NAMES.len();

/// One completed request's life, in microseconds per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// Monotonic trace ID (1-based; assigned at sampling time).
    pub id: u64,
    /// Index into the service's op table (`OPS` in `lalr-service`).
    pub op: u8,
    /// Shard that accepted the connection (0 for in-process calls).
    pub shard: u16,
    /// True when the response was an error.
    pub error: bool,
    /// End-to-end latency in microseconds (accept → reply delivered).
    pub total_us: u64,
    /// Per-stage durations in microseconds, indexed by [`STAGE_NAMES`].
    pub stages_us: [u64; STAGE_COUNT],
}

impl RequestTrace {
    /// Sum of the per-stage durations in microseconds.
    pub fn stage_sum_us(&self) -> u64 {
        self.stages_us.iter().sum()
    }
}

/// In-flight accumulator for one sampled request.
///
/// Owned by the request while it flows through the pipeline; stages are
/// accumulated with plain stores (one owner at a time) and the record
/// is pushed to the [`FlightRecorder`] when the reply is delivered.
#[derive(Debug)]
pub struct ActiveTrace {
    /// Trace ID assigned by [`FlightRecorder::next_id`].
    pub id: u64,
    /// Op index (see `OPS` in `lalr-service`).
    pub op: u8,
    /// Accepting shard (0 outside the event front end).
    pub shard: u16,
    error: AtomicU64,
    stages_ns: [AtomicU64; STAGE_COUNT],
}

impl ActiveTrace {
    /// Starts an empty trace for `op` on `shard`.
    pub fn new(id: u64, op: u8, shard: u16) -> ActiveTrace {
        ActiveTrace {
            id,
            op,
            shard,
            error: AtomicU64::new(0),
            stages_ns: Default::default(),
        }
    }

    /// Adds `ns` nanoseconds to stage `index` (see [`STAGE_NAMES`]).
    pub fn add_stage(&self, index: usize, ns: u64) {
        self.stages_ns[index].fetch_add(ns, Ordering::Relaxed);
    }

    /// Nanoseconds accumulated so far for stage `index` (used to
    /// subtract an inner stage out of an enclosing measurement).
    pub fn stage_ns(&self, index: usize) -> u64 {
        self.stages_ns[index].load(Ordering::Relaxed)
    }

    /// Marks the traced request as having produced an error response.
    pub fn set_error(&self) {
        self.error.store(1, Ordering::Relaxed);
    }

    /// Freezes the accumulator into a [`RequestTrace`] with the given
    /// end-to-end latency.
    pub fn finish(&self, total_ns: u64) -> RequestTrace {
        let mut stages_us = [0u64; STAGE_COUNT];
        for (us, ns) in stages_us.iter_mut().zip(&self.stages_ns) {
            *us = ns.load(Ordering::Relaxed) / 1_000;
        }
        RequestTrace {
            id: self.id,
            op: self.op,
            shard: self.shard,
            error: self.error.load(Ordering::Relaxed) != 0,
            total_us: total_ns / 1_000,
            stages_us,
        }
    }
}

/// A slot's field group. `seq == 0` means empty or mid-write; a
/// published slot holds `ticket + 1` so slot 0's first record is
/// distinguishable from "never written".
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    id: AtomicU64,
    meta: AtomicU64, // op | shard<<8 | error<<24
    total_us: AtomicU64,
    stages_us: [AtomicU64; STAGE_COUNT],
}

/// Fixed-capacity, lock-free ring buffer of recent [`RequestTrace`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    mask: u64,
    head: AtomicU64,
    next_id: AtomicU64,
    sample_tick: AtomicU64,
    sample_every: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding the most recent `capacity` traces
    /// (rounded up to a power of two, minimum 8), sampling one request
    /// in `sample_every` (clamped to at least 1).
    pub fn new(capacity: usize, sample_every: u64) -> FlightRecorder {
        let cap = capacity.max(8).next_power_of_two();
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            mask: (cap as u64) - 1,
            head: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            sample_tick: AtomicU64::new(0),
            sample_every: sample_every.max(1),
        }
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The sampling period: one request in `sample_every` is traced.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Returns true if the next request should be traced, advancing the
    /// sampling counter. With `sample_every == 1` every request
    /// samples.
    pub fn should_sample(&self) -> bool {
        self.sample_tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.sample_every)
    }

    /// Allocates the next trace ID (1-based, monotonic).
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of traces pushed since creation (may exceed capacity).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes a finished trace, overwriting the oldest slot.
    pub fn push(&self, trace: &RequestTrace) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Park the sequence so concurrent readers discard the slot.
        slot.seq.store(0, Ordering::Release);
        slot.id.store(trace.id, Ordering::Relaxed);
        let meta =
            u64::from(trace.op) | (u64::from(trace.shard) << 8) | (u64::from(trace.error) << 24);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.total_us.store(trace.total_us, Ordering::Relaxed);
        for (cell, &us) in slot.stages_us.iter().zip(&trace.stages_us) {
            cell.store(us, Ordering::Relaxed);
        }
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Copies out the current contents, newest first. Slots that are
    /// mid-write (or torn by a concurrent wrap) are skipped.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let newest = head;
        let oldest = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((newest - oldest) as usize);
        // Walk tickets newest → oldest so the dump leads with recency.
        let mut ticket = newest;
        while ticket > oldest {
            ticket -= 1;
            let slot = &self.slots[(ticket & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let id = slot.id.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let total_us = slot.total_us.load(Ordering::Relaxed);
            let mut stages_us = [0u64; STAGE_COUNT];
            for (us, cell) in stages_us.iter_mut().zip(&slot.stages_us) {
                *us = cell.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // torn by a concurrent overwrite
            }
            out.push(RequestTrace {
                id,
                op: (meta & 0xff) as u8,
                shard: ((meta >> 8) & 0xffff) as u16,
                error: (meta >> 24) & 1 == 1,
                total_us,
                stages_us,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> RequestTrace {
        RequestTrace {
            id,
            op: (id % 7) as u8,
            shard: (id % 3) as u16,
            error: id % 5 == 0,
            total_us: id * 10,
            stages_us: [id, 0, id * 4, 0, id * 5],
        }
    }

    #[test]
    fn push_and_snapshot_round_trip_newest_first() {
        let rec = FlightRecorder::new(8, 1);
        for id in 1..=5 {
            rec.push(&trace(id));
        }
        let got = rec.snapshot();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], trace(5));
        assert_eq!(got[4], trace(1));
        assert_eq!(rec.recorded(), 5);
    }

    #[test]
    fn ring_overwrites_oldest_on_wrap() {
        let rec = FlightRecorder::new(8, 1);
        for id in 1..=20 {
            rec.push(&trace(id));
        }
        let got = rec.snapshot();
        assert_eq!(got.len(), 8);
        assert_eq!(got[0].id, 20);
        assert_eq!(got[7].id, 13);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRecorder::new(0, 1).capacity(), 8);
        assert_eq!(FlightRecorder::new(100, 1).capacity(), 128);
    }

    #[test]
    fn sampling_period_admits_one_in_n() {
        let rec = FlightRecorder::new(8, 4);
        let admitted = (0..16).filter(|_| rec.should_sample()).count();
        assert_eq!(admitted, 4);
        let every = FlightRecorder::new(8, 0); // clamps to 1
        assert!((0..4).all(|_| every.should_sample()));
    }

    #[test]
    fn active_trace_accumulates_and_finishes() {
        let active = ActiveTrace::new(7, 3, 1);
        active.add_stage(0, 1_500);
        active.add_stage(0, 500);
        active.add_stage(2, 3_000_000);
        active.set_error();
        let done = active.finish(3_010_000);
        assert_eq!(done.id, 7);
        assert_eq!(done.op, 3);
        assert_eq!(done.shard, 1);
        assert!(done.error);
        assert_eq!(done.total_us, 3_010);
        assert_eq!(done.stages_us, [2, 0, 3_000, 0, 0]);
        assert_eq!(done.stage_sum_us(), 3_002);
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_snapshot() {
        use std::sync::Arc;
        let rec = Arc::new(FlightRecorder::new(16, 1));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        rec.push(&trace(w * 1_000 + i + 1));
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            for t in rec.snapshot() {
                // Every surviving record must be internally consistent
                // with the generator above.
                assert_eq!(t.op, (t.id % 7) as u8, "torn record {t:?}");
                assert_eq!(t.total_us, t.id * 10, "torn record {t:?}");
                assert_eq!(t.stages_us[0], t.id, "torn record {t:?}");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(rec.recorded(), 2_000);
    }
}
