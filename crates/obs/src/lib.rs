//! **lalr-obs** — deterministic, offline-friendly tracing and metrics
//! for the LALR pipeline.
//!
//! The crate is a miniature `tracing` stand-in with zero dependencies:
//!
//! * [`Recorder`] — the sink trait the pipeline is instrumented
//!   against: named spans (enter/exit with monotonic timing and parent
//!   nesting) plus named monotonic counters.
//! * [`NullRecorder`] / [`NULL`] — the default sink. Every method is an
//!   empty `#[inline]` body, so the instrumented pipeline costs a
//!   predicted-not-taken branch per phase and *zero* allocations (the
//!   alloc-budget regression test in `lalr-bench` pins this down).
//! * [`CollectingRecorder`] — an enabled sink that aggregates spans and
//!   counters into a [`PhaseReport`]: per-phase wall time, call counts,
//!   pipeline counters, and (when an allocation probe is wired in)
//!   per-phase allocation deltas.
//! * Exporters — [`PhaseReport::to_text`], a deterministic key-sorted
//!   flat format, and [`PhaseReport::to_chrome_trace`], Chrome
//!   trace-event JSON loadable in `chrome://tracing` or Perfetto.
//! * [`FlightRecorder`] — a fixed-capacity, lock-free ring of recent
//!   [`RequestTrace`]s, the request-scoped complement to the aggregate
//!   sinks above: the service samples requests, stamps per-stage
//!   durations into an [`ActiveTrace`], and the daemon's `trace` op
//!   dumps the ring after the fact.
//!
//! Counter values are deterministic for a fixed grammar (they count
//! structural work: states interned, relation edges, bitset OR
//! operations, …); timings of course are not. Consumers that need
//! reproducibility — the determinism test, the service's metrics
//! exposition — compare counters and call counts only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod collect;
mod flight;
mod recorder;
mod report;

pub use collect::{AllocProbe, CollectingRecorder};
pub use flight::{ActiveTrace, FlightRecorder, RequestTrace, STAGE_COUNT, STAGE_NAMES};
pub use recorder::{span, NullRecorder, Recorder, Span, NULL};
pub use report::{PhaseReport, PhaseSummary, SpanEvent};
