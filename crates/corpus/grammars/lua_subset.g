// A Lua 5-flavoured subset: chunks, statements, function definitions,
// table constructors, full operator ladder. Follows the reference manual
// grammar with its (LALR-friendly) prefixexp/var factoring.
%start chunk

chunk : block ;

block : stats retstat_opt ;
stats : %empty | stats stat ;
retstat_opt : %empty | RETURN exprlist_opt semi_opt ;
exprlist_opt : %empty | exprlist ;
semi_opt : %empty | ";" ;

stat
    : ";"
    | varlist "=" exprlist
    | functioncall
    | DO block END_KW
    | WHILE expr DO block END_KW
    | REPEAT block UNTIL expr
    | IF expr THEN block elseif_list else_opt END_KW
    | FOR NAME "=" expr "," expr DO block END_KW
    | FOR NAME "=" expr "," expr "," expr DO block END_KW
    | FOR namelist IN exprlist DO block END_KW
    | FUNCTION funcname funcbody
    | LOCAL FUNCTION NAME funcbody
    | LOCAL namelist
    | LOCAL namelist "=" exprlist
    | BREAK
    ;

elseif_list : %empty | elseif_list ELSEIF expr THEN block ;
else_opt : %empty | ELSE block ;

funcname : dotted_name | dotted_name ":" NAME ;
dotted_name : NAME | dotted_name "." NAME ;

varlist : var | varlist "," var ;
namelist : NAME | namelist "," NAME ;
exprlist : expr | exprlist "," expr ;

// The manual's var / prefixexp / functioncall factoring.
var
    : NAME
    | prefixexp "[" expr "]"
    | prefixexp "." NAME
    ;

prefixexp : var | functioncall | "(" expr ")" ;

functioncall
    : prefixexp args
    | prefixexp ":" NAME args
    ;

args
    : "(" ")"
    | "(" exprlist ")"
    | tableconstructor
    | STRING
    ;

funcbody : "(" parlist_opt ")" block END_KW ;
parlist_opt : %empty | namelist | namelist "," ELLIPSIS | ELLIPSIS ;

tableconstructor : "{" fieldlist_opt "}" ;
fieldlist_opt : %empty | fieldlist sep_opt ;
fieldlist : field | fieldlist fieldsep field ;
fieldsep : "," | ";" ;
sep_opt : %empty | fieldsep ;
field
    : "[" expr "]" "=" expr
    | NAME "=" expr
    | expr
    ;

// Operator ladder (or < and < cmp < concat < add < mul < unary < pow).
expr : orexp ;
orexp : andexp | orexp OR andexp ;
andexp : cmpexp | andexp AND cmpexp ;
cmpexp
    : catexp
    | cmpexp "<" catexp | cmpexp ">" catexp | cmpexp LE catexp
    | cmpexp GE catexp | cmpexp NE catexp | cmpexp EQ catexp
    ;
catexp : addexp | addexp CONCAT catexp ;
addexp : mulexp | addexp "+" mulexp | addexp "-" mulexp ;
mulexp : unexp | mulexp "*" unexp | mulexp "/" unexp | mulexp "%" unexp ;
unexp : powexp | NOT unexp | "-" unexp | "#" unexp ;
powexp : atom | atom "^" unexp ;

atom
    : NIL | TRUE | FALSE | NUMBER | STRING | ELLIPSIS
    | FUNCTION funcbody
    | prefixexp
    | tableconstructor
    ;
