//! Per-connection line buffers for the readiness-driven daemon.
//!
//! [`LineReader`] accumulates nonblocking reads and yields complete
//! newline-terminated lines under a byte cap — the same cap semantics
//! as the blocking daemon's `BufReader::take` loop: a line longer than
//! the cap is reported once as [`LineEvent::Oversize`], after which the
//! reader silently discards bytes until the offending line's newline
//! (the caller then closes, matching the blocking front end).
//!
//! [`WriteBuf`] queues response bytes and flushes as far as the socket
//! allows, retaining the unwritten tail for the next writable edge.

use std::io::{self, Read, Write};

/// One decoded read event.
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line, without its trailing newline.
    Line(String),
    /// The line under construction exceeded the cap.
    Oversize,
    /// The line bytes were not valid UTF-8.
    InvalidUtf8,
}

/// Accumulates bytes into newline-delimited lines, capped at
/// `max_line_bytes` per line.
#[derive(Debug)]
pub struct LineReader {
    buf: Vec<u8>,
    max_line_bytes: usize,
    /// Discarding until the next newline after an oversize line.
    skipping: bool,
    /// Peer sent EOF.
    eof: bool,
}

impl LineReader {
    /// A reader enforcing `max_line_bytes` per line.
    pub fn new(max_line_bytes: usize) -> LineReader {
        LineReader {
            buf: Vec::new(),
            max_line_bytes,
            skipping: false,
            eof: false,
        }
    }

    /// Reads from `src` until `WouldBlock` or EOF, returning decoded
    /// events in arrival order. An `Err` is a real transport error.
    pub fn fill(&mut self, src: &mut impl Read) -> io::Result<Vec<LineEvent>> {
        let mut events = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match src.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => self.ingest(&chunk[..n], &mut events),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(events)
    }

    fn ingest(&mut self, mut bytes: &[u8], events: &mut Vec<LineEvent>) {
        while !bytes.is_empty() {
            match bytes.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let (head, rest) = bytes.split_at(nl + 1);
                    if self.skipping {
                        self.skipping = false;
                        self.buf.clear();
                    } else {
                        self.buf.extend_from_slice(&head[..nl]);
                        events.push(self.take_line());
                    }
                    bytes = rest;
                }
                None => {
                    if !self.skipping {
                        self.buf.extend_from_slice(bytes);
                        if self.buf.len() > self.max_line_bytes {
                            events.push(LineEvent::Oversize);
                            self.buf.clear();
                            self.skipping = true;
                        }
                    }
                    return;
                }
            }
        }
    }

    fn take_line(&mut self) -> LineEvent {
        let raw = std::mem::take(&mut self.buf);
        if raw.len() > self.max_line_bytes {
            return LineEvent::Oversize;
        }
        match String::from_utf8(raw) {
            Ok(mut line) => {
                // Match BufRead::read_line callers that trim a CR.
                if line.ends_with('\r') {
                    line.pop();
                }
                LineEvent::Line(line)
            }
            Err(_) => LineEvent::InvalidUtf8,
        }
    }

    /// `true` once the peer has sent EOF (no more lines will arrive).
    pub fn at_eof(&self) -> bool {
        self.eof
    }

    /// `true` while discarding the remainder of an oversize line. The
    /// daemon waits for the skip to finish before hanging up, so the
    /// close never races bytes the client is still sending (which would
    /// turn the error response into a connection reset).
    pub fn is_skipping(&self) -> bool {
        self.skipping
    }

    /// Bytes currently buffered for the line under construction.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Buffered nonblocking writes with partial-write carry-over.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    cursor: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queues `bytes` for transmission.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much queued data as `dst` accepts. Returns `true`
    /// when the buffer drained completely; `false` means the socket
    /// blocked and the caller should wait for a writable edge.
    pub fn flush(&mut self, dst: &mut impl Write) -> io::Result<bool> {
        while self.cursor < self.buf.len() {
            match dst.write(&self.buf[self.cursor..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.cursor += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.cursor = 0;
        Ok(true)
    }

    /// `true` when nothing is waiting to be written.
    pub fn is_empty(&self) -> bool {
        self.cursor >= self.buf.len()
    }

    /// Unsent bytes.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Read that yields scripted chunks then WouldBlock.
    struct Script(Vec<Vec<u8>>);
    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.first() {
                None => Err(io::Error::from(io::ErrorKind::WouldBlock)),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    let rest = chunk[n..].to_vec();
                    if rest.is_empty() {
                        self.0.remove(0);
                    } else {
                        self.0[0] = rest;
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn split_lines_across_chunks() {
        let mut r = LineReader::new(64);
        let events = r
            .fill(&mut Script(vec![
                b"hel".to_vec(),
                b"lo\nwor".to_vec(),
                b"ld\npartial".to_vec(),
            ]))
            .unwrap();
        assert_eq!(
            events,
            vec![
                LineEvent::Line("hello".into()),
                LineEvent::Line("world".into())
            ]
        );
        assert_eq!(r.pending_bytes(), "partial".len());
        let events = r.fill(&mut Script(vec![b"!\n".to_vec()])).unwrap();
        assert_eq!(events, vec![LineEvent::Line("partial!".into())]);
    }

    #[test]
    fn oversize_reported_once_then_skipped_to_newline() {
        let mut r = LineReader::new(8);
        let events = r
            .fill(&mut Script(vec![b"0123456789abcdef".to_vec()]))
            .unwrap();
        assert_eq!(events, vec![LineEvent::Oversize]);
        // The rest of the long line is discarded; the next line parses.
        let events = r
            .fill(&mut Script(vec![b"stillthesameline\nok\n".to_vec()]))
            .unwrap();
        assert_eq!(events, vec![LineEvent::Line("ok".into())]);
    }

    #[test]
    fn oversize_detected_at_the_newline_too() {
        // A 9-byte line arriving in one chunk with its newline: the cap
        // check at line completion must still reject it.
        let mut r = LineReader::new(8);
        let events = r.fill(&mut Script(vec![b"012345678\n".to_vec()])).unwrap();
        assert_eq!(events, vec![LineEvent::Oversize]);
    }

    #[test]
    fn invalid_utf8_is_its_own_event() {
        let mut r = LineReader::new(64);
        let events = r
            .fill(&mut Script(vec![
                vec![0xFF, 0xFE, b'{', b'\n'],
                b"ok\n".to_vec(),
            ]))
            .unwrap();
        assert_eq!(
            events,
            vec![LineEvent::InvalidUtf8, LineEvent::Line("ok".into())]
        );
    }

    #[test]
    fn write_buf_carries_partial_writes() {
        struct Choked(Vec<u8>, usize);
        impl Write for Choked {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.1 == 0 {
                    return Err(io::Error::from(io::ErrorKind::WouldBlock));
                }
                let n = buf.len().min(self.1);
                self.0.extend_from_slice(&buf[..n]);
                self.1 -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut w = WriteBuf::new();
        w.queue(b"hello world\n");
        let mut dst = Choked(Vec::new(), 4);
        assert!(!w.flush(&mut dst).unwrap());
        assert_eq!(w.pending_bytes(), 8);
        dst.1 = usize::MAX;
        assert!(w.flush(&mut dst).unwrap());
        assert_eq!(dst.0, b"hello world\n");
        assert!(w.is_empty());
    }
}
