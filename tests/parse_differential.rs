//! Three-way differential over the whole corpus: dense tables, the
//! compressed row-displacement tables, and the service's batched
//! `parse` op must agree verdict-for-verdict and
//! tree-shape-for-tree-shape.
//!
//! Valid sentences come from the seeded derivation generator; invalid
//! (or at least perturbed) documents come from its single-token
//! mutation operator. A mutant is *not* guaranteed out-of-language, so
//! the property compared is agreement, not rejection: whatever one lane
//! decides — accept with this exact tree, or reject at this exact
//! offset with this exact expected set — the other two must decide
//! identically.
//!
//! Restricted to conflict-free grammars: default conflict resolution
//! changes the accepted language, so only there is lane agreement a
//! theorem rather than a coincidence (same convention as
//! `generated_sentences.rs`).

use lalr::corpus::sentences::{generate_many, mutate_many};
use lalr::grammar::Terminal;
use lalr::prelude::*;
use lalr::runtime::CompressedSource;
use lalr_service::{
    DocVerdict, GrammarFormat, ParseTarget, Request, Response, Service, ServiceConfig,
};

/// Dense table for `grammar`, or `None` when it has LALR(1) conflicts.
fn conflict_free_table(grammar: &Grammar) -> Option<ParseTable> {
    let lr0 = Lr0Automaton::build(grammar);
    let analysis = LalrAnalysis::compute(grammar, &lr0);
    if !analysis.conflicts(grammar, &lr0).is_empty() {
        return None;
    }
    Some(build_table(
        grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    ))
}

/// Service-convention tokens: text = terminal name, offset = token
/// index. Identical to what the daemon's lane does with the document.
fn tokens_for(sentence: &[Terminal], grammar: &Grammar) -> Vec<Token> {
    sentence
        .iter()
        .enumerate()
        .map(|(i, &t)| Token::new(t.index() as u32, grammar.terminal_name(t), i))
        .collect()
}

/// The same sentence as a service document: space-separated names.
fn doc_for(sentence: &[Terminal], grammar: &Grammar) -> String {
    sentence
        .iter()
        .map(|&t| grammar.terminal_name(t))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One batched parse call; panics on a non-parse response.
fn call_parse(service: &Service, grammar: &str, documents: &[String]) -> Vec<DocVerdict> {
    let response = service.call(
        Request::Parse {
            target: ParseTarget::Text {
                grammar: grammar.to_string(),
                format: GrammarFormat::Native,
            },
            documents: documents.to_vec(),
            recover: false,
            sync: Vec::new(),
        },
        None,
    );
    match response {
        Response::Parse(summary) => summary.docs,
        other => panic!("parse request failed: {other:?}"),
    }
}

/// Asserts one document decides identically on all three lanes.
fn check_document(
    name: &str,
    grammar: &Grammar,
    table: &ParseTable,
    source: &CompressedSource<'_>,
    sentence: &[Terminal],
    verdict: &DocVerdict,
) {
    let toks = tokens_for(sentence, grammar);
    let dense = Parser::new(table).parse(toks.clone());
    let compressed = Parser::new(source).parse(toks);
    match (&dense, &compressed) {
        (Ok(d), Ok(c)) => {
            let sexpr = d.to_sexpr(table);
            assert_eq!(sexpr, c.to_sexpr(table), "{name}: tree shape diverged");
            assert_eq!(d.leaf_count(), c.leaf_count(), "{name}");
            assert_eq!(d.node_count(), c.node_count(), "{name}");
            assert!(verdict.accepted, "{name}: service rejected a valid doc");
            assert_eq!(verdict.leaves, d.leaf_count() as u64, "{name}");
            assert_eq!(verdict.nodes, d.node_count() as u64, "{name}");
            assert_eq!(verdict.tree.as_deref(), Some(sexpr.as_str()), "{name}");
        }
        (Err(d), Err(c)) => {
            // Dense vs compressed: same position and offending token.
            // The expected *set* may differ — default reductions land
            // the compressed driver in a different state before it
            // detects the error on the same lookahead.
            assert_eq!(d.offset, c.offset, "{name}: error position diverged");
            assert_eq!(
                d.found.as_ref().map(|t| t.text()),
                c.found.as_ref().map(|t| t.text()),
                "{name}"
            );
            assert!(!verdict.accepted, "{name}: service accepted a bad doc");
            let err = verdict.error.as_ref().expect("rejected verdict has error");
            assert_eq!(err.offset, d.offset as u64, "{name}: service offset");
            assert_eq!(err.expected, d.expected, "{name}: service expected set");
            assert_eq!(
                err.found.as_deref(),
                d.found.as_ref().map(|t| t.text()),
                "{name}"
            );
        }
        other => panic!("{name}: dense/compressed verdicts diverged: {other:?}"),
    }
}

#[test]
fn valid_sentences_parse_identically_on_all_three_lanes() {
    let service = Service::new(ServiceConfig::default());
    let mut checked = 0;
    for entry in lalr::corpus::all_entries() {
        let grammar = entry.grammar();
        let Some(table) = conflict_free_table(&grammar) else {
            continue;
        };
        let compressed = CompressedTable::from_dense(&table);
        let source = CompressedSource::new(&compressed, &table);
        let sentences = generate_many(&grammar, 0xD1FF, 24, 30);
        if sentences.is_empty() {
            continue;
        }
        let docs: Vec<String> = sentences.iter().map(|s| doc_for(s, &grammar)).collect();
        let verdicts = call_parse(&service, entry.source, &docs);
        assert_eq!(verdicts.len(), docs.len(), "{}: batch length", entry.name);
        for (sentence, verdict) in sentences.iter().zip(&verdicts) {
            check_document(entry.name, &grammar, &table, &source, sentence, verdict);
            assert!(
                verdict.accepted,
                "{}: generated sentence rejected: {verdict:?}",
                entry.name
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "too few conflict-free grammars: {checked}");
}

#[test]
fn mutated_sentences_decide_identically_on_all_three_lanes() {
    let service = Service::new(ServiceConfig::default());
    let mut rejected_somewhere = 0usize;
    for entry in lalr::corpus::all_entries() {
        let grammar = entry.grammar();
        let Some(table) = conflict_free_table(&grammar) else {
            continue;
        };
        let compressed = CompressedTable::from_dense(&table);
        let source = CompressedSource::new(&compressed, &table);
        let sentences = generate_many(&grammar, 0xD1FF, 12, 30);
        let pairs = mutate_many(&grammar, &sentences, 0xBAD5EED, 24);
        if pairs.is_empty() {
            continue;
        }
        let docs: Vec<String> = pairs.iter().map(|(_, m)| doc_for(m, &grammar)).collect();
        let verdicts = call_parse(&service, entry.source, &docs);
        for ((_, mutant), verdict) in pairs.iter().zip(&verdicts) {
            check_document(entry.name, &grammar, &table, &source, mutant, verdict);
            if !verdict.accepted {
                rejected_somewhere += 1;
            }
        }
    }
    // Mutation is not guaranteed to leave the language, but corpus-wide
    // it overwhelmingly does; a harness where nothing ever gets rejected
    // would be vacuous.
    assert!(
        rejected_somewhere >= 20,
        "mutation harness is vacuous: only {rejected_somewhere} rejections"
    );
}

#[test]
fn fingerprint_target_replays_the_batch_from_the_cache() {
    let service = Service::new(ServiceConfig::default());
    let entry = lalr::corpus::by_name("expr").expect("expr in corpus");
    let grammar = entry.grammar();
    let sentences = generate_many(&grammar, 0xFEED, 8, 30);
    let docs: Vec<String> = sentences.iter().map(|s| doc_for(s, &grammar)).collect();

    let by_text = match service.call(
        Request::Parse {
            target: ParseTarget::Text {
                grammar: entry.source.to_string(),
                format: GrammarFormat::Native,
            },
            documents: docs.clone(),
            recover: false,
            sync: Vec::new(),
        },
        None,
    ) {
        Response::Parse(summary) => summary,
        other => panic!("{other:?}"),
    };

    let fp = lalr_service::fingerprint::parse_fingerprint(&by_text.fingerprint)
        .expect("well-formed fingerprint");
    let by_fp = match service.call(
        Request::Parse {
            target: ParseTarget::Fingerprint(fp),
            documents: docs,
            recover: false,
            sync: Vec::new(),
        },
        None,
    ) {
        Response::Parse(summary) => summary,
        other => panic!("{other:?}"),
    };

    assert!(
        by_fp.cached,
        "fingerprint target is a cache hit by definition"
    );
    assert_eq!(by_fp.fingerprint, by_text.fingerprint);
    assert_eq!(
        by_fp.docs, by_text.docs,
        "verdicts must not depend on the target form"
    );

    let stats = service.stats();
    assert_eq!(stats.parse.batches, 2);
    assert_eq!(
        stats.parse.resolutions, 2,
        "exactly one artifact resolution per batch"
    );
    assert_eq!(stats.parse.documents, 2 * by_text.docs.len() as u64);
}
