//! The readiness-driven TCP daemon: epoll event-loop shards over the
//! service.
//!
//! Same wire protocol, limits, failpoints, and drain semantics as the
//! thread-per-connection [`crate::Daemon`], but connections multiplex
//! onto N event-loop shards (built on [`lalr_net`]'s edge-triggered
//! epoll wrapper) instead of each owning a blocked thread. Compute
//! still happens on the service's worker pool — a request is submitted
//! with [`Service::submit`] and its response comes back through a
//! per-shard completion queue plus an eventfd wake, so a shard thread
//! never blocks on a compile. Requests on one connection stay strictly
//! serialized (a pipelined second line waits for the first response),
//! which keeps responses byte-identical to the blocking front end.
//!
//! Shard 0 owns the listener and deals accepted connections round-robin
//! across shards; per-connection read timeouts ride a hashed timer
//! wheel; shutdown (in-band `shutdown` op or [`EventDaemon::stop`])
//! drains exactly like the blocking daemon — idle connections close at
//! once, busy ones get [`DaemonConfig::drain_deadline`] to finish, and
//! the summary reports drained versus aborted.
//!
//! # Self-healing and admission control
//!
//! Each shard's event loop runs inside a supervisor: a panic on the
//! shard thread (including the `shard.panic` failpoint) is caught with
//! `catch_unwind`, the incarnation's connections are closed as its
//! state unwinds (admission slots are released by RAII guards, so a
//! crash can never leak the connection gauge or a peer's quota), and
//! the shard is respawned with a fresh poller after a capped,
//! exponential backoff. The listener lives in shared state so a
//! respawned shard 0 re-registers it and keeps accepting. Restarts are
//! counted in [`crate::DaemonCounters`] and surface as
//! `lalr_shard_restarts_total` and in the shutdown summary.
//!
//! Admission control rejects overload *explicitly* instead of letting
//! it fester: a per-peer connection quota answers over-quota accepts
//! with a retryable `throttled` line; a token-bucket request rate limit
//! does the same per request line; and a slow-client write budget
//! closes connections that cannot drain their queued responses within
//! a deadline (write-side slowloris defense). Every rejection is
//! counted by reason in `lalr_admission_rejects_total`.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lalr_chaos::Fault;
use lalr_net::{
    Event, Interest, LineEvent, LineReader, Poller, TimerWheel, TokenBucket, Waker, WriteBuf,
};
use lalr_obs::ActiveTrace;
use rustc_hash::FxHashMap;

use crate::daemon::{DaemonConfig, DaemonSummary};
use crate::protocol::{request_from_value, response_to_line};
use crate::service::{Request, Response, Service, STAGE_WRITE};
use crate::telemetry::{DaemonCounters, ShardCounters};
use crate::ServiceError;

/// Reserved poller token for the shard's waker.
const TOKEN_WAKER: u64 = 0;
/// Reserved poller token for the listener (shard 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First connection token; also the smallest valid timer-wheel token.
const FIRST_CONN_TOKEN: u64 = 2;

/// Initial supervisor backoff after a shard panic.
const RESTART_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Backoff cap for a shard that keeps crashing.
const RESTART_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Poison-tolerant lock: a shard that panicked while holding a lock
/// must not cascade the failure into its supervisor or peer shards.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running event-loop daemon. API mirrors [`crate::Daemon`].
pub struct EventDaemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<ShardTotals>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct ShardTotals {
    drained: u64,
    aborted: u64,
}

/// Work handed to a shard from outside its thread: freshly accepted
/// connections (from shard 0's acceptor, with their admission guards)
/// and completed responses (from service workers). Paired with the
/// shard's waker. The inbox lives in [`Shared`], so work queued while
/// a crashed shard respawns is picked up by the next incarnation.
#[derive(Default)]
struct Inbox {
    conns: Vec<(TcpStream, PeerGuard)>,
    completions: Vec<(u64, Response)>,
}

struct Shared {
    service: Arc<Service>,
    /// Daemon-wide counters (shard restarts, admission rejects), shared
    /// with the service for the `health`/`stats` ops and metrics.
    daemon: Arc<DaemonCounters>,
    shutdown: AtomicBool,
    /// Open connections across all shards (the connection cap's gauge).
    active: AtomicUsize,
    /// Connections accepted, including admission rejections.
    connections: AtomicU64,
    wakers: Vec<Waker>,
    inboxes: Vec<Mutex<Inbox>>,
    /// Per-shard event-loop telemetry, shared with the service so the
    /// `stats` op and metrics exposition can render `lalr_shard_*`.
    counters: Vec<Arc<ShardCounters>>,
    /// The listening socket. Held here (not by shard 0's stack) so a
    /// respawned shard 0 can re-register it after a panic; taken and
    /// closed when drain begins.
    listener: Mutex<Option<TcpListener>>,
    /// Live connection count per source IP, for the per-peer quota.
    /// Only populated when [`DaemonConfig::max_connections_per_peer`]
    /// is non-zero.
    per_peer: Mutex<FxHashMap<IpAddr, usize>>,
    /// Token bucket for the global request rate limit; `None` when
    /// [`DaemonConfig::rate_limit_per_sec`] is 0.
    rate: Option<Mutex<TokenBucket>>,
    /// Per-shard next connection token. Lives here so tokens stay
    /// monotonic across shard incarnations — a completion in flight for
    /// a connection that died in a crash must never alias a connection
    /// accepted by the respawned shard.
    next_tokens: Vec<AtomicU64>,
    config: DaemonConfig,
}

impl Shared {
    /// Claims a per-peer quota slot; `false` means the peer is at its
    /// quota and the connection must be rejected.
    fn try_admit_peer(&self, ip: IpAddr, quota: usize) -> bool {
        let mut map = lock(&self.per_peer);
        let n = map.entry(ip).or_insert(0);
        if *n >= quota {
            false
        } else {
            *n += 1;
            true
        }
    }

    fn release_peer(&self, ip: IpAddr) {
        let mut map = lock(&self.per_peer);
        if let Some(n) = map.get_mut(&ip) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(&ip);
            }
        }
    }
}

/// RAII receipt for one admitted connection: releases the global
/// connection gauge and (when quotas are armed) the peer's quota slot
/// on drop. Connections own their guard, so the drop also runs when a
/// panicking shard's connection map unwinds — a crash can never leak
/// admission slots.
struct PeerGuard {
    shared: Arc<Shared>,
    peer: Option<IpAddr>,
}

impl Drop for PeerGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        if let Some(ip) = self.peer {
            self.shared.release_peer(ip);
        }
    }
}

impl EventDaemon {
    /// Binds the address and starts `shards` supervised event-loop
    /// threads (clamped to at least 1). Fails with `Unsupported` where
    /// the raw epoll shim has no backend (anything but x86-64 Linux).
    pub fn start(config: DaemonConfig, shards: usize) -> io::Result<EventDaemon> {
        if !lalr_net::supported() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "event-loop daemon requires the epoll backend (x86-64 Linux); \
                 use the threaded front end",
            ));
        }
        let shards = shards.max(1);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(Service::new(config.service.clone()));
        let counters: Vec<Arc<ShardCounters>> = (0..shards)
            .map(|_| Arc::new(ShardCounters::default()))
            .collect();
        service.register_shards(counters.clone());
        let daemon = Arc::new(DaemonCounters::with_quotas(
            config.max_connections_per_peer as u64,
            config.rate_limit_per_sec,
        ));
        service.register_daemon(Arc::clone(&daemon));
        let rate = (config.rate_limit_per_sec > 0).then(|| {
            let burst = if config.rate_limit_burst == 0 {
                config.rate_limit_per_sec
            } else {
                config.rate_limit_burst
            };
            Mutex::new(TokenBucket::new(
                config.rate_limit_per_sec,
                burst,
                Instant::now(),
            ))
        });
        let wakers = (0..shards)
            .map(|_| Waker::new())
            .collect::<io::Result<Vec<_>>>()?;
        let shared = Arc::new(Shared {
            service,
            daemon,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            wakers,
            inboxes: (0..shards).map(|_| Mutex::new(Inbox::default())).collect(),
            counters,
            listener: Mutex::new(Some(listener)),
            per_peer: Mutex::new(FxHashMap::default()),
            rate,
            next_tokens: (0..shards)
                .map(|_| AtomicU64::new(FIRST_CONN_TOKEN))
                .collect(),
            config,
        });
        let handles = (0..shards)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lalr-event-shard-{idx}"))
                    .spawn(move || Shard::run(idx, shards, shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(EventDaemon {
            addr,
            shared,
            handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown from outside the protocol. Idempotent; the
    /// in-band `shutdown` op does the same.
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.service.set_draining();
        for w in &self.shared.wakers {
            let _ = w.wake();
        }
    }

    /// Waits for every shard to finish draining and returns the
    /// summary (same shape as the threaded daemon's, plus supervisor
    /// restarts).
    pub fn join(self) -> DaemonSummary {
        let mut drained = 0;
        let mut aborted = 0;
        for h in self.handles {
            // The supervisor catches shard panics, so a join error
            // means the thread died outside its catch_unwind loop; its
            // totals are lost but the daemon still reports the rest.
            if let Ok(t) = h.join() {
                drained += t.drained;
                aborted += t.aborted;
            }
        }
        let requests = self.shared.service.stats().requests;
        self.shared.service.shutdown();
        DaemonSummary {
            connections: self.shared.connections.load(Ordering::Relaxed),
            requests,
            drained,
            aborted,
            restarts: self.shared.daemon.shard_restarts.load(Ordering::Relaxed),
        }
    }
}

/// One live connection's event-loop state.
struct Conn {
    stream: TcpStream,
    reader: LineReader,
    out: WriteBuf,
    /// Decoded lines not yet processed (pipelined requests queue here —
    /// one request executes at a time, like the blocking loop).
    pending: VecDeque<LineEvent>,
    /// A request is executing on the worker pool.
    busy: bool,
    /// The in-flight request is a `shutdown` op.
    in_flight_shutdown: bool,
    /// The `daemon.read` Truncate failpoint fired for the in-flight
    /// request: execute it but close without responding.
    suppress_response: bool,
    /// Write out everything queued, then close.
    close_after_flush: bool,
    /// An oversize line was answered; close once its remainder has been
    /// skipped and the error response flushed.
    oversize_close: bool,
    /// Currently registered for writable readiness too.
    wants_write: bool,
    /// A slow-client write deadline is armed on the write wheel.
    write_armed: bool,
    /// The in-flight request's flight-recorder trace, when sampled.
    /// One slot suffices: requests on a connection are strictly
    /// serialized.
    trace: Option<ConnTrace>,
    /// Admission receipt; dropping the connection releases its slots.
    _guard: PeerGuard,
}

/// A sampled request's trace as it rides a connection: the shared
/// accumulator, when the request line was parsed (the trace's epoch),
/// and — once the response is queued — when write-back began.
struct ConnTrace {
    active: Arc<ActiveTrace>,
    started: Instant,
    write_started: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, max_line: usize, guard: PeerGuard) -> Conn {
        Conn {
            stream,
            reader: LineReader::new(max_line),
            out: WriteBuf::new(),
            pending: VecDeque::new(),
            busy: false,
            in_flight_shutdown: false,
            suppress_response: false,
            close_after_flush: false,
            oversize_close: false,
            wants_write: false,
            write_armed: false,
            trace: None,
            _guard: guard,
        }
    }
}

struct Shard {
    idx: usize,
    shard_count: usize,
    shared: Arc<Shared>,
    poller: Poller,
    /// Read-side timers: per-connection idle timeouts.
    wheel: TimerWheel,
    /// Write-side timers: the slow-client write budget.
    write_wheel: TimerWheel,
    conns: FxHashMap<u64, Conn>,
    round_robin: usize,
    draining: Option<Instant>,
    totals: ShardTotals,
    counters: Arc<ShardCounters>,
}

impl Shard {
    /// The shard supervisor: runs incarnations of the event loop,
    /// catching panics (including the `shard.panic` failpoint) and
    /// respawning with capped exponential backoff. A panicking
    /// incarnation's connections are closed as its state unwinds; their
    /// admission guards release the connection gauge and peer quotas.
    fn run(idx: usize, shard_count: usize, shared: Arc<Shared>) -> ShardTotals {
        let mut totals = ShardTotals::default();
        let mut backoff = RESTART_BACKOFF_MIN;
        loop {
            let started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Shard::run_incarnation(idx, shard_count, &shared)
            }));
            match outcome {
                Ok(t) => {
                    // Clean exit (drained): the daemon is shutting down.
                    totals.drained += t.drained;
                    totals.aborted += t.aborted;
                    return totals;
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        // Crashed mid-drain: nothing left to supervise.
                        return totals;
                    }
                    shared.daemon.shard_restarts.fetch_add(1, Ordering::Relaxed);
                    // A long-lived incarnation earns a fresh backoff;
                    // a crash loop keeps doubling toward the cap.
                    if started.elapsed() > Duration::from_secs(1) {
                        backoff = RESTART_BACKOFF_MIN;
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(RESTART_BACKOFF_MAX);
                }
            }
        }
    }

    /// One incarnation of the shard: fresh poller and timer wheels,
    /// re-registered waker and (shard 0) listener, then the event loop
    /// until drain completes or a panic unwinds back to the supervisor.
    fn run_incarnation(idx: usize, shard_count: usize, shared: &Arc<Shared>) -> ShardTotals {
        let Ok(poller) = Poller::new() else {
            return ShardTotals::default();
        };
        if shared.wakers[idx].register(&poller, TOKEN_WAKER).is_err() {
            return ShardTotals::default();
        }
        if idx == 0 {
            let guard = lock(&shared.listener);
            if let Some(l) = guard.as_ref() {
                if poller
                    .register(l, TOKEN_LISTENER, Interest::READABLE)
                    .is_err()
                {
                    return ShardTotals::default();
                }
            }
        }
        let granularity = (shared.config.read_timeout / 8)
            .clamp(Duration::from_millis(5), Duration::from_secs(1));
        let wheel = TimerWheel::new(Instant::now(), 64, granularity);
        let budget = shared.config.write_budget;
        let write_granularity = if budget.is_zero() {
            granularity
        } else {
            (budget / 8).clamp(Duration::from_millis(1), Duration::from_secs(1))
        };
        let write_wheel = TimerWheel::new(Instant::now(), 64, write_granularity);
        let counters = Arc::clone(&shared.counters[idx]);
        // A fresh incarnation starts with zero live connections; the
        // previous one's orphans were closed as its state unwound.
        counters.connections.store(0, Ordering::Relaxed);
        let mut shard = Shard {
            idx,
            shard_count,
            shared: Arc::clone(shared),
            poller,
            wheel,
            write_wheel,
            conns: FxHashMap::default(),
            round_robin: 0,
            draining: None,
            totals: ShardTotals::default(),
            counters,
        };
        // Catch up on work queued while the slot was empty: the
        // eventfd edge and listener readiness may predate this poller.
        shard.drain_inbox();
        if shard.idx == 0 {
            shard.accept_burst();
        }
        shard.event_loop();
        shard.totals
    }

    fn event_loop(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut expired = Vec::new();
        loop {
            // Enter drain mode: stop accepting, close idle connections
            // immediately, give busy ones until the deadline.
            if self.draining.is_none() && self.shared.shutdown.load(Ordering::SeqCst) {
                self.draining = Some(Instant::now());
                if self.idx == 0 {
                    // Stop accepting for good: deregister and close the
                    // listening socket.
                    if let Some(l) = lock(&self.shared.listener).take() {
                        let _ = self.poller.deregister(&l);
                    }
                }
                let idle: Vec<u64> = self
                    .conns
                    .iter()
                    .filter(|(_, c)| !c.busy && c.out.is_empty())
                    .map(|(t, _)| *t)
                    .collect();
                for t in idle {
                    self.close(t);
                }
            }
            if let Some(started) = self.draining {
                if self.conns.is_empty() {
                    return;
                }
                if started.elapsed() >= self.shared.config.drain_deadline {
                    // Force-close stragglers still mid-request.
                    let stuck: Vec<u64> = self.conns.keys().copied().collect();
                    for t in stuck {
                        self.close_raw(t);
                        self.totals.aborted += 1;
                    }
                    return;
                }
            }
            let now = Instant::now();
            let mut timeout = self.wheel.next_timeout(now);
            if let Some(wt) = self.write_wheel.next_timeout(now) {
                timeout = Some(timeout.map_or(wt, |t| t.min(wt)));
            }
            if let Some(started) = self.draining {
                let left = self
                    .shared
                    .config
                    .drain_deadline
                    .saturating_sub(started.elapsed());
                timeout = Some(timeout.map_or(left, |t| t.min(left)));
            }
            events.clear();
            let wait_failed = self.poller.wait(&mut events, timeout).is_err();
            // Publish cumulative poll accounting (single writer per
            // shard; readers are the stats/metrics ops).
            let ps = self.poller.stats();
            self.counters.epoll_waits.store(ps.waits, Ordering::Relaxed);
            self.counters
                .epoll_wait_ns
                .store(ps.wait_ns, Ordering::Relaxed);
            self.counters.events.store(ps.events, Ordering::Relaxed);
            if wait_failed {
                continue;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKER => {
                        self.shared.wakers[self.idx].drain();
                        self.drain_inbox();
                    }
                    TOKEN_LISTENER => self.accept_burst(),
                    token => {
                        if ev.readable {
                            self.on_readable(token);
                        }
                        if ev.writable {
                            self.flush(token);
                        }
                    }
                }
            }
            expired.clear();
            self.wheel.advance(Instant::now(), &mut expired);
            for e in &expired {
                let Some(conn) = self.conns.get(&e.token) else {
                    continue;
                };
                self.counters.timer_fires.fetch_add(1, Ordering::Relaxed);
                if conn.busy {
                    // Never time out a request in flight; re-arm so the
                    // idle clock restarts after the response.
                    self.wheel
                        .arm(e.token, Instant::now() + self.shared.config.read_timeout);
                } else {
                    // Idle timeout: same as the blocking read timing out.
                    self.close(e.token);
                }
            }
            expired.clear();
            self.write_wheel.advance(Instant::now(), &mut expired);
            for e in &expired {
                let Some(conn) = self.conns.get(&e.token) else {
                    continue;
                };
                if conn.out.is_empty() {
                    // Drained after the deadline armed; lazy cancel.
                    continue;
                }
                // Slow-client budget blown: the peer is not draining
                // its responses — cut it loose rather than let queued
                // bytes pin memory indefinitely.
                self.counters.timer_fires.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .daemon
                    .rejects_slow_client
                    .fetch_add(1, Ordering::Relaxed);
                if self.draining.is_some() {
                    self.close_raw(e.token);
                    self.totals.aborted += 1;
                } else {
                    self.close(e.token);
                }
            }
        }
    }

    /// Accepts until the listener would block (shard 0 only), applying
    /// the connection cap and per-peer quota, then dealing admitted
    /// connections round-robin across shards.
    fn accept_burst(&mut self) {
        loop {
            let accepted = {
                let guard = lock(&self.shared.listener);
                let Some(l) = guard.as_ref() else { return };
                match l.accept() {
                    Ok(pair) => pair,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    // Transient accept failures (ECONNABORTED, EMFILE…):
                    // stop the burst; the next readable edge retries.
                    Err(_) => return,
                }
            };
            let (stream, peer) = accepted;
            self.shared.connections.fetch_add(1, Ordering::Relaxed);
            if self.shared.active.load(Ordering::SeqCst) >= self.shared.config.max_connections {
                self.shared
                    .daemon
                    .rejects_conn_cap
                    .fetch_add(1, Ordering::Relaxed);
                reject_conn(
                    stream,
                    ServiceError::Unavailable("connection limit reached".to_string()),
                    self.shared.config.reject_write_timeout,
                );
                continue;
            }
            let quota = self.shared.config.max_connections_per_peer;
            let peer_ip = (quota > 0).then(|| peer.ip());
            if let Some(ip) = peer_ip {
                if !self.shared.try_admit_peer(ip, quota) {
                    self.shared
                        .daemon
                        .rejects_peer_quota
                        .fetch_add(1, Ordering::Relaxed);
                    reject_conn(
                        stream,
                        ServiceError::Throttled(format!(
                            "per-peer connection quota ({quota}) exceeded; retry after backoff"
                        )),
                        self.shared.config.reject_write_timeout,
                    );
                    continue;
                }
            }
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            let guard = PeerGuard {
                shared: Arc::clone(&self.shared),
                peer: peer_ip,
            };
            let target = self.round_robin % self.shard_count;
            self.round_robin += 1;
            if target == self.idx {
                self.install(stream, guard);
            } else {
                lock(&self.shared.inboxes[target])
                    .conns
                    .push((stream, guard));
                let _ = self.shared.wakers[target].wake();
            }
        }
    }

    fn drain_inbox(&mut self) {
        let (new_conns, completions) = {
            let mut inbox = lock(&self.shared.inboxes[self.idx]);
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
            )
        };
        self.counters.inbox_items.fetch_add(
            (new_conns.len() + completions.len()) as u64,
            Ordering::Relaxed,
        );
        for (stream, guard) in new_conns {
            self.install(stream, guard);
        }
        for (token, response) in completions {
            self.on_completion(token, response);
        }
    }

    fn install(&mut self, stream: TcpStream, guard: PeerGuard) {
        // Early-return paths drop `guard`, releasing admission slots.
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Tokens come from shared state so they stay monotonic across
        // incarnations (a stale completion must never alias a new conn).
        let token = self.shared.next_tokens[self.idx].fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .register(&stream, token, Interest::READABLE)
            .is_err()
        {
            return;
        }
        self.wheel
            .arm(token, Instant::now() + self.shared.config.read_timeout);
        self.conns.insert(
            token,
            Conn::new(stream, self.shared.config.max_line_bytes, guard),
        );
        self.counters.accepts.fetch_add(1, Ordering::Relaxed);
        self.counters.connections.fetch_add(1, Ordering::Relaxed);
        if self.draining.is_some() {
            // Accepted just before shutdown: close like any idle conn.
            self.close(token);
        } else {
            // Bytes may have arrived before registration; ET only
            // reports future edges, so poll the socket once by hand.
            self.on_readable(token);
        }
    }

    fn on_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if self.draining.is_none() {
            self.wheel
                .arm(token, Instant::now() + self.shared.config.read_timeout);
        }
        match conn.reader.fill(&mut &conn.stream) {
            Ok(events) => conn.pending.extend(events),
            Err(_) => {
                self.close(token);
                return;
            }
        }
        self.pump(token);
        self.maybe_finish(token);
    }

    /// Processes queued lines until a request goes in flight, the
    /// connection turns terminal, or the queue runs dry. Mirrors the
    /// blocking serve loop one line at a time.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || conn.close_after_flush || conn.oversize_close {
                return;
            }
            if self.draining.is_some() {
                // A draining daemon stops reading between requests.
                if conn.out.is_empty() {
                    self.close(token);
                }
                return;
            }
            let Some(item) = conn.pending.pop_front() else {
                if conn.reader.at_eof() {
                    if conn.out.is_empty() {
                        self.close(token);
                    } else {
                        conn.close_after_flush = true;
                    }
                }
                return;
            };
            match item {
                // The blocking loop's read_line fails on invalid UTF-8
                // and drops the connection without a response.
                LineEvent::InvalidUtf8 => {
                    self.close(token);
                    return;
                }
                LineEvent::Oversize => {
                    let limit = self.shared.config.max_line_bytes;
                    let ok = self.queue_response(
                        token,
                        &Response::Error(ServiceError::TooLarge {
                            size: limit + 1,
                            limit,
                        }),
                    );
                    if let Some(conn) = self.conns.get_mut(&token) {
                        // Close, but only after the remainder of the
                        // oversized line has been read past (closing
                        // with unread bytes queued sends an RST that
                        // can tear the error response away).
                        if ok {
                            conn.oversize_close = true;
                        } else {
                            conn.close_after_flush = true;
                        }
                    }
                    self.flush(token);
                    return;
                }
                LineEvent::Line(mut line) => {
                    let mut suppress = false;
                    // The read-side failpoint, applied to a complete
                    // request line as if the transport had failed
                    // underneath it.
                    match self.shared.config.faults.at("daemon.read") {
                        Some(Fault::Error) => {
                            self.close(token);
                            return;
                        }
                        Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                        Some(Fault::Garbage) => {
                            line = format!("\u{1b}corrupt\u{0000}{line}");
                        }
                        Some(Fault::Truncate) => suppress = true,
                        _ => {}
                    }
                    if line.trim().is_empty() {
                        continue;
                    }
                    // Admission control, per complete request line and
                    // before parsing: over-rate lines get a fast
                    // retryable `throttled` rejection, never a silent
                    // drop.
                    if let Some(bucket) = &self.shared.rate {
                        let admitted = lock(bucket).try_take(Instant::now());
                        if !admitted {
                            self.shared
                                .daemon
                                .rejects_rate_limit
                                .fetch_add(1, Ordering::Relaxed);
                            let rate = self.shared.config.rate_limit_per_sec;
                            let ok = self.queue_response(
                                token,
                                &Response::Error(ServiceError::Throttled(format!(
                                    "request rate limit ({rate}/s) exceeded; retry after backoff"
                                ))),
                            );
                            self.flush(token);
                            if !ok {
                                return;
                            }
                            continue;
                        }
                    }
                    // The admission failpoint: a deterministic stand-in
                    // for quota pressure under chaos schedules.
                    match self.shared.config.faults.at("daemon.admit") {
                        Some(Fault::Error) => {
                            self.shared
                                .daemon
                                .rejects_failpoint
                                .fetch_add(1, Ordering::Relaxed);
                            let ok = self.queue_response(
                                token,
                                &Response::Error(ServiceError::Throttled(
                                    "injected fault at daemon.admit".to_string(),
                                )),
                            );
                            self.flush(token);
                            if !ok {
                                return;
                            }
                            continue;
                        }
                        Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                        _ => {}
                    }
                    if let Some(Fault::Panic) = self.shared.config.faults.at("shard.panic") {
                        // The supervisor catches this, the incarnation's
                        // connections close as its state unwinds, and
                        // the shard respawns with backoff.
                        panic!("injected fault at shard.panic");
                    }
                    let parsed = serde_json::from_str(line.trim_end())
                        .map_err(|e| ServiceError::BadRequest(e.to_string()))
                        .and_then(|v| request_from_value(&v));
                    let (request, deadline) = match parsed {
                        Ok(p) => p,
                        Err(e) => {
                            let ok = self.queue_response(token, &Response::Error(e));
                            self.flush(token);
                            if !ok {
                                return;
                            }
                            continue;
                        }
                    };
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    conn.busy = true;
                    conn.in_flight_shutdown = matches!(request, Request::Shutdown);
                    conn.suppress_response = suppress;
                    let trace = self
                        .shared
                        .service
                        .begin_trace(request.op(), self.idx as u16);
                    conn.trace = trace.as_ref().map(|t| ConnTrace {
                        active: Arc::clone(t),
                        started: Instant::now(),
                        write_started: None,
                    });
                    let shared = Arc::clone(&self.shared);
                    let shard = self.idx;
                    self.shared
                        .service
                        .submit_traced(request, deadline, trace, move |response| {
                            lock(&shared.inboxes[shard])
                                .completions
                                .push((token, response));
                            let _ = shared.wakers[shard].wake();
                        });
                    return;
                }
            }
        }
    }

    fn on_completion(&mut self, token: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            // The connection died while its request executed (close,
            // timeout, or a shard crash); the response has nowhere to
            // go (same as the blocking daemon failing its write).
            return;
        };
        conn.busy = false;
        let is_shutdown = std::mem::take(&mut conn.in_flight_shutdown);
        let suppressed = std::mem::take(&mut conn.suppress_response);
        if let Some(tr) = conn.trace.as_mut() {
            if !response.is_ok() {
                tr.active.set_error();
            }
            // Write-back starts now: the response is about to be queued
            // (or dropped); `flush` stamps the stage when the buffer
            // drains.
            tr.write_started = Some(Instant::now());
        }
        if suppressed {
            // Injected truncation: the request executed but the client
            // never hears back — it must treat the silence as retryable.
            if is_shutdown {
                self.trigger_shutdown();
            }
            self.close(token);
            return;
        }
        let ok = self.queue_response(token, &response);
        if is_shutdown {
            self.trigger_shutdown();
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
        } else if !ok {
            // Write-side fault: whatever was already queued flushes,
            // then the connection closes (handled by close_after_flush
            // set inside queue_response).
        }
        self.flush(token);
        if !is_shutdown && ok {
            self.pump(token);
            self.maybe_finish(token);
        }
    }

    /// Serializes and queues one response line, applying the
    /// `daemon.write` failpoint exactly like the blocking `respond`.
    /// Returns `false` when the fault consumed or cut the response (the
    /// connection is then marked to close after flushing).
    fn queue_response(&mut self, token: u64, response: &Response) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let line = response_to_line(response);
        match self.shared.config.faults.at("daemon.write") {
            Some(Fault::Error) => {
                // Response eaten whole.
                conn.close_after_flush = true;
                return false;
            }
            Some(Fault::PartialWrite) => {
                // Half the bytes, no newline: the client sees a line
                // cut mid-way and must report a distinct `closed` error.
                let bytes = line.as_bytes();
                conn.out.queue(&bytes[..bytes.len() / 2]);
                conn.close_after_flush = true;
                return false;
            }
            Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
        conn.out.queue(line.as_bytes());
        conn.out.queue(b"\n");
        true
    }

    /// Flushes as far as the socket allows, maintaining writable
    /// interest, the slow-client write budget, and terminal-close
    /// states.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.out.flush(&mut &conn.stream) {
            Ok(true) => {
                // The response (if one was in flight) is fully on the
                // wire: stamp the write stage and file the trace.
                if let Some(tr) = conn.trace.take_if(|t| t.write_started.is_some()) {
                    let ws = tr.write_started.expect("checked by take_if");
                    tr.active
                        .add_stage(STAGE_WRITE, ws.elapsed().as_nanos() as u64);
                    self.shared
                        .service
                        .finish_trace(&tr.active, tr.started.elapsed());
                }
                if conn.wants_write {
                    conn.wants_write = false;
                    let _ = self
                        .poller
                        .reregister(&conn.stream, token, Interest::READABLE);
                }
                if conn.write_armed {
                    conn.write_armed = false;
                    self.write_wheel.cancel(token);
                }
                self.maybe_finish(token);
            }
            Ok(false) => {
                if !conn.wants_write {
                    conn.wants_write = true;
                    let _ = self.poller.reregister(&conn.stream, token, Interest::BOTH);
                }
                // Start the slow-client clock when bytes first stall;
                // re-arming on every partial flush would let a
                // byte-at-a-time reader extend the budget forever.
                let budget = self.shared.config.write_budget;
                if !budget.is_zero() && !conn.write_armed {
                    conn.write_armed = true;
                    self.write_wheel.arm(token, Instant::now() + budget);
                }
            }
            Err(_) => self.close(token),
        }
    }

    /// Closes a connection whose terminal condition has been reached:
    /// everything flushed and either marked close-after-flush, done
    /// skipping an oversize line, or at EOF with nothing left to do.
    fn maybe_finish(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if !conn.out.is_empty() {
            return;
        }
        let skipped_oversize = conn.oversize_close && !conn.reader.is_skipping();
        let idle_at_eof = conn.reader.at_eof() && !conn.busy && conn.pending.is_empty();
        if conn.close_after_flush || skipped_oversize || idle_at_eof {
            self.close(token);
        }
    }

    fn trigger_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.service.set_draining();
        for w in &self.shared.wakers {
            let _ = w.wake();
        }
    }

    /// Removes a connection; during drain this counts it as cleanly
    /// drained (force-closes at the deadline use [`Shard::close_raw`]
    /// and count as aborted).
    fn close(&mut self, token: u64) {
        self.close_raw(token);
        if self.draining.is_some() {
            self.totals.drained += 1;
        }
    }

    fn close_raw(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.wheel.cancel(token);
            self.write_wheel.cancel(token);
            let _ = self.poller.deregister(&conn.stream);
            self.counters.connections.fetch_sub(1, Ordering::Relaxed);
            // A trace orphaned by the close still gets recorded: stamp
            // whatever write time accrued and finish at the close.
            if let Some(tr) = conn.trace {
                if let Some(ws) = tr.write_started {
                    tr.active
                        .add_stage(STAGE_WRITE, ws.elapsed().as_nanos() as u64);
                }
                self.shared
                    .service
                    .finish_trace(&tr.active, tr.started.elapsed());
            }
            // `conn` (and its PeerGuard) drops here, releasing the
            // connection gauge and the peer's quota slot.
        }
    }
}

/// Writes one admission-rejection line and drops the connection. The
/// bounded write timeout keeps a hostile peer from stalling the accept
/// path.
fn reject_conn(mut stream: TcpStream, error: ServiceError, write_timeout: Duration) {
    let line = response_to_line(&Response::Error(error));
    if !write_timeout.is_zero() {
        let _ = stream.set_write_timeout(Some(write_timeout));
    }
    let _ = writeln!(stream, "{line}");
}
