//! A step-by-step walkthrough of the DeRemer–Pennello computation on the
//! classic LALR-but-not-SLR grammar, printing every intermediate object
//! the paper defines: nonterminal transitions, DR, reads, includes,
//! lookback, Read, Follow, and finally LA.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use lalr::automata::NtTransId;
use lalr::core::Relations;
use lalr::grammar::Terminal;
use lalr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // S → L = R | R ;  L → * R | id ;  R → L
    let grammar = parse_grammar("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;")?;
    println!("grammar (augmented):\n{grammar}");

    let lr0 = Lr0Automaton::build(&grammar);
    println!("LR(0) machine: {} states\n", lr0.state_count());

    let rel = Relations::build(&grammar, &lr0);
    let names = |set: lalr::bitset::BitSetRef<'_>| -> String {
        let v: Vec<&str> = set
            .iter()
            .map(|t| grammar.terminal_name(Terminal::new(t)))
            .collect();
        format!("{{{}}}", v.join(", "))
    };
    let trans_name = |id: NtTransId| {
        let t = lr0.nt_transition(id);
        format!("({}, {})", t.from.index(), grammar.nonterminal_name(t.nt))
    };

    println!("nonterminal transitions and their DR sets:");
    for (i, _) in lr0.nt_transitions().iter().enumerate() {
        let id = NtTransId::new(i);
        println!("  {:<10} DR = {}", trans_name(id), names(rel.dr().row(i)));
    }

    println!("\nreads edges:");
    for (u, v) in rel.reads().edges() {
        println!(
            "  {} reads {}",
            trans_name(NtTransId::new(u)),
            trans_name(NtTransId::new(v))
        );
    }
    if rel.reads().edge_count() == 0 {
        println!("  (none — no nullable nonterminals here)");
    }

    println!("\nincludes edges:");
    for (u, v) in rel.includes().edges() {
        println!(
            "  {} includes {}",
            trans_name(NtTransId::new(u)),
            trans_name(NtTransId::new(v))
        );
    }

    println!("\nlookback:");
    let mut entries: Vec<_> = rel
        .lookback_entries()
        .map(|(rid, ts)| (rel.reduction_index().point(rid), ts))
        .collect();
    entries.sort_by_key(|&((s, p), _)| (s, p));
    for ((state, prod), ts) in entries {
        let targets: Vec<String> = ts.iter().map(|&t| trans_name(t)).collect();
        println!(
            "  ({}, {}) lookback {}",
            state.index(),
            grammar.production_to_string(prod),
            targets.join(", ")
        );
    }

    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    println!("\nRead and Follow sets (after the two Digraph passes):");
    for (i, _) in lr0.nt_transitions().iter().enumerate() {
        let id = NtTransId::new(i);
        println!(
            "  {:<10} Read = {:<14} Follow = {}",
            trans_name(id),
            names(analysis.read_set(id).as_ref_set()),
            names(analysis.follow_set(id).as_ref_set())
        );
    }

    println!("\nLA sets:");
    let mut la: Vec<_> = analysis.lookaheads().iter().collect();
    la.sort_by_key(|&((s, p), _)| (s, p));
    for ((state, prod), set) in la {
        println!(
            "  LA({}, {}) = {}",
            state.index(),
            grammar.production_to_string(prod),
            names(set)
        );
    }

    println!(
        "\nThe payoff: in the state reached on `l`, LA(r -> l) = {{$}} — not\n\
         FOLLOW(r) = {{$, =}} as SLR would use — so the = shift does not\n\
         conflict and the grammar is LALR(1) though not SLR(1)."
    );
    Ok(())
}
