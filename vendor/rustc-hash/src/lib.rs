//! Vendored offline shim for the subset of `rustc-hash` this workspace uses.
//!
//! The build environment has no network access, so the real `rustc-hash`
//! crate cannot be downloaded. This shim implements the classic `FxHasher`
//! (the multiply-and-rotate hash used by the Rust compiler's interners):
//! a fast, deterministic, non-cryptographic hasher. The hot-path maps that
//! must remain maps (LR(0)/LR(1) state interning, merge-by-core) use it
//! instead of `std`'s SipHash, which is DoS-resistant but several times
//! slower on short keys — the DoS resistance buys nothing when hashing
//! grammar-derived item sets.
//!
//! Determinism is a feature here: unlike `RandomState`, `FxHasher` has no
//! per-process seed, so iteration-order-sensitive bugs reproduce exactly
//! across runs (the workspace still never relies on map iteration order
//! for results).

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault<FxHasher>`, the build-hasher for the Fx maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Rust compiler's multiply-and-rotate hasher.
///
/// Each word is folded in as `hash = (hash.rotate_left(5) ^ word) * SEED`
/// where `SEED` is a 64-bit odd constant with good bit dispersion.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(head.try_into().expect("8 bytes")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (head, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                head.try_into().expect("4 bytes"),
            )));
            bytes = rest;
        }
        if bytes.len() >= 2 {
            let (head, rest) = bytes.split_at(2);
            self.add_to_hash(u64::from(u16::from_le_bytes(
                head.try_into().expect("2 bytes"),
            )));
            bytes = rest;
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of(v: impl Hash) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of((3u32, 17u32)), hash_of((3u32, 17u32)));
        assert_eq!(hash_of("kernel"), hash_of("kernel"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 4]));
    }

    #[test]
    fn byte_slices_of_every_tail_length_hash() {
        // Exercise the 8/4/2/1-byte folding tails. Starts at 1: a single
        // zero byte is a fixed point of the fold (as in real `FxHasher`),
        // so a leading 0 would collide with the empty input by design.
        let data: Vec<u8> = (1u8..24).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            let mut h = FxHasher::default();
            h.write(&data[..len]);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), data.len());
    }

    #[test]
    fn fx_map_works_as_a_map() {
        let mut m: FxHashMap<(u32, u32), &str> = FxHashMap::default();
        m.insert((0, 1), "a");
        m.insert((1, 0), "b");
        assert_eq!(m.get(&(0, 1)), Some(&"a"));
        assert_eq!(m.get(&(1, 0)), Some(&"b"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
