//! The [`BitSetRef`] borrowed bit-set view.

use std::fmt;
use std::ops::BitAnd;

use crate::kernels::{self, RowLayout};
use crate::{words_for, BitSet, BITS};

/// A borrowed, read-only view of a bit set: a word slice plus a universe
/// size.
///
/// Both a [`BitSet`] and a [`crate::BitMatrix`] row store exactly
/// `words_for(len)` words, so either can be viewed as a `BitSetRef`
/// without copying (see [`BitSet::as_ref_set`] and
/// [`crate::BitMatrix::row`]). This is what lets look-ahead queries hand
/// out matrix rows with zero allocation.
///
/// # Examples
///
/// ```
/// use lalr_bitset::{BitMatrix, BitSet};
///
/// let mut m = BitMatrix::new(2, 100);
/// m.set(1, 42);
/// let row = m.row(1);
/// assert!(row.contains(42));
/// assert_eq!(row.iter().collect::<Vec<_>>(), vec![42]);
///
/// let s = BitSet::from_indices(100, [42]);
/// assert_eq!(row, s.as_ref_set());
/// ```
#[derive(Clone, Copy)]
pub struct BitSetRef<'a> {
    words: &'a [usize],
    /// Universe size in bits.
    len: usize,
}

impl<'a> BitSetRef<'a> {
    /// Wraps a word slice as a set over `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` is not exactly `words_for(len)`.
    pub(crate) fn from_words(words: &'a [usize], len: usize) -> Self {
        debug_assert_eq!(
            words.len(),
            words_for(len),
            "word slice must hold exactly words_for(len) words"
        );
        BitSetRef { words, len }
    }

    /// The universe size (not the number of set bits; see
    /// [`BitSetRef::count`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        kernels::popcount(self.words)
    }

    /// The [`RowLayout`] this view's words dispatch under.
    #[inline]
    pub fn layout(&self) -> RowLayout {
        RowLayout::select(self.len)
    }

    /// Tests membership. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        let (w, b) = (idx / BITS, idx % BITS);
        self.words[w] & (1usize << b) != 0
    }

    /// Iterates over the set bits in increasing order.
    pub fn iter(&self) -> RefIter<'a> {
        RefIter {
            words: self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The underlying words, least-significant bit first.
    ///
    /// Feed these to [`crate::BitMatrix::union_row_with_words`] for
    /// allocation-free bulk unions.
    pub fn as_words(&self) -> &'a [usize] {
        self.words
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset(&self, other: BitSetRef<'_>) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        kernels::is_subset(self.words, other.words)
    }

    /// Returns `true` if the sets share no element.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_disjoint(&self, other: BitSetRef<'_>) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        kernels::is_disjoint(self.words, other.words)
    }

    /// Copies the view into an owned [`BitSet`].
    pub fn to_bitset(&self) -> BitSet {
        BitSet::from_words(self.words.to_vec(), self.len)
    }
}

impl PartialEq for BitSetRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Eq for BitSetRef<'_> {}

impl PartialEq<BitSet> for BitSetRef<'_> {
    fn eq(&self, other: &BitSet) -> bool {
        self.len == other.len() && self.words == other.as_words()
    }
}

impl PartialEq<BitSetRef<'_>> for BitSet {
    fn eq(&self, other: &BitSetRef<'_>) -> bool {
        other == self
    }
}

impl fmt::Debug for BitSetRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// `BitSetRef & BitSetRef` allocates the owned intersection.
impl BitAnd for BitSetRef<'_> {
    type Output = BitSet;

    fn bitand(self, rhs: BitSetRef<'_>) -> BitSet {
        assert_eq!(self.len, rhs.len, "universe mismatch");
        let words = self
            .words
            .iter()
            .zip(rhs.words)
            .map(|(&a, &b)| a & b)
            .collect();
        BitSet::from_words(words, self.len)
    }
}

/// Iterator over set bits; see [`BitSetRef::iter`].
#[derive(Debug, Clone)]
pub struct RefIter<'a> {
    words: &'a [usize],
    word_idx: usize,
    current: usize,
}

impl Iterator for RefIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + bit);
            }
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
    }
}

impl<'a> IntoIterator for BitSetRef<'a> {
    type Item = usize;
    type IntoIter = RefIter<'a>;

    fn into_iter(self) -> RefIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &BitSetRef<'a> {
    type Item = usize;
    type IntoIter = RefIter<'a>;

    fn into_iter(self) -> RefIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use crate::{BitMatrix, BitSet};

    #[test]
    fn view_of_bitset_matches_owner() {
        let s = BitSet::from_indices(130, [0, 64, 129]);
        let r = s.as_ref_set();
        assert_eq!(r.len(), 130);
        assert_eq!(r.count(), 3);
        assert!(r.contains(64));
        assert!(!r.contains(1));
        assert!(!r.contains(500));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(r.first(), Some(0));
        assert_eq!(r, s);
        assert_eq!(s, r);
        assert_eq!(r.to_bitset(), s);
    }

    #[test]
    fn matrix_row_view_is_zero_copy_equal_to_row_to_bitset() {
        let mut m = BitMatrix::new(3, 90);
        m.set(1, 2);
        m.set(1, 89);
        assert_eq!(m.row(1), m.row_to_bitset(1));
        assert!(m.row(0).is_empty());
        assert_eq!(m.row(1).iter().collect::<Vec<_>>(), vec![2, 89]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_indices(70, [3, 69]);
        let b = BitSet::from_indices(70, [3, 10, 69]);
        let c = BitSet::from_indices(70, [5]);
        assert!(a.as_ref_set().is_subset(b.as_ref_set()));
        assert!(!b.as_ref_set().is_subset(a.as_ref_set()));
        assert!(a.as_ref_set().is_disjoint(c.as_ref_set()));
        assert!(!a.as_ref_set().is_disjoint(b.as_ref_set()));
    }

    #[test]
    fn bitand_yields_owned_intersection() {
        let a = BitSet::from_indices(100, [1, 50, 99]);
        let b = BitSet::from_indices(100, [50, 99]);
        let both = a.as_ref_set() & b.as_ref_set();
        assert_eq!(both.iter().collect::<Vec<_>>(), vec![50, 99]);
        assert_eq!(both.len(), 100);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn subset_checks_universe() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        let _ = a.as_ref_set().is_subset(b.as_ref_set());
    }

    #[test]
    fn empty_universe_view() {
        let s = BitSet::new(0);
        let r = s.as_ref_set();
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }
}
