//! Vendored offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be downloaded. This shim reimplements the
//! handful of APIs the workspace needs — `StdRng`, `SeedableRng`, and the
//! `Rng` extension methods `gen_range`/`gen_bool` — on top of the
//! SplitMix64/xoshiro256** generators. The stream differs from upstream
//! `rand`, but every consumer in this workspace only relies on *seeded
//! determinism*, not on a specific stream.

#![forbid(unsafe_code)]

/// Core generator interface: a source of `u64` words.
pub trait RngCore {
    /// Next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sub-range sample target (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Convenience extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        // 53 uniform mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256** core). Stands in for
    /// `rand::rngs::StdRng`; the stream is different but just as uniform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 60)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 60)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 60)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
