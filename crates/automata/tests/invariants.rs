//! Structural invariants of the LR automata, checked on the corpus and on
//! random grammars.

use lalr_automata::{Lr0Automaton, Lr1Automaton, StateId};
use lalr_corpus::synthetic::{random, RandomConfig};
use lalr_grammar::{Grammar, ProdId, Symbol};
use proptest::prelude::*;

fn grammars_under_test() -> Vec<(String, Grammar)> {
    lalr_corpus::all_entries()
        .into_iter()
        .map(|e| (e.name.to_string(), e.grammar()))
        .collect()
}

/// Every viable prefix (path from the start state) ends in a state whose
/// kernel items all have their marked prefix consistent with the path —
/// spot-checked via production-body walks.
#[test]
fn production_bodies_are_walkable_from_their_lhs_transitions() {
    for (name, g) in grammars_under_test() {
        let lr0 = Lr0Automaton::build(&g);
        for t in lr0.nt_transitions() {
            for &pid in g.productions_of(t.nt) {
                let q = lr0
                    .walk(t.from, g.production(pid).rhs())
                    .unwrap_or_else(|| panic!("{name}: body of {} not walkable", pid.index()));
                assert!(
                    lr0.reductions(q).contains(&pid),
                    "{name}: walked body must end in a reducing state"
                );
            }
        }
    }
}

#[test]
fn kernels_are_nonempty_and_kernel_items_have_dot_gt_zero() {
    for (name, g) in grammars_under_test() {
        let lr0 = Lr0Automaton::build(&g);
        for s in lr0.states() {
            let kernel = lr0.kernel(s);
            assert!(!kernel.is_empty(), "{name}: state {} empty", s.index());
            if s != StateId::START {
                for item in kernel.items() {
                    assert!(
                        item.dot() > 0 || g.production(item.production()).is_empty(),
                        "{name}: non-start kernels hold advanced items"
                    );
                }
            }
        }
    }
}

#[test]
fn closures_contain_kernels_and_are_closed() {
    for (name, g) in grammars_under_test() {
        let lr0 = Lr0Automaton::build(&g);
        for s in lr0.states() {
            let kernel = lr0.kernel(s);
            let closure = lr0.closure(&g, s);
            for item in kernel {
                assert!(closure.contains(item), "{name}: kernel ⊆ closure");
            }
            // Closed: every ·B item pulls in all B-productions.
            for item in &closure {
                if let Some(Symbol::NonTerminal(b)) = item.next_symbol(&g) {
                    for &pid in g.productions_of(b) {
                        assert!(
                            closure.contains(lalr_automata::Item::start_of(pid)),
                            "{name}: closure is transitively closed"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn lr1_cores_project_onto_lr0_states() {
    for (name, g) in grammars_under_test() {
        // The canonical LR(1) machine, merged by core, must have exactly
        // the LR(0) states (the classic theorem behind LALR).
        let lr0 = Lr0Automaton::build(&g);
        let lr1 = Lr1Automaton::build(&g);
        let mut cores: Vec<_> = lr1.states().map(|s| lr1.state(s).core()).collect();
        cores.sort_by(|a, b| a.items().cmp(b.items()));
        cores.dedup();
        assert_eq!(cores.len(), lr0.state_count(), "{name}");
    }
}

#[test]
fn lr1_transitions_commute_with_core_projection() {
    for (name, g) in grammars_under_test() {
        if g.production_count() > 140 {
            continue; // keep the quadratic check cheap
        }
        let lr0 = Lr0Automaton::build(&g);
        let lr1 = Lr1Automaton::build(&g);
        let core_to_lr0 = |s1| {
            let core = lr1.state(s1).core();
            lr0.states()
                .find(|&s0| *lr0.kernel(s0) == core)
                .expect("core exists in LR(0)")
        };
        for s1 in lr1.states() {
            let s0 = core_to_lr0(s1);
            for &(sym, t1) in lr1.transitions(s1) {
                let t0 = lr0.transition(s0, sym).expect("projection preserves edges");
                assert_eq!(core_to_lr0(t1), t0, "{name}: GOTO commutes");
            }
        }
    }
}

/// The no-clone interning guarantee of the dense-index overhaul: building
/// the LR(0) machine must never clone an `ItemSet` — kernels are stored
/// once in the state table and interned by hash + slice comparison.
#[test]
fn lr0_build_performs_zero_kernel_clones() {
    for (name, g) in grammars_under_test() {
        let before = lalr_automata::item_set_clone_count();
        let lr0 = Lr0Automaton::build(&g);
        let after = lalr_automata::item_set_clone_count();
        assert_eq!(
            after - before,
            0,
            "{name}: Lr0Automaton::build cloned an ItemSet"
        );
        assert!(lr0.state_count() > 0);
    }
}

#[test]
fn nt_transition_id_misses_cleanly() {
    for (name, g) in grammars_under_test() {
        let lr0 = Lr0Automaton::build(&g);
        for s in lr0.states() {
            let here: Vec<_> = lr0
                .transitions(s)
                .iter()
                .filter_map(|&(sym, _)| sym.nonterminal())
                .collect();
            for nt in g.nonterminals() {
                let id = lr0.nt_transition_id(s, nt);
                assert_eq!(
                    id.is_some(),
                    here.contains(&nt),
                    "{name}: state {}",
                    s.index()
                );
            }
        }
    }
}

#[test]
fn start_production_reachable_to_accept() {
    for (name, g) in grammars_under_test() {
        let lr0 = Lr0Automaton::build(&g);
        let acc = lr0.accept_state(&g);
        assert!(
            lr0.reductions(acc).contains(&ProdId::START),
            "{name}: accept state holds the start reduction"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_grammar_automaton_invariants(seed in 0u64..2000) {
        let g = random(seed, RandomConfig::default());
        let lr0 = Lr0Automaton::build(&g);
        // Transition targets in range; accessing symbols consistent.
        for s in lr0.states() {
            for &(sym, to) in lr0.transitions(s) {
                prop_assert!(to.index() < lr0.state_count());
                prop_assert_eq!(lr0.accessing_symbol(to), Some(sym));
            }
        }
        // Nonterminal transition index is a bijection with the enumeration.
        for (i, t) in lr0.nt_transitions().iter().enumerate() {
            prop_assert_eq!(
                lr0.nt_transition_id(t.from, t.nt).map(|x| x.index()),
                Some(i)
            );
        }
    }

    #[test]
    fn random_grammar_walks_match_transitions(seed in 0u64..500) {
        let g = random(seed, RandomConfig::default());
        let lr0 = Lr0Automaton::build(&g);
        // walk() == folding transition() by definition; check on bodies.
        for (pid, p) in g.iter_productions() {
            let mut state = Some(StateId::START);
            for &sym in p.rhs() {
                state = state.and_then(|s| lr0.transition(s, sym));
            }
            prop_assert_eq!(state, lr0.walk(StateId::START, p.rhs()), "prod {}", pid.index());
        }
    }
}
