//! The evaluation grammar corpus.
//!
//! The paper's empirical section ran on a collection of real programming
//! language grammars (ALGOL, FORTRAN, Ada, …) that is not distributable;
//! this crate substitutes a corpus with the same structural spread:
//!
//! * [`realistic`] — seven embedded language grammars, from a toy
//!   expression grammar to an ANSI-C subset with the full precedence
//!   ladder (20–120 productions).
//! * [`classics`] — the small textbook grammars that separate the classes
//!   `LR(0) ⊂ SLR(1) ⊂ LALR(1) ⊂ LR(1)` plus the NQLALR unsoundness
//!   witness and a non-LR(k) grammar (Table 3 rows).
//! * [`synthetic`] — parameterized grammar families and a seeded random
//!   generator for the scaling sweep (Figure 1) and property tests.
//!
//! # Examples
//!
//! ```
//! let corpus = lalr_corpus::realistic::all();
//! assert!(corpus.len() >= 7);
//! for entry in corpus {
//!     let g = entry.grammar();
//!     assert!(g.production_count() > 1, "{} parses", entry.name);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classics;
pub mod realistic;
pub mod sentences;
pub mod synthetic;

use lalr_grammar::Grammar;

/// One corpus grammar: a name, its source text, and a note on provenance.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Short identifier used in tables.
    pub name: &'static str,
    /// The grammar in the `lalr-grammar` text format.
    pub source: &'static str,
    /// What the grammar models.
    pub description: &'static str,
}

impl CorpusEntry {
    /// Parses the entry's source.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to parse — corpus sources are
    /// validated by this crate's tests, so that indicates a build problem.
    pub fn grammar(&self) -> Grammar {
        lalr_grammar::parse_grammar(self.source)
            .unwrap_or_else(|e| panic!("corpus grammar {} must parse: {e}", self.name))
    }
}

/// Every embedded grammar: realistic corpus then classics.
pub fn all_entries() -> Vec<CorpusEntry> {
    let mut v = realistic::all();
    v.extend(classics::all());
    v
}

/// Looks an entry up by name.
pub fn by_name(name: &str) -> Option<CorpusEntry> {
    all_entries().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_entry_parses() {
        for e in super::all_entries() {
            let g = e.grammar();
            assert!(g.production_count() > 1, "{}", e.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let entries = super::all_entries();
        let mut names: Vec<_> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len());
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(super::by_name("expr").is_some());
        assert!(super::by_name("no_such_grammar").is_none());
    }
}
