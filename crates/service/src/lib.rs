//! `lalr-service` — a cached, concurrent grammar-compilation service.
//!
//! After PR 1 (parallel SCC-level pipeline) and PR 2 (dense-index memory
//! layout) the DeRemer–Pennello engine was fast but only reachable as a
//! one-shot library/CLI call: every caller paid the full cold
//! grammar → LR(0) → Read/Follow → tables pipeline. This crate amortizes
//! compilation across requests, the way production generators and
//! tabular-parsing servers do, in three layers:
//!
//! * [`ArtifactCache`] — content-addressed storage of
//!   [`CompiledArtifact`]s keyed by a fingerprint of the normalized
//!   grammar text (FxHash-then-confirm, the LR(0) interner's idiom).
//!   Lock-striped shards keep compiles of different grammars from
//!   serializing; duplicate in-flight compiles of the same grammar
//!   coalesce onto one pipeline run; LRU eviction enforces a byte
//!   budget.
//! * [`Service`] — a worker pool (sized by the existing
//!   [`lalr_core::Parallelism`] config) executing `compile`, `classify`,
//!   `table` and `parse` requests with per-request deadlines, a request
//!   size guard, `catch_unwind` around the pipeline, and a [`StatsSnapshot`]
//!   (request counts, cache hit rate, fixed-bucket latency histogram).
//! * [`Daemon`] + [`client`] — a `TcpListener` accept loop speaking
//!   newline-delimited JSON (the vendored `serde_json` shim), with
//!   per-connection read timeouts, a concurrent-connection cap, and
//!   graceful in-band shutdown; the CLI's `lalrgen serve` / `client` /
//!   `stats` commands and the `loadgen` benchmark drive it.
//!
//! # Examples
//!
//! ```
//! use lalr_service::{GrammarFormat, Request, Response, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig::default());
//! let compile = |g: &str| Request::Compile {
//!     grammar: g.to_string(),
//!     format: GrammarFormat::Native,
//! };
//! // First call compiles; the second is a cache hit on the same Arc.
//! let cold = service.call(compile("e : e \"+\" t | t ; t : \"x\" ;"), None);
//! let warm = service.call(compile("e : e \"+\" t | t ; t : \"x\" ;"), None);
//! match (cold, warm) {
//!     (Response::Compile(a), Response::Compile(b)) => {
//!         assert!(!a.cached && b.cached);
//!         assert_eq!(a.fingerprint, b.fingerprint);
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod cache;
pub mod client;
mod daemon;
mod error;
mod event_daemon;
pub mod fingerprint;
mod metrics;
pub mod protocol;
mod service;
mod telemetry;

pub use artifact::{CompiledArtifact, GrammarFormat};
pub use cache::{ArtifactCache, CacheConfig, CacheOutcome, CacheStats, Fingerprinter};
pub use client::{call_with_breaker, call_with_retry, CircuitBreaker, ClientReply, RetryPolicy};
pub use daemon::{Daemon, DaemonConfig, DaemonSummary};
pub use error::ServiceError;
pub use event_daemon::EventDaemon;
pub use lalr_chaos::{Fault, FaultInjector, FaultPlan, FaultPointStats, Trigger};
pub use lalr_obs::{ActiveTrace, RequestTrace, STAGE_NAMES};
pub use service::{
    AdmissionRejects, ClassifySummary, CompileSummary, DocError, DocVerdict, HealthConfig,
    HealthReport, HealthState, HealthStats, ParseBatchSummary, ParseLaneStats, ParseTarget,
    Request, Response, Service, ServiceConfig, StatsSnapshot, TableSummary, TraceConfig, TraceDump,
    TraceFilter, TracingStats, LATENCY_BOUNDS_US, OPS, PHASE_NAMES,
};
pub use telemetry::{DaemonCounters, ShardCounters, ShardStatsSnapshot};
