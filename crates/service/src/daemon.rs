//! The TCP daemon: a `std::net` accept loop over the service.
//!
//! Framing is newline-delimited JSON (one request line in, one response
//! line out; see [`crate::protocol`]). Each connection gets its own
//! thread but compute happens on the service's worker pool, so the
//! concurrency of actual compiles is bounded by the pool regardless of
//! connection count. Connections beyond the cap receive an
//! `unavailable` error line and are closed immediately.
//!
//! Shutdown is graceful and **drains**: a `{"op":"shutdown"}` request
//! (or [`Daemon::stop`]) stops the accept loop, idle connections are
//! closed immediately, connections mid-request get up to
//! [`DaemonConfig::drain_deadline`] to finish and are then force-closed,
//! and [`Daemon::join`] reports how many drained cleanly versus were
//! aborted. Joining through the drain path bounds shutdown latency by
//! the deadline plus in-flight compute — never by the 30 s idle read
//! timeout.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lalr_chaos::{Fault, FaultInjector};

use crate::protocol::{request_from_value, response_to_line};
use crate::service::{Request, Response, Service, ServiceConfig};
use crate::telemetry::DaemonCounters;
use crate::ServiceError;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (e.g. `127.0.0.1:4077`; port 0 picks one).
    pub addr: String,
    /// Maximum concurrently open connections.
    pub max_connections: usize,
    /// Per-connection read timeout; an idle connection is closed.
    pub read_timeout: Duration,
    /// Maximum request line length in bytes.
    pub max_line_bytes: usize,
    /// How long a shutting-down daemon waits for in-flight requests
    /// before force-closing their connections.
    pub drain_deadline: Duration,
    /// Write timeout for admission-rejection lines (over-cap, over-quota)
    /// written to a connection that is about to be closed — a slow or
    /// hostile peer must not stall the accept path. Zero disables the
    /// timeout.
    pub reject_write_timeout: Duration,
    /// Per-peer (per source IP) concurrent-connection quota enforced by
    /// the event daemon at accept time; over-quota connections get a
    /// fast retryable `throttled` rejection. 0 disables the quota.
    pub max_connections_per_peer: usize,
    /// Token-bucket request rate limit (request lines per second across
    /// all connections) enforced by the event daemon at line-parse
    /// time; over-rate lines get a retryable `throttled` rejection.
    /// 0 disables the limit.
    pub rate_limit_per_sec: u64,
    /// Token-bucket burst capacity. 0 means "same as
    /// [`DaemonConfig::rate_limit_per_sec`]".
    pub rate_limit_burst: u64,
    /// Slow-client write budget: a connection whose queued response
    /// bytes do not drain within this deadline is closed (write-side
    /// slowloris defense, event daemon only). Zero disables the budget.
    pub write_budget: Duration,
    /// Fault injector for the daemon's I/O failpoints (`daemon.read`,
    /// `daemon.write`, `daemon.admit`, `shard.panic`). Usually the same
    /// injector as [`ServiceConfig::faults`]; disabled by default.
    pub faults: FaultInjector,
    /// The underlying service configuration.
    pub service: ServiceConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:4077".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            max_line_bytes: 4 << 20,
            drain_deadline: Duration::from_secs(5),
            reject_write_timeout: Duration::from_secs(1),
            max_connections_per_peer: 0,
            rate_limit_per_sec: 0,
            rate_limit_burst: 0,
            write_budget: Duration::ZERO,
            faults: FaultInjector::disabled(),
            service: ServiceConfig::default(),
        }
    }
}

/// What a daemon did, reported by [`Daemon::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Connections accepted (including over-cap rejections).
    pub connections: u64,
    /// Requests the service handled.
    pub requests: u64,
    /// Connections open at shutdown that finished cleanly within the
    /// drain deadline (idle ones close immediately and count here).
    pub drained: u64,
    /// Connections force-closed because they were still mid-request when
    /// the drain deadline expired.
    pub aborted: u64,
    /// Event-loop shards respawned by the supervisor after a panic
    /// (always 0 for the threaded front end).
    pub restarts: u64,
}

/// A running daemon.
pub struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<DaemonSummary>,
}

impl Daemon {
    /// Binds the address and starts the accept loop on a background
    /// thread.
    pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("lalr-daemon-accept".to_string())
            .spawn(move || accept_loop(listener, addr, &config, &flag))
            .expect("spawn daemon accept thread");
        Ok(Daemon {
            addr,
            shutdown,
            handle,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown from outside the protocol (tests, signal
    /// handlers). Idempotent; the in-band `shutdown` op does the same.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_acceptor(self.addr);
    }

    /// Waits for the accept loop to finish and returns the summary.
    pub fn join(self) -> DaemonSummary {
        self.handle.join().expect("daemon accept thread panicked")
    }
}

/// Nudges the blocking `accept` so it re-checks the shutdown flag.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// One live connection, as the drain logic sees it: the stream handle
/// (so its blocked read can be woken with a socket shutdown) and whether
/// a request is currently executing on it.
struct ConnSlot {
    id: u64,
    stream: TcpStream,
    busy: AtomicBool,
}

/// Live-connection registry; a connection removes itself on exit, so at
/// drain time this holds exactly the connections still open.
type Registry = Arc<Mutex<Vec<Arc<ConnSlot>>>>;

fn unregister(registry: &Registry, id: u64) {
    registry
        .lock()
        .expect("connection registry poisoned")
        .retain(|s| s.id != id);
}

fn accept_loop(
    listener: TcpListener,
    addr: SocketAddr,
    config: &DaemonConfig,
    shutdown: &Arc<AtomicBool>,
) -> DaemonSummary {
    let service = Arc::new(Service::new(config.service.clone()));
    let counters = Arc::new(DaemonCounters::with_quotas(
        config.max_connections_per_peer as u64,
        config.rate_limit_per_sec,
    ));
    service.register_daemon(Arc::clone(&counters));
    let active = Arc::new(AtomicUsize::new(0));
    let connections = AtomicU64::new(0);
    let registry: Registry = Arc::new(Mutex::new(Vec::new()));
    let mut next_id = 0u64;
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        connections.fetch_add(1, Ordering::Relaxed);
        if active.load(Ordering::SeqCst) >= config.max_connections {
            counters.rejects_conn_cap.fetch_add(1, Ordering::Relaxed);
            reject_over_cap(stream, config.reject_write_timeout);
            continue;
        }
        conn_threads.retain(|h| !h.is_finished());
        let slot = match stream.try_clone() {
            Ok(clone) => {
                next_id += 1;
                Arc::new(ConnSlot {
                    id: next_id,
                    stream: clone,
                    busy: AtomicBool::new(false),
                })
            }
            Err(_) => continue,
        };
        registry
            .lock()
            .expect("connection registry poisoned")
            .push(Arc::clone(&slot));
        active.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let conn_active = Arc::clone(&active);
        let conn_registry = Arc::clone(&registry);
        let shutdown = Arc::clone(shutdown);
        let read_timeout = config.read_timeout;
        let max_line = config.max_line_bytes;
        let faults = config.faults.clone();
        let slot_id = slot.id;
        let spawned = std::thread::Builder::new()
            .name("lalr-daemon-conn".to_string())
            .spawn(move || {
                serve_connection(
                    stream,
                    addr,
                    &service,
                    &shutdown,
                    read_timeout,
                    max_line,
                    &slot,
                    &faults,
                );
                unregister(&conn_registry, slot.id);
                conn_active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(h) => conn_threads.push(h),
            Err(_) => {
                unregister(&registry, slot_id);
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    service.set_draining();
    let (drained, aborted) = drain(&registry, &active, config.drain_deadline);
    for h in conn_threads {
        let _ = h.join();
    }
    let requests = service.stats().requests;
    service.shutdown();
    DaemonSummary {
        connections: connections.load(Ordering::Relaxed),
        requests,
        drained,
        aborted,
        restarts: 0,
    }
}

/// Drains live connections after the accept loop stops: idle connections
/// are woken (their blocked reads return) and close at once; busy ones
/// get until `deadline` to finish their current request, then their
/// sockets are shut down. Returns `(drained, aborted)` counts.
///
/// This is what makes [`Daemon::join`] prompt — without it, joining the
/// connection threads could block for the full idle read timeout.
fn drain(registry: &Registry, active: &AtomicUsize, deadline: Duration) -> (u64, u64) {
    let started = Instant::now();
    let live_at_shutdown = {
        let slots = registry.lock().expect("connection registry poisoned");
        // Wake idle connections now: `Shutdown::Both` makes a blocked
        // `read` return EOF, so the serve loop exits without waiting out
        // its read timeout. Busy connections keep their sockets so the
        // in-flight response can still be written.
        for slot in slots.iter() {
            if !slot.busy.load(Ordering::SeqCst) {
                let _ = slot.stream.shutdown(Shutdown::Both);
            }
        }
        slots.len() as u64
    };
    while active.load(Ordering::SeqCst) > 0 && started.elapsed() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    // Force-close stragglers still mid-request at the deadline.
    let aborted = {
        let slots = registry.lock().expect("connection registry poisoned");
        for slot in slots.iter() {
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
        slots.len() as u64
    };
    (live_at_shutdown - aborted, aborted)
}

fn reject_over_cap(mut stream: TcpStream, write_timeout: Duration) {
    let line = response_to_line(&Response::Error(ServiceError::Unavailable(
        "connection limit reached".to_string(),
    )));
    if !write_timeout.is_zero() {
        let _ = stream.set_write_timeout(Some(write_timeout));
    }
    let _ = writeln!(stream, "{line}");
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    daemon_addr: SocketAddr,
    service: &Service,
    shutdown: &AtomicBool,
    read_timeout: Duration,
    max_line: usize,
    slot: &ConnSlot,
    faults: &FaultInjector,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_write_timeout(Some(read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // The `take` limit bounds memory for a single request line; it is
    // reset before each line so the cap is per-line, not per-connection.
    let mut reader = BufReader::new(stream.take(max_line as u64 + 1));
    let mut line = String::new();

    loop {
        // A draining daemon stops reading between requests; the current
        // request (if any) already finished, so exiting here loses
        // nothing a client was promised.
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        reader.get_mut().set_limit(max_line as u64 + 1);
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) if line.len() > max_line => {
                respond(
                    &mut writer,
                    &Response::Error(ServiceError::TooLarge {
                        size: line.len(),
                        limit: max_line,
                    }),
                    faults,
                );
                // Drain through the end of the oversized line before
                // hanging up: closing with unread bytes queued sends an
                // RST, which can tear the error response away from a
                // client still mid-write.
                drain_line(&mut reader, max_line);
                return;
            }
            Ok(_) => {}
            Err(_) => return, // read timeout or transport failure
        }
        // The read-side failpoint, applied to a complete request line as
        // if the transport had failed underneath it.
        let mut close_without_response = false;
        match faults.at("daemon.read") {
            Some(Fault::Error) => return, // injected read failure: drop the conn
            Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Fault::Garbage) => {
                // Corrupt the line in place; the parse below answers
                // `bad_request` and the daemon survives.
                line = format!("\u{1b}corrupt\u{0000}{line}");
            }
            Some(Fault::Truncate) => close_without_response = true,
            _ => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str(line.trim_end())
            .map_err(|e| ServiceError::BadRequest(e.to_string()))
            .and_then(|v| request_from_value(&v));
        let (request, deadline) = match parsed {
            Ok(p) => p,
            Err(e) => {
                if !respond(&mut writer, &Response::Error(e), faults) {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        slot.busy.store(true, Ordering::SeqCst);
        let response = service.call(request, deadline);
        let written = if close_without_response {
            // Injected truncation: the request executed but the client
            // never hears back — it must treat the silence as retryable.
            false
        } else {
            respond(&mut writer, &response, faults)
        };
        slot.busy.store(false, Ordering::SeqCst);
        if is_shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake_acceptor(daemon_addr);
            return;
        }
        if !written {
            return;
        }
    }
}

/// Discards input up to and including the next newline (or EOF /
/// transport error), without retaining the bytes. Used after an
/// oversized request so the socket closes cleanly instead of resetting.
fn drain_line(reader: &mut BufReader<std::io::Take<TcpStream>>, max_line: usize) {
    loop {
        reader.get_mut().set_limit(max_line as u64 + 1);
        let buf = match reader.fill_buf() {
            Ok([]) => return, // EOF
            Ok(buf) => buf,
            Err(_) => return, // read timeout or transport failure
        };
        match buf.iter().position(|&b| b == b'\n') {
            Some(i) => {
                let consume = i + 1;
                reader.consume(consume);
                return;
            }
            None => {
                let consume = buf.len();
                reader.consume(consume);
            }
        }
    }
}

fn respond(writer: &mut TcpStream, response: &Response, faults: &FaultInjector) -> bool {
    let line = response_to_line(response);
    match faults.at("daemon.write") {
        Some(Fault::Error) => return false, // response eaten whole
        Some(Fault::PartialWrite) => {
            // Half the bytes, no newline: the client sees a line cut
            // mid-way and must report it as a distinct `closed` error.
            let bytes = line.as_bytes();
            let _ = writer.write_all(&bytes[..bytes.len() / 2]);
            let _ = writer.flush();
            return false;
        }
        Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
    writeln!(writer, "{line}").is_ok()
}
