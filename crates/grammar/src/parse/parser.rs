//! Recursive-descent parser for the grammar text format.

use crate::builder::GrammarBuilder;
use crate::error::{GrammarError, ParseErrorKind};
use crate::grammar::Grammar;
use crate::parse::lexer::{Lexer, Token, TokenKind};
use crate::parse::Assoc;

/// Parses the text format into a [`Grammar`].
///
/// See `docs/GRAMMAR_FORMAT.md` in the repository for the full syntax
/// reference.
///
/// # Errors
///
/// Returns [`GrammarError::Parse`] (with position) on syntax errors and the
/// other [`GrammarError`] variants for semantic problems (duplicate or
/// reserved symbols, missing start, …).
///
/// # Examples
///
/// ```
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar(
///     r#"
///     %left "+"
///     %left "*"
///     e : e "+" e | e "*" e | NUM ;
///     "#,
/// )?;
/// assert_eq!(g.production_count(), 4);
/// # Ok::<(), lalr_grammar::GrammarError>(())
/// ```
pub fn parse_grammar(src: &str) -> Result<Grammar, GrammarError> {
    Parser::new(src)?.run()
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Token,
    peek: Token,
    builder: GrammarBuilder,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, GrammarError> {
        let mut lexer = Lexer::new(src);
        let tok = lexer.next_token()?;
        let peek = lexer.next_token()?;
        Ok(Parser {
            lexer,
            tok,
            peek,
            builder: GrammarBuilder::new(),
        })
    }

    fn bump(&mut self) -> Result<Token, GrammarError> {
        let next = self.lexer.next_token()?;
        let new_tok = std::mem::replace(&mut self.peek, next);
        Ok(std::mem::replace(&mut self.tok, new_tok))
    }

    /// In a directive's name list, a `Name` directly followed by `:` is the
    /// next rule's left-hand side, not a list member.
    fn at_list_name(&self) -> bool {
        matches!(self.tok.kind, TokenKind::Name(_)) && self.peek.kind != TokenKind::Colon
    }

    fn error_expected(&self, wanted: &str) -> GrammarError {
        GrammarError::Parse {
            line: self.tok.line,
            col: self.tok.col,
            kind: ParseErrorKind::Expected {
                wanted: wanted.to_string(),
                found: self.tok.kind.describe(),
            },
        }
    }

    fn expect_name(&mut self, wanted: &str) -> Result<String, GrammarError> {
        match &self.tok.kind {
            TokenKind::Name(_) => {
                let tok = self.bump()?;
                match tok.kind {
                    TokenKind::Name(n) => Ok(n),
                    _ => unreachable!("checked above"),
                }
            }
            _ => Err(self.error_expected(wanted)),
        }
    }

    fn run(mut self) -> Result<Grammar, GrammarError> {
        loop {
            match &self.tok.kind {
                TokenKind::Eof => break,
                TokenKind::Directive(_) => self.directive()?,
                TokenKind::Name(_) => self.rule()?,
                _ => return Err(self.error_expected("a rule or %directive")),
            }
        }
        self.builder.build()
    }

    fn directive(&mut self) -> Result<(), GrammarError> {
        let tok = self.bump()?;
        let TokenKind::Directive(name) = tok.kind else {
            unreachable!("caller checked");
        };
        match name.as_str() {
            "start" => {
                let s = self.expect_name("a start symbol name")?;
                self.builder.start(s);
            }
            "token" | "term" => {
                while self.at_list_name() {
                    let n = self.expect_name("a terminal name")?;
                    self.builder.terminal(n);
                }
            }
            "left" | "right" | "nonassoc" => {
                let assoc = match name.as_str() {
                    "left" => Assoc::Left,
                    "right" => Assoc::Right,
                    _ => Assoc::NonAssoc,
                };
                let mut names = Vec::new();
                while self.at_list_name() {
                    names.push(self.expect_name("a terminal name")?);
                }
                self.builder.precedence(assoc, names);
            }
            other => {
                return Err(GrammarError::Parse {
                    line: tok.line,
                    col: tok.col,
                    kind: ParseErrorKind::UnknownDirective(other.to_string()),
                })
            }
        }
        Ok(())
    }

    fn rule(&mut self) -> Result<(), GrammarError> {
        let lhs = self.expect_name("a rule left-hand side")?;
        if self.tok.kind != TokenKind::Colon {
            return Err(self.error_expected("':'"));
        }
        self.bump()?;
        loop {
            let (rhs, prec) = self.alternative()?;
            match prec {
                None => self.builder.rule(lhs.clone(), rhs),
                Some(p) => self.builder.rule_with_prec(lhs.clone(), rhs, p),
            };
            match &self.tok.kind {
                TokenKind::Pipe => {
                    self.bump()?;
                }
                TokenKind::Semi => {
                    self.bump()?;
                    return Ok(());
                }
                _ => return Err(self.error_expected("'|' or ';'")),
            }
        }
    }

    /// One alternative: a (possibly empty) symbol string with an optional
    /// trailing `%prec TERMINAL` or an explicit `%empty`.
    fn alternative(&mut self) -> Result<(Vec<String>, Option<String>), GrammarError> {
        let mut rhs = Vec::new();
        let mut prec = None;
        loop {
            match &self.tok.kind {
                TokenKind::Name(_) => rhs.push(self.expect_name("a symbol")?),
                TokenKind::Directive(d) if d == "empty" => {
                    self.bump()?;
                }
                TokenKind::Directive(d) if d == "prec" => {
                    self.bump()?;
                    prec = Some(self.expect_name("a %prec terminal")?);
                }
                _ => return Ok((rhs, prec)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    #[test]
    fn minimal_grammar() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        assert_eq!(g.production_count(), 2);
        assert_eq!(g.nonterminal_name(g.start()), "s");
    }

    #[test]
    fn alternatives_and_epsilon() {
        let g = parse_grammar("s : \"a\" s | ;").unwrap();
        let s = g.nonterminal_by_name("s").unwrap();
        let prods = g.productions_of(s);
        assert_eq!(prods.len(), 2);
        assert!(g.production(prods[1]).is_empty());
    }

    #[test]
    fn explicit_empty_keyword() {
        let g = parse_grammar("s : %empty | \"a\" ;").unwrap();
        let s = g.nonterminal_by_name("s").unwrap();
        assert!(g.production(g.productions_of(s)[0]).is_empty());
    }

    #[test]
    fn token_declarations_fix_order() {
        let g = parse_grammar("%token A B C  s : C ;").unwrap();
        assert_eq!(g.terminal_name(crate::Terminal::new(1)), "A");
        assert_eq!(g.terminal_name(crate::Terminal::new(2)), "B");
        assert_eq!(g.terminal_name(crate::Terminal::new(3)), "C");
    }

    #[test]
    fn precedence_and_prec_override() {
        let g = parse_grammar(
            r#"
            %left "+"
            %right UMINUS
            e : e "+" e | "-" e %prec UMINUS | NUM ;
            "#,
        )
        .unwrap();
        let e = g.nonterminal_by_name("e").unwrap();
        let neg = g.productions_of(e)[1];
        let uminus = g.terminal_by_name("UMINUS").unwrap();
        assert_eq!(g.production(neg).prec_override(), Some(uminus));
        let p = g.production_precedence(neg).unwrap();
        assert_eq!(p.assoc, Assoc::Right);
    }

    #[test]
    fn start_directive() {
        let g = parse_grammar("%start b  a : \"x\" ;  b : a ;").unwrap();
        assert_eq!(g.nonterminal_name(g.start()), "b");
    }

    #[test]
    fn missing_semi_is_syntax_error() {
        let err = parse_grammar("s : \"a\"").unwrap_err();
        assert!(matches!(
            err,
            GrammarError::Parse {
                kind: ParseErrorKind::Expected { .. },
                ..
            }
        ));
    }

    #[test]
    fn unknown_directive_is_error() {
        let err = parse_grammar("%bogus  s : \"a\" ;").unwrap_err();
        assert!(matches!(
            err,
            GrammarError::Parse {
                kind: ParseErrorKind::UnknownDirective(_),
                ..
            }
        ));
    }

    #[test]
    fn rule_without_colon_is_error() {
        let err = parse_grammar("s \"a\" ;").unwrap_err();
        let GrammarError::Parse {
            kind: ParseErrorKind::Expected { wanted, .. },
            ..
        } = err
        else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(wanted, "':'");
    }

    #[test]
    fn quoted_and_bare_names_are_one_namespace() {
        let g = parse_grammar("s : \"a\" a ;").unwrap();
        // "a" quoted and a bare refer to the same terminal.
        let s = g.nonterminal_by_name("s").unwrap();
        let p = g.production(g.productions_of(s)[0]);
        assert_eq!(p.rhs()[0], p.rhs()[1]);
        assert!(matches!(p.rhs()[0], Symbol::Terminal(_)));
    }
}
