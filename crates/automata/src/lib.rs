//! LR automata over [`lalr_grammar::Grammar`].
//!
//! Three constructions live here:
//!
//! * [`Lr0Automaton`] — the canonical LR(0) collection, the machine the
//!   DeRemer–Pennello algorithm computes look-aheads *on*. States expose
//!   kernels, closures, transitions (with an index of **nonterminal
//!   transitions**, the domain of the paper's relations) and reductions.
//! * [`Lr1Automaton`] — the canonical LR(1) collection (Knuth), the
//!   expensive baseline the paper's empirical section compares against.
//! * [`merge_lr1`] — LALR(1) by merging same-core LR(1) states, giving the
//!   reference LALR look-ahead sets our implementation is validated against.
//!
//! # Examples
//!
//! ```
//! use lalr_automata::Lr0Automaton;
//! use lalr_grammar::parse_grammar;
//!
//! let g = parse_grammar("s : \"a\" s | \"b\" ;")?;
//! let lr0 = Lr0Automaton::build(&g);
//! assert_eq!(lr0.state_count(), 5);
//! assert_eq!(lr0.nt_transitions().len(), 2); // on `s` from state 0 and from "a·s"
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod item;
mod lr0;
mod lr1;
mod merge;
mod reduction;

pub use item::{item_set_clone_count, ClosureScratch, Item, ItemSet};
pub use lr0::{Lr0Automaton, NtTransId, StateId};
pub use lr1::{closure1, Lr1Automaton, Lr1State};
pub use merge::{merge_lr1, MergedLalr};
pub use reduction::{ReductionId, ReductionIndex};
