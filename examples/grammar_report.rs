//! Grammar analysis report: feed any grammar file (or a corpus name) and
//! get the full DeRemer–Pennello diagnosis — statistics, relation sizes,
//! look-ahead sets, conflicts, and the grammar's class.
//!
//! ```text
//! cargo run --example grammar_report -- pascal          # corpus name
//! cargo run --example grammar_report -- path/to/my.g    # or a file
//! ```

use lalr::core::Relations;
use lalr::prelude::*;

fn load(arg: &str) -> Result<Grammar, Box<dyn std::error::Error>> {
    if let Some(entry) = lalr::corpus::by_name(arg) {
        return Ok(entry.grammar());
    }
    let text = std::fs::read_to_string(arg)?;
    Ok(parse_grammar(&text)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "expr".to_string());
    let grammar = load(&arg)?;

    let stats = GrammarStats::compute(&grammar);
    println!("== grammar {arg} ==");
    println!(
        "terminals {}  nonterminals {}  productions {}  |G| {}",
        stats.terminals, stats.nonterminals, stats.productions, stats.size
    );
    println!(
        "epsilon prods {}  nullable {}  left-recursive {}  useless {}",
        stats.epsilon_productions,
        stats.nullable_nonterminals,
        stats.left_recursive,
        stats.useless_nonterminals
    );

    let lr0 = Lr0Automaton::build(&grammar);
    let rel = Relations::build(&grammar, &lr0);
    let rs = rel.stats();
    println!("\n== LR(0) machine ==");
    println!(
        "states {}  transitions {}",
        lr0.state_count(),
        lr0.transition_count()
    );
    println!(
        "nonterminal transitions {}  reads {}  includes {}  lookback {}",
        rs.nt_transitions, rs.reads_edges, rs.includes_edges, rs.lookback_edges
    );

    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    if analysis.grammar_not_lr_k() {
        println!("\n!! the reads relation is cyclic: not LR(k) for ANY k");
    }

    println!("\n== LALR(1) look-ahead sets (first 12 reduction points) ==");
    let mut entries: Vec<_> = analysis.lookaheads().iter().collect();
    entries.sort_by_key(|&((s, p), _)| (s, p));
    for &((state, prod), la) in entries.iter().take(12) {
        let names: Vec<&str> = la
            .iter()
            .map(|t| grammar.terminal_name(lalr::grammar::Terminal::new(t)))
            .collect();
        println!(
            "LA({:>3}, {}) = {{{}}}",
            state.index(),
            grammar.production_to_string(prod),
            names.join(", ")
        );
    }

    let conflicts = analysis.conflicts(&grammar, &lr0);
    println!("\n== conflicts ({}) ==", conflicts.len());
    for c in conflicts.iter().take(10) {
        println!("  {}", c.display(&grammar));
    }

    println!("\n== classification ==");
    let adequacy = classify(&grammar);
    println!(
        "LR(0):{}  SLR(1):{}  NQLALR(1):{}  LALR(1):{}  LR(1):{}  ->  {}",
        adequacy.lr0_conflicts,
        adequacy.slr_conflicts,
        adequacy.nqlalr_conflicts,
        adequacy.lalr_conflicts,
        adequacy.lr1_conflicts,
        adequacy.class
    );
    Ok(())
}
