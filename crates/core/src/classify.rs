//! Grammar-class classification (the adequacy hierarchy of Table 3).

use lalr_automata::{Lr0Automaton, Lr1Automaton};
use lalr_grammar::Grammar;

use crate::conflicts::find_conflicts;
use crate::engine::LalrAnalysis;
use crate::lookahead::LookaheadSets;
use crate::nqlalr::NqlalrAnalysis;
use crate::slr::slr_lookaheads;

/// The strongest class in `LR(0) ⊂ SLR(1) ⊂ LALR(1) ⊂ LR(1)` a grammar
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GrammarClass {
    /// Conflict-free with no look-ahead at all.
    Lr0,
    /// SLR(1) but not LR(0).
    Slr1,
    /// LALR(1) but not SLR(1).
    Lalr1,
    /// LR(1) but not LALR(1).
    Lr1,
    /// Not LR(1) (ambiguous, or needs k > 1, or not LR(k) at all).
    NotLr1,
}

impl std::fmt::Display for GrammarClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GrammarClass::Lr0 => "LR(0)",
            GrammarClass::Slr1 => "SLR(1)",
            GrammarClass::Lalr1 => "LALR(1)",
            GrammarClass::Lr1 => "LR(1)",
            GrammarClass::NotLr1 => "not LR(1)",
        };
        f.write_str(s)
    }
}

/// Conflict counts per method for one grammar — one row of Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodAdequacy {
    /// Conflicts with no look-ahead (LR(0) test).
    pub lr0_conflicts: usize,
    /// Conflicts under SLR(1) look-aheads.
    pub slr_conflicts: usize,
    /// Conflicts under NQLALR(1) look-aheads (may exceed LALR's — that gap
    /// is the unsoundness the paper warns about).
    pub nqlalr_conflicts: usize,
    /// Conflicts under true LALR(1) look-aheads.
    pub lalr_conflicts: usize,
    /// Conflicts in the canonical LR(1) machine.
    pub lr1_conflicts: usize,
    /// `reads`-cycle detected (grammar not LR(k) for any k).
    pub not_lr_k: bool,
    /// The resulting classification.
    pub class: GrammarClass,
}

/// An LR(0)-style look-ahead assignment: every reduction answers to the
/// full terminal alphabet (so any state with a reduction plus anything else
/// conflicts).
fn lr0_lookaheads(grammar: &Grammar, lr0: &Lr0Automaton) -> LookaheadSets {
    let mut las = LookaheadSets::for_automaton(lr0, grammar.terminal_count());
    let full = lalr_bitset::BitSet::full(grammar.terminal_count());
    for state in lr0.states() {
        for &prod in lr0.reductions(state) {
            las.union_into(state, prod, &full);
        }
    }
    las
}

/// Conflicts of the canonical LR(1) machine itself.
fn lr1_conflicts(grammar: &Grammar, lr1: &Lr1Automaton) -> usize {
    let _ = grammar;
    let mut count = 0;
    for state in lr1.states() {
        let shifts: Vec<usize> = lr1
            .transitions(state)
            .iter()
            .filter_map(|&(s, _)| s.terminal().map(|t| t.index()))
            .collect();
        let reds = lr1.reductions(state);
        for (_, la) in reds {
            count += shifts.iter().filter(|&&t| la.contains(t)).count();
        }
        for (i, (_, la1)) in reds.iter().enumerate() {
            for (_, la2) in &reds[i + 1..] {
                count += (la1 & la2).count();
            }
        }
    }
    count
}

/// Classifies a grammar by running all five methods.
///
/// This is deliberately the expensive, exhaustive procedure (it builds the
/// canonical LR(1) machine); Table 3 calls it once per corpus grammar.
///
/// # Examples
///
/// ```
/// use lalr_core::{classify, GrammarClass};
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;")?;
/// let adequacy = classify(&g);
/// assert_eq!(adequacy.class, GrammarClass::Lalr1);
/// assert!(adequacy.slr_conflicts > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn classify(grammar: &Grammar) -> MethodAdequacy {
    classify_with(grammar, &crate::Parallelism::sequential())
}

/// Like [`classify`], but when more than one thread is configured the five
/// methods run concurrently: the canonical-LR(1) build, the LR(0)/SLR/
/// NQLALR baselines and the DeRemer–Pennello analysis are independent, so
/// each gets its own scoped thread. Counts and classification are
/// identical to the sequential run.
pub fn classify_with(grammar: &Grammar, parallelism: &crate::Parallelism) -> MethodAdequacy {
    let lr0 = Lr0Automaton::build(grammar);
    let analysis = LalrAnalysis::compute_with(grammar, &lr0, parallelism);
    classify_from(grammar, &lr0, &analysis, parallelism)
}

/// Recorded analogue of [`classify_from`]: each of the five methods runs
/// inside its own span (`classify.lr0`, `classify.slr`,
/// `classify.nqlalr`, `classify.lr1`, `classify.lalr`). Under the
/// parallel fan the method spans land on their worker threads, which
/// per-thread span stacks keep well-nested.
pub fn classify_recorded(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    analysis: &LalrAnalysis,
    parallelism: &crate::Parallelism,
    rec: &dyn lalr_obs::Recorder,
) -> MethodAdequacy {
    classify_inner(grammar, lr0, analysis, parallelism, rec)
}

/// Classifies from a prebuilt LR(0) automaton and DeRemer–Pennello
/// analysis, running only the remaining four methods (LR(0)/SLR/NQLALR
/// baselines and the canonical-LR(1) build). This is what `lalr-service`
/// uses so a cached compile never recomputes the automaton or the
/// look-ahead sets; [`classify_with`] is now a thin wrapper over it and
/// the counts are identical either way.
pub fn classify_from(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    analysis: &LalrAnalysis,
    parallelism: &crate::Parallelism,
) -> MethodAdequacy {
    classify_inner(grammar, lr0, analysis, parallelism, &lalr_obs::NULL)
}

fn classify_inner(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    analysis: &LalrAnalysis,
    parallelism: &crate::Parallelism,
    rec: &dyn lalr_obs::Recorder,
) -> MethodAdequacy {
    let (lr0_c, slr_c, nq_c, lr1_c);
    if parallelism.is_parallel() {
        (lr0_c, slr_c, nq_c, lr1_c) = std::thread::scope(|scope| {
            let lr1_h = scope.spawn(move || {
                let _span = lalr_obs::span(rec, "classify.lr1");
                let lr1 = Lr1Automaton::build(grammar);
                lr1_conflicts(grammar, &lr1)
            });
            let lr0_h = scope.spawn(move || {
                let _span = lalr_obs::span(rec, "classify.lr0");
                find_conflicts(grammar, lr0, &lr0_lookaheads(grammar, lr0)).len()
            });
            let slr_h = scope.spawn(move || {
                let _span = lalr_obs::span(rec, "classify.slr");
                find_conflicts(grammar, lr0, &slr_lookaheads(grammar, lr0)).len()
            });
            let nq_c = {
                let _span = lalr_obs::span(rec, "classify.nqlalr");
                find_conflicts(
                    grammar,
                    lr0,
                    NqlalrAnalysis::compute(grammar, lr0).lookaheads(),
                )
                .len()
            };
            (
                lr0_h.join().expect("lr0 baseline panicked"),
                slr_h.join().expect("slr baseline panicked"),
                nq_c,
                lr1_h.join().expect("lr1 build panicked"),
            )
        });
    } else {
        lr1_c = {
            let _span = lalr_obs::span(rec, "classify.lr1");
            let lr1 = Lr1Automaton::build(grammar);
            lr1_conflicts(grammar, &lr1)
        };
        lr0_c = {
            let _span = lalr_obs::span(rec, "classify.lr0");
            find_conflicts(grammar, lr0, &lr0_lookaheads(grammar, lr0)).len()
        };
        slr_c = {
            let _span = lalr_obs::span(rec, "classify.slr");
            find_conflicts(grammar, lr0, &slr_lookaheads(grammar, lr0)).len()
        };
        nq_c = {
            let _span = lalr_obs::span(rec, "classify.nqlalr");
            find_conflicts(
                grammar,
                lr0,
                NqlalrAnalysis::compute(grammar, lr0).lookaheads(),
            )
            .len()
        };
    }
    let lalr_c = {
        let _span = lalr_obs::span(rec, "classify.lalr");
        analysis.conflicts(grammar, lr0).len()
    };

    let class = if lr0_c == 0 {
        GrammarClass::Lr0
    } else if slr_c == 0 {
        GrammarClass::Slr1
    } else if lalr_c == 0 {
        GrammarClass::Lalr1
    } else if lr1_c == 0 {
        GrammarClass::Lr1
    } else {
        GrammarClass::NotLr1
    };

    MethodAdequacy {
        lr0_conflicts: lr0_c,
        slr_conflicts: slr_c,
        nqlalr_conflicts: nq_c,
        lalr_conflicts: lalr_c,
        lr1_conflicts: lr1_c,
        not_lr_k: analysis.grammar_not_lr_k(),
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    fn class_of(src: &str) -> GrammarClass {
        classify(&parse_grammar(src).unwrap()).class
    }

    #[test]
    fn lr0_grammar() {
        // Every sentence ends in a distinct way; no look-ahead needed.
        assert_eq!(class_of("s : \"a\" s \"b\" | \"c\" ;"), GrammarClass::Lr0);
    }

    #[test]
    fn slr_grammar() {
        assert_eq!(
            class_of("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;"),
            GrammarClass::Slr1
        );
    }

    #[test]
    fn lalr_grammar() {
        assert_eq!(
            class_of("s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;"),
            GrammarClass::Lalr1
        );
    }

    #[test]
    fn lr1_but_not_lalr_grammar() {
        // The canonical example: merging the two `a → c` contexts creates a
        // reduce/reduce conflict that canonical LR(1) does not have.
        assert_eq!(
            class_of("s : \"u\" a \"d\" | \"v\" b \"d\" | \"u\" b \"e\" | \"v\" a \"e\" ; a : \"c\" ; b : \"c\" ;"),
            GrammarClass::Lr1
        );
    }

    #[test]
    fn ambiguous_grammar_is_not_lr1() {
        assert_eq!(class_of("e : e \"+\" e | \"x\" ;"), GrammarClass::NotLr1);
    }

    #[test]
    fn hierarchy_is_monotone() {
        // Conflicts can only shrink as the method gets stronger.
        for src in [
            "s : \"a\" s \"b\" | \"c\" ;",
            "e : e \"+\" t | t ; t : \"x\" ;",
            "s : l \"=\" r | r ; l : \"*\" r | \"id\" ; r : l ;",
            "e : e \"+\" e | \"x\" ;",
        ] {
            let m = classify(&parse_grammar(src).unwrap());
            assert!(m.slr_conflicts <= m.lr0_conflicts, "{src}");
            assert!(m.lalr_conflicts <= m.slr_conflicts, "{src}");
            // LR(1) splits states, so conflict *counts* may grow; what is
            // monotone is adequacy (conflict-freedom).
            assert!(m.lalr_conflicts > 0 || m.lr1_conflicts == 0, "{src}");
            assert!(m.nqlalr_conflicts >= m.lalr_conflicts, "{src}");
        }
    }

    #[test]
    fn class_display() {
        assert_eq!(GrammarClass::Lalr1.to_string(), "LALR(1)");
        assert_eq!(GrammarClass::NotLr1.to_string(), "not LR(1)");
    }
}
