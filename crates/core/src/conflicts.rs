//! Method-agnostic conflict detection.

use lalr_automata::{Lr0Automaton, StateId};
use lalr_grammar::{Grammar, ProdId, Terminal};

use crate::lookahead::LookaheadSets;

/// The two LR conflict species.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// A terminal both shifts and triggers a reduction.
    ShiftReduce {
        /// The reduction involved.
        reduce: ProdId,
    },
    /// A terminal triggers two different reductions.
    ReduceReduce {
        /// The smaller-id reduction.
        first: ProdId,
        /// The larger-id reduction.
        second: ProdId,
    },
}

/// One conflict: a state, the terminal, and what collided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conflict {
    /// The state the conflict occurs in.
    pub state: StateId,
    /// The look-ahead terminal both actions claim.
    pub terminal: Terminal,
    /// What collided.
    pub kind: ConflictKind,
}

impl Conflict {
    /// Renders `state/terminal: kind` with grammar names.
    pub fn display(&self, grammar: &Grammar) -> String {
        match self.kind {
            ConflictKind::ShiftReduce { reduce } => format!(
                "state {} on {:?}: shift/reduce with {}",
                self.state.index(),
                grammar.terminal_name(self.terminal),
                grammar.production_to_string(reduce),
            ),
            ConflictKind::ReduceReduce { first, second } => format!(
                "state {} on {:?}: reduce/reduce between {} and {}",
                self.state.index(),
                grammar.terminal_name(self.terminal),
                grammar.production_to_string(first),
                grammar.production_to_string(second),
            ),
        }
    }
}

/// Finds every raw (pre-precedence) conflict of a parse table built from
/// `lookaheads`.
///
/// A reduction with no recorded look-ahead set (possible for methods that
/// only record reachable reductions) is skipped.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::{find_conflicts, LalrAnalysis};
/// use lalr_grammar::parse_grammar;
///
/// // The dangling-else grammar has its famous shift/reduce conflict.
/// let g = parse_grammar(
///     "s : \"if\" s \"else\" s | \"if\" s | \"x\" ;",
/// )?;
/// let lr0 = Lr0Automaton::build(&g);
/// let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// let conflicts = find_conflicts(&g, &lr0, &la);
/// assert_eq!(conflicts.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_conflicts(
    grammar: &Grammar,
    lr0: &Lr0Automaton,
    lookaheads: &LookaheadSets,
) -> Vec<Conflict> {
    // `grammar` is kept in the signature for future diagnostics symmetry
    // with `Conflict::display`.
    let _ = grammar;
    let mut out = Vec::new();
    for state in lr0.states() {
        let reductions = lr0.reductions(state);
        if reductions.is_empty() {
            continue;
        }
        // Shift/reduce.
        for &prod in reductions {
            let Some(la) = lookaheads.la(state, prod) else {
                continue;
            };
            for t in lr0.shift_symbols(state) {
                if la.contains(t.index()) {
                    out.push(Conflict {
                        state,
                        terminal: t,
                        kind: ConflictKind::ShiftReduce { reduce: prod },
                    });
                }
            }
        }
        // Reduce/reduce.
        for (i, &p1) in reductions.iter().enumerate() {
            for &p2 in &reductions[i + 1..] {
                let (Some(la1), Some(la2)) = (lookaheads.la(state, p1), lookaheads.la(state, p2))
                else {
                    continue;
                };
                let overlap = la1 & la2;
                for t in &overlap {
                    out.push(Conflict {
                        state,
                        terminal: Terminal::new(t),
                        kind: ConflictKind::ReduceReduce {
                            first: p1,
                            second: p2,
                        },
                    });
                }
            }
        }
    }
    out.sort_unstable_by_key(|c| (c.state, c.terminal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    fn conflicts_of(src: &str) -> (Grammar, Vec<Conflict>) {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let cs = find_conflicts(&g, &lr0, &la);
        (g, cs)
    }

    #[test]
    fn unambiguous_grammar_has_no_conflicts() {
        let (_, cs) = conflicts_of("s : \"a\" s | \"b\" ;");
        assert!(cs.is_empty());
    }

    #[test]
    fn ambiguous_expression_grammar_conflicts() {
        let (g, cs) = conflicts_of("e : e \"+\" e | \"x\" ;");
        // In the state with e → e + e · and e → e · + e, "+" both shifts
        // and reduces.
        assert_eq!(cs.len(), 1);
        let c = cs[0];
        assert_eq!(g.terminal_name(c.terminal), "+");
        assert!(matches!(c.kind, ConflictKind::ShiftReduce { .. }));
        assert!(c.display(&g).contains("shift/reduce"));
    }

    #[test]
    fn reduce_reduce_conflict_detected() {
        // Both a → x and b → x reducible on $.
        let (g, cs) = conflicts_of("s : a | b ; a : \"x\" ; b : \"x\" ;");
        assert_eq!(cs.len(), 1);
        assert!(matches!(cs[0].kind, ConflictKind::ReduceReduce { .. }));
        assert_eq!(g.terminal_name(cs[0].terminal), "$");
        assert!(cs[0].display(&g).contains("reduce/reduce"));
    }

    #[test]
    fn conflicts_sorted_by_state_then_terminal() {
        let (_, cs) = conflicts_of("e : e \"+\" e | e \"*\" e | \"x\" ;");
        let keys: Vec<_> = cs.iter().map(|c| (c.state, c.terminal)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert!(cs.len() >= 4, "two binary ops, two conflict states each");
    }
}
