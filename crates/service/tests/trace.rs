//! The `trace` op end to end: flight-recorder dumps over the wire,
//! per-stage breakdowns on slow requests, hostile filter handling, the
//! zero-observable-difference guarantee when tracing is armed, and the
//! stats/metrics consistency of the per-shard telemetry.
//!
//! Event-daemon tests are gated on `lalr_net::supported()`; the
//! determinism and disabled-recorder tests also run against the
//! thread-per-connection front end, so they hold everywhere.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use lalr_chaos::{Fault, FaultPlan, Trigger};
use lalr_service::client::{self, ClientReply};
use lalr_service::{
    Daemon, DaemonConfig, EventDaemon, GrammarFormat, ParseTarget, Request, TraceConfig,
    TraceFilter,
};

use serde_json::Value;

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

fn traced_config() -> DaemonConfig {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    };
    config.service.tracing = Some(TraceConfig::default());
    config
}

fn call(addr: &str, request: &Request) -> ClientReply {
    client::call(addr, request, None, Duration::from_secs(30)).expect("daemon reachable")
}

/// Sends raw request lines over one connection and returns the raw
/// response lines, exercising the strict per-connection serialization.
fn raw_lines(addr: &str, lines: &[&str]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        writeln!(stream, "{line}").expect("write request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        out.push(response.trim_end().to_string());
    }
    out
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

#[test]
fn slow_request_stage_breakdown_sums_to_its_total_latency() {
    if !lalr_net::supported() {
        return;
    }
    // A 40ms injected stall inside artifact resolution makes the
    // request decisively slower than any untraced bookkeeping, so the
    // recorded stages must account for (almost) all of the total.
    let mut config = traced_config();
    config.service.faults = FaultPlan::new(7)
        .rule("service.compile", Fault::Delay(40), Trigger::EveryNth(1))
        .build();
    let daemon = EventDaemon::start(config, 1).expect("bind loopback");
    let addr = daemon.addr().to_string();

    assert!(call(&addr, &compile_request()).is_ok());

    let reply = call(&addr, &Request::Trace(TraceFilter::default()));
    assert!(reply.is_ok(), "{}", reply.raw);
    assert_eq!(reply.value.get("enabled"), Some(&Value::Bool(true)));
    let traces = reply
        .value
        .get("traces")
        .and_then(Value::as_arr)
        .expect("traces array");
    let compile = traces
        .iter()
        .find(|t| t.get("op").and_then(Value::as_str) == Some("compile"))
        .expect("the compile was sampled");
    let total = u64_field(compile, "total_us");
    let sum = u64_field(compile, "stage_sum_us");
    assert!(total >= 40_000, "injected 40ms stall: total={total}us");
    assert!(
        sum as f64 >= total as f64 * 0.95 && sum <= total,
        "stage sum {sum}us must be within 5% of total {total}us"
    );
    // The stall sits inside resolution but outside the pipeline run, so
    // it lands in the cache stage; the write stage was measured too.
    let stages = compile.get("stages_us").expect("stages object");
    assert!(u64_field(stages, "cache") >= 40_000, "{stages:?}");

    // Filters compose over the same snapshot: an op filter that
    // matches nothing, and a slow_us bar above the request.
    let reply = call(
        &addr,
        &Request::Trace(TraceFilter {
            op: Some("parse".to_string()),
            ..TraceFilter::default()
        }),
    );
    assert_eq!(
        reply
            .value
            .get("traces")
            .and_then(Value::as_arr)
            .map(<[Value]>::len),
        Some(0)
    );
    let reply = call(
        &addr,
        &Request::Trace(TraceFilter {
            slow_us: Some(30_000),
            ..TraceFilter::default()
        }),
    );
    let slow = reply.value.get("traces").and_then(Value::as_arr).unwrap();
    assert!(
        slow.iter().all(|t| u64_field(t, "total_us") >= 30_000) && !slow.is_empty(),
        "{slow:?}"
    );

    call(&addr, &Request::Shutdown);
    daemon.join();
}

#[test]
fn hostile_trace_filters_get_structured_errors_over_the_wire() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = EventDaemon::start(traced_config(), 1).expect("bind loopback");
    let addr = daemon.addr().to_string();

    let responses = raw_lines(
        &addr,
        &[
            // Wrong types and negatives: structured errors, not closes.
            "{\"op\":\"trace\",\"op_filter\":42}",
            "{\"op\":\"trace\",\"errors_only\":\"yes\"}",
            "{\"op\":\"trace\",\"slow_us\":-5}",
            "{\"op\":\"trace\",\"limit\":\"all\"}",
            "{\"op\":\"trace\",\"op_filter\":\"frobnicate\"}",
            // u64::MAX overflows the wire format's exact-integer range
            // (2^53): a structured rejection, not a panic or a close.
            "{\"op\":\"trace\",\"slow_us\":18446744073709551615}",
            // The largest exactly-representable bar is accepted and
            // simply matches nothing.
            "{\"op\":\"trace\",\"slow_us\":4503599627370496}",
            // The connection survived all of the above.
            "{\"op\":\"stats\"}",
        ],
    );
    for bad in &responses[..6] {
        assert!(bad.contains("\"ok\":false"), "{responses:#?}");
        assert!(bad.contains("bad_request"), "{responses:#?}");
    }
    assert!(responses[4].contains("unknown op filter"), "{responses:#?}");
    assert!(responses[6].contains("\"ok\":true"), "{}", responses[6]);
    assert!(responses[6].contains("\"traces\":[]"), "{}", responses[6]);
    assert!(responses[7].contains("\"ok\":true"), "{}", responses[7]);

    call(&addr, &Request::Shutdown);
    daemon.join();
}

#[test]
fn trace_on_a_disabled_recorder_reports_disabled_not_error() {
    // Library-default config: no tracing. The op still answers (so
    // `lalrgen trace` can explain itself) but validates filters first.
    let daemon = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    })
    .expect("bind loopback");
    let addr = daemon.addr().to_string();

    let reply = call(&addr, &Request::Trace(TraceFilter::default()));
    assert!(reply.is_ok(), "{}", reply.raw);
    assert_eq!(reply.value.get("enabled"), Some(&Value::Bool(false)));
    assert_eq!(u64_field(&reply.value, "capacity"), 0);

    // Filter validation happens before the disabled check: a bogus op
    // name is a client mistake whether or not the recorder is armed.
    let reply = call(
        &addr,
        &Request::Trace(TraceFilter {
            op: Some("frobnicate".to_string()),
            ..TraceFilter::default()
        }),
    );
    assert!(!reply.is_ok());
    assert!(reply.raw.contains("unknown op filter"), "{}", reply.raw);

    call(&addr, &Request::Shutdown);
    daemon.join();
}

#[test]
fn traced_and_untraced_daemons_answer_byte_identically() {
    // Arming the flight recorder must be invisible on the wire: every
    // response byte-identical to an untraced daemon's, on both front
    // ends.
    let requests: Vec<String> = vec![
        lalr_service::protocol::request_to_line(&compile_request(), None),
        lalr_service::protocol::request_to_line(
            &Request::Classify {
                grammar: GRAMMAR.to_string(),
                format: GrammarFormat::Native,
            },
            None,
        ),
        lalr_service::protocol::request_to_line(
            &Request::Table {
                grammar: GRAMMAR.to_string(),
                format: GrammarFormat::Native,
                compressed: true,
            },
            None,
        ),
        lalr_service::protocol::request_to_line(
            &Request::Parse {
                target: ParseTarget::Text {
                    grammar: GRAMMAR.to_string(),
                    format: GrammarFormat::Native,
                },
                documents: vec!["x + x".to_string(), "x +".to_string()],
                recover: false,
                sync: Vec::new(),
            },
            None,
        ),
    ];
    let request_lines: Vec<&str> = requests.iter().map(String::as_str).collect();

    let mut transcripts: Vec<Vec<String>> = Vec::new();
    for traced in [false, true] {
        let config = if traced {
            traced_config()
        } else {
            DaemonConfig {
                addr: "127.0.0.1:0".to_string(),
                ..DaemonConfig::default()
            }
        };
        if lalr_net::supported() {
            let daemon = EventDaemon::start(config, 2).expect("bind loopback");
            let addr = daemon.addr().to_string();
            transcripts.push(raw_lines(&addr, &request_lines));
            call(&addr, &Request::Shutdown);
            daemon.join();
        } else {
            let daemon = Daemon::start(config).expect("bind loopback");
            let addr = daemon.addr().to_string();
            transcripts.push(raw_lines(&addr, &request_lines));
            call(&addr, &Request::Shutdown);
            daemon.join();
        }
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "tracing must not change a single response byte"
    );
}

#[test]
fn shard_counters_in_stats_agree_with_the_metrics_exposition() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = EventDaemon::start(traced_config(), 2).expect("bind loopback");
    let addr = daemon.addr().to_string();
    assert!(call(&addr, &compile_request()).is_ok());

    // Both snapshots over ONE connection, so no accept lands between
    // them and the per-shard counters must agree exactly.
    let responses = raw_lines(&addr, &["{\"op\":\"stats\"}", "{\"op\":\"metrics\"}"]);
    let stats: Value = serde_json::from_str(&responses[0]).expect("stats parses");
    let metrics: Value = serde_json::from_str(&responses[1]).expect("metrics parses");
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("exposition text");

    let shards = stats
        .get("shards")
        .and_then(Value::as_arr)
        .expect("shards section");
    assert_eq!(shards.len(), 2);
    let accepts_total: u64 = shards.iter().map(|s| u64_field(s, "accepts")).sum();
    let connections_total: u64 = shards.iter().map(|s| u64_field(s, "connections")).sum();
    // Two connections so far (the compile's and this one), one still
    // open — exact equality because accepts increment at install time,
    // strictly before any request on that connection executes.
    assert_eq!(accepts_total, 2, "{shards:?}");
    assert_eq!(connections_total, 1, "{shards:?}");

    for shard in shards {
        let idx = u64_field(shard, "shard");
        for (stat_key, family) in [
            ("accepts", "lalr_shard_accepts_total"),
            ("connections", "lalr_shard_connections"),
            ("timer_fires", "lalr_shard_timer_fires_total"),
        ] {
            let sample = format!("{family}{{shard=\"{idx}\"}} {}", u64_field(shard, stat_key));
            assert!(text.contains(&sample), "missing {sample:?} in:\n{text}");
        }
    }
    // Cumulative families only move forward between the two snapshots.
    for shard in shards {
        let idx = u64_field(shard, "shard");
        let prefix = format!("lalr_shard_epoll_waits_total{{shard=\"{idx}\"}} ");
        let exposed: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .expect("epoll_waits sample")
            .parse()
            .expect("integer sample");
        assert!(exposed >= u64_field(shard, "epoll_waits"), "{text}");
    }
    // The tracing families render because the recorder is armed.
    assert!(
        text.contains("lalr_stage_seconds_total{stage=\"compile\"}"),
        "{text}"
    );
    assert!(text.contains("lalr_traces_sampled_total"), "{text}");
    assert!(text.contains("lalr_build_info{"), "{text}");

    call(&addr, &Request::Shutdown);
    daemon.join();
}
