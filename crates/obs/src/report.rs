//! Structured output of a [`CollectingRecorder`](crate::CollectingRecorder)
//! run, plus the deterministic flat-text exporter.

use std::fmt::Write as _;

/// One completed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name, as passed to `span_enter`.
    pub name: &'static str,
    /// Dense thread index: 0 is the first thread that recorded
    /// (the primary pipeline thread), workers follow in first-record
    /// order.
    pub tid: usize,
    /// Nesting depth on its thread: 0 for top-level spans.
    pub depth: usize,
    /// Start, in nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Allocations performed while the span was open (0 without an
    /// allocation probe). Inclusive of child spans.
    pub allocs: u64,
    /// Bytes allocated while the span was open (0 without a probe).
    pub bytes: u64,
}

impl SpanEvent {
    /// End of the span, in nanoseconds since the recorder was created.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Aggregate over every occurrence of one phase name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Phase name.
    pub name: &'static str,
    /// How many spans with this name completed.
    pub calls: u64,
    /// Total wall time across those spans, nanoseconds.
    pub total_ns: u64,
    /// Total allocations across those spans (probe-dependent).
    pub allocs: u64,
    /// Total bytes allocated across those spans (probe-dependent).
    pub bytes: u64,
}

/// Everything a [`CollectingRecorder`](crate::CollectingRecorder)
/// gathered, aggregated for reporting.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Top-level phases of the primary thread (tid 0, depth 0),
    /// name-sorted. These partition the pipeline: their times sum to
    /// (almost all of) [`PhaseReport::total_ns`], with no
    /// double-counting of nested or worker-thread spans.
    pub phases: Vec<PhaseSummary>,
    /// Nested and worker-thread spans (depth > 0 or tid > 0),
    /// name-sorted. Their time is already included in an enclosing
    /// top-level phase (nested) or overlaps one (workers).
    pub nested: Vec<PhaseSummary>,
    /// All counters, key-sorted. Deterministic for a fixed input.
    pub counters: Vec<(&'static str, u64)>,
    /// Every completed span, ordered by (start, tid).
    pub events: Vec<SpanEvent>,
    /// Wall time from recorder creation to report extraction,
    /// nanoseconds.
    pub total_ns: u64,
}

impl PhaseReport {
    /// Looks up a top-level phase by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Sum of top-level phase times — the portion of
    /// [`PhaseReport::total_ns`] attributed to a named phase.
    pub fn phase_sum_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }

    /// The deterministic key-sorted flat text format.
    ///
    /// Sections (`phases`, `nested spans`, `counters`) are name-sorted
    /// within themselves; counters carry no timing, so that section is
    /// byte-identical across runs on the same input.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>8} {:>10} {:>10}",
            "phase", "calls", "time", "share", "allocs", "bytes"
        );
        let total = self.total_ns.max(1);
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>7.1}% {:>10} {:>10}",
                p.name,
                p.calls,
                fmt_ns(p.total_ns),
                100.0 * p.total_ns as f64 / total as f64,
                p.allocs,
                p.bytes,
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>7.1}%",
            "(phase sum / wall)",
            "",
            fmt_ns(self.phase_sum_ns()),
            100.0 * self.phase_sum_ns() as f64 / total as f64,
        );
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12}",
            "(wall)",
            "",
            fmt_ns(self.total_ns)
        );
        if !self.nested.is_empty() {
            let _ = writeln!(out, "\nnested spans");
            for p in &self.nested {
                let _ = writeln!(
                    out,
                    "  {:<26} {:>7} {:>12}",
                    p.name,
                    p.calls,
                    fmt_ns(p.total_ns)
                );
            }
        }
        // `kernel.*` counters (emitted by the bitset kernel lanes in the
        // digraph sweep and LA batch) get their own section so profile
        // readers can eyeball kernel work without scanning the pipeline
        // counters; both lists stay key-sorted and deterministic.
        let (kernel, pipeline): (Vec<_>, Vec<_>) = self
            .counters
            .iter()
            .partition(|(name, _)| name.starts_with("kernel."));
        if !pipeline.is_empty() {
            let _ = writeln!(out, "\ncounters");
            for (name, value) in pipeline {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        if !kernel.is_empty() {
            let _ = writeln!(out, "\nkernel counters");
            for (name, value) in kernel {
                let _ = writeln!(out, "  {name} = {value}");
            }
        }
        out
    }
}

/// Builds the two name-sorted aggregates from a finished event list.
pub(crate) fn summarize(events: &[SpanEvent]) -> (Vec<PhaseSummary>, Vec<PhaseSummary>) {
    let mut top: Vec<PhaseSummary> = Vec::new();
    let mut nested: Vec<PhaseSummary> = Vec::new();
    for e in events {
        let bucket = if e.tid == 0 && e.depth == 0 {
            &mut top
        } else {
            &mut nested
        };
        match bucket.iter_mut().find(|p| p.name == e.name) {
            Some(p) => {
                p.calls += 1;
                p.total_ns += e.dur_ns;
                p.allocs += e.allocs;
                p.bytes += e.bytes;
            }
            None => bucket.push(PhaseSummary {
                name: e.name,
                calls: 1,
                total_ns: e.dur_ns,
                allocs: e.allocs,
                bytes: e.bytes,
            }),
        }
    }
    top.sort_by_key(|p| p.name);
    nested.sort_by_key(|p| p.name);
    (top, nested)
}

/// Human-readable duration: `428ns`, `12.3us`, `4.56ms`, `1.23s`.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &'static str, tid: usize, depth: usize, dur: u64) -> SpanEvent {
        SpanEvent {
            name,
            tid,
            depth,
            start_ns: 0,
            dur_ns: dur,
            allocs: 0,
            bytes: 0,
        }
    }

    #[test]
    fn summarize_splits_top_level_from_nested() {
        let events = [
            event("b", 0, 0, 10),
            event("a", 0, 0, 5),
            event("a", 0, 0, 7),
            event("inner", 0, 1, 3),
            event("worker", 1, 0, 4),
        ];
        let (top, nested) = summarize(&events);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].name, "a"); // name-sorted
        assert_eq!(top[0].calls, 2);
        assert_eq!(top[0].total_ns, 12);
        assert_eq!(top[1].name, "b");
        let names: Vec<_> = nested.iter().map(|p| p.name).collect();
        assert_eq!(names, ["inner", "worker"]);
    }

    #[test]
    fn durations_format_across_magnitudes() {
        assert_eq!(fmt_ns(428), "428ns");
        assert_eq!(fmt_ns(12_300), "12.3us");
        assert_eq!(fmt_ns(4_560_000), "4.56ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
    }
}
