//! The request engine: a worker pool over the cache.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lalr_chaos::{Fault, FaultInjector, FaultPointStats};
use lalr_core::{DigraphStats, Parallelism, RelationStats};
use lalr_obs::{ActiveTrace, CollectingRecorder, FlightRecorder, RequestTrace, STAGE_COUNT};
use lalr_runtime::{Parser, Token};

use crate::artifact::{CompiledArtifact, GrammarFormat};
use crate::cache::{ArtifactCache, CacheConfig, CacheOutcome, CacheStats};
use crate::error::ServiceError;
use crate::fingerprint::format_fingerprint;
use crate::telemetry::{DaemonCounters, ShardCounters, ShardStatsSnapshot};

/// Stage indices into [`lalr_obs::STAGE_NAMES`] / an [`ActiveTrace`].
pub(crate) const STAGE_QUEUE: usize = 0;
pub(crate) const STAGE_CACHE: usize = 1;
pub(crate) const STAGE_COMPILE: usize = 2;
pub(crate) const STAGE_PARSE: usize = 3;
pub(crate) const STAGE_WRITE: usize = 4;

/// Upper bounds (µs) of the fixed latency histogram buckets; the sixth
/// bucket is overflow.
pub const LATENCY_BOUNDS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Every protocol op, in wire/stats order (the index into the per-op
/// counter arrays).
pub const OPS: [&str; 9] = [
    "compile", "classify", "table", "parse", "stats", "metrics", "trace", "health", "shutdown",
];

/// The compile-pipeline phases the service aggregates per request
/// (top-level spans of [`CompiledArtifact::compile_recorded`]).
pub const PHASE_NAMES: [&str; 8] = [
    "parse",
    "lr0.build",
    "relations.build",
    "digraph.reads",
    "digraph.includes",
    "la.union",
    "classify",
    "tables.build",
];

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Size of the worker pool (the existing [`Parallelism`] config,
    /// reused: one worker per configured thread).
    pub workers: Parallelism,
    /// Thread count for *each* compile pipeline run (usually sequential;
    /// concurrency comes from the pool).
    pub pipeline: Parallelism,
    /// Artifact cache configuration; `None` disables caching entirely
    /// (every request compiles — the load generator's cold arm).
    pub cache: Option<CacheConfig>,
    /// Maximum grammar/input payload size in bytes.
    pub max_request_bytes: usize,
    /// Maximum size of a *single document* in a parse batch. An oversized
    /// document gets a per-document error verdict; the rest of the batch
    /// still parses (unlike `max_request_bytes`, which fails the whole
    /// request).
    pub max_document_bytes: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Option<Duration>,
    /// Bound on requests queued but not yet picked up by a worker.
    /// [`Service::call`] never blocks on a full queue: the request is
    /// shed with an [`ServiceError::Overloaded`] response instead, so a
    /// saturated service degrades into fast, explicit rejections rather
    /// than unbounded memory growth and client hangs.
    pub max_pending: usize,
    /// Fault injector threaded through the whole stack ([`Service::new`]
    /// hands this same injector to the [`ArtifactCache`], so one plan
    /// covers both the `service.compile` and `cache.storm` failpoints).
    /// Disabled by default — and free when disabled.
    pub faults: FaultInjector,
    /// Directory for the persistent artifact store. When set (and
    /// caching is enabled), [`Service::new`] opens a
    /// [`lalr_store::Store`] there — sharing this config's fault
    /// injector, so one chaos plan arms `store.write`/`store.read` along
    /// with the in-process failpoints — and hands it to the cache as its
    /// disk tier.
    pub store_dir: Option<std::path::PathBuf>,
    /// Graceful-degradation hysteresis: when the pending queue sheds
    /// this many requests in a row the service flips to `degraded` and
    /// rejects cold compiles (cache and store hits still serve) until
    /// pressure subsides. See [`HealthConfig`].
    pub health: HealthConfig,
    /// Request-scoped tracing. `None` (the default) disables the flight
    /// recorder entirely: no trace IDs are assigned, no stages are
    /// stamped, and the hot path is allocation-identical to a build
    /// without tracing (pinned by the `trace_overhead` regression
    /// test). `Some` arms a [`FlightRecorder`] with the given capacity
    /// and sampling period.
    pub tracing: Option<TraceConfig>,
}

/// Flight-recorder knobs ([`ServiceConfig::tracing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity: how many recent [`RequestTrace`]s are kept
    /// (rounded up to a power of two, minimum 8).
    pub capacity: usize,
    /// Sampling period: one request in `sample_every` is traced
    /// (clamped to at least 1; 1 traces every request).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 256,
            sample_every: 1,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: Parallelism::available(),
            pipeline: Parallelism::sequential(),
            cache: Some(CacheConfig::default()),
            max_request_bytes: 1 << 20,
            max_document_bytes: 256 << 10,
            default_deadline: None,
            max_pending: 1024,
            faults: FaultInjector::disabled(),
            store_dir: None,
            health: HealthConfig::default(),
            tracing: None,
        }
    }
}

/// Hysteresis thresholds for the `ok → degraded → ok` health state
/// machine ([`ServiceConfig::health`]).
///
/// Degradation trips on *consecutive* queue sheds — one burst that
/// sheds a single request does not flip the state — and recovery
/// requires the queue to stay calm (at most half full) across
/// `recover_after_ok` consecutive accepted requests, so the state does
/// not flap at the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive queue sheds that flip the service to `degraded`.
    /// 0 disables degradation entirely (the binary shed behavior).
    pub degrade_after_sheds: u64,
    /// Consecutive calm accepted requests (queue at most half full)
    /// that flip a degraded service back to `ok` (clamped to ≥ 1).
    pub recover_after_ok: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degrade_after_sheds: 3,
            recover_after_ok: 8,
        }
    }
}

/// The daemon health state reported by the `health` op and the
/// `lalr_health_state` metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Serving everything.
    #[default]
    Ok,
    /// Under sustained overload: cache/store hits and
    /// fingerprint-addressed parses still serve, cold compiles are
    /// rejected with a retryable `degraded` error.
    Degraded,
    /// Shutting down: no new connections, in-flight work drains.
    Draining,
}

impl HealthState {
    /// Stable wire name (`ok`, `degraded`, `draining`).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }

    /// Numeric gauge value for the metrics exposition (0/1/2).
    pub fn code(&self) -> u8 {
        match self {
            HealthState::Ok => 0,
            HealthState::Degraded => 1,
            HealthState::Draining => 2,
        }
    }

    fn from_code(code: u8) -> HealthState {
        match code {
            1 => HealthState::Degraded,
            2 => HealthState::Draining,
            _ => HealthState::Ok,
        }
    }
}

/// Per-reason admission-rejection counters (the label set of
/// `lalr_admission_rejects_total`). All zero unless a daemon front end
/// registered its [`DaemonCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionRejects {
    /// Connections rejected at the global connection cap.
    pub conn_cap: u64,
    /// Connections rejected by the per-peer connection quota.
    pub peer_quota: u64,
    /// Request lines rejected by the token-bucket rate limit.
    pub rate_limit: u64,
    /// Connections closed for failing the write-drain budget.
    pub slow_client: u64,
    /// Request lines rejected by the `daemon.admit` failpoint.
    pub failpoint: u64,
}

impl AdmissionRejects {
    /// Sum over every rejection reason.
    pub fn total(&self) -> u64 {
        self.conn_cap + self.peer_quota + self.rate_limit + self.slow_client + self.failpoint
    }
}

/// Self-healing telemetry in a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthStats {
    /// Current health state.
    pub state: HealthState,
    /// `ok → degraded` transitions since start.
    pub degraded_transitions: u64,
    /// Event-loop shards respawned after a panic.
    pub shard_restarts: u64,
    /// Per-reason admission rejections.
    pub admission: AdmissionRejects,
    /// Configured per-peer connection quota (0 = unlimited).
    pub max_connections_per_peer: u64,
    /// Configured request-rate limit per second (0 = unlimited).
    pub rate_limit_per_sec: u64,
}

/// The `health` op's response payload: state, quotas, and restart
/// counts, cheap enough to poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Current health state (`ok`, `degraded`, `draining`).
    pub state: String,
    /// Requests waiting in the queue right now.
    pub queue_depth: usize,
    /// The configured pending-queue bound.
    pub queue_limit: usize,
    /// Requests shed at the queue bound since start.
    pub shed: u64,
    /// `ok → degraded` transitions since start.
    pub degraded_transitions: u64,
    /// Event-loop shards respawned after a panic.
    pub shard_restarts: u64,
    /// Configured per-peer connection quota (0 = unlimited).
    pub max_connections_per_peer: u64,
    /// Configured request-rate limit per second (0 = unlimited).
    pub rate_limit_per_sec: u64,
    /// Per-reason admission rejections.
    pub admission_rejects: AdmissionRejects,
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile a grammar (and cache the artifact).
    Compile {
        /// Grammar source text.
        grammar: String,
        /// How to read the text.
        format: GrammarFormat,
    },
    /// Compile (or fetch) and report the adequacy classification.
    Classify {
        /// Grammar source text.
        grammar: String,
        /// How to read the text.
        format: GrammarFormat,
    },
    /// Compile (or fetch) and render the ACTION/GOTO table.
    Table {
        /// Grammar source text.
        grammar: String,
        /// How to read the text.
        format: GrammarFormat,
        /// Also report default-reduction compression statistics.
        compressed: bool,
    },
    /// Resolve an artifact once and parse a **batch** of documents
    /// against it (each document is a whitespace-separated sequence of
    /// terminal names).
    Parse {
        /// Which artifact to parse against.
        target: ParseTarget,
        /// The documents, parsed in order against the one resolved
        /// artifact.
        documents: Vec<String>,
        /// Collect multiple diagnostics per document with panic-mode
        /// recovery ([`Parser::parse_with_recovery`]) instead of stopping
        /// at the first error.
        recover: bool,
        /// Terminal names used as synchronization tokens in recovery
        /// mode (ignored unless `recover`).
        sync: Vec<String>,
    },
    /// Service statistics snapshot.
    Stats,
    /// Prometheus-style text exposition of the service metrics.
    Metrics,
    /// Dump the flight recorder: recent request traces, filtered.
    Trace(TraceFilter),
    /// Health probe: state machine position, quotas, restart counts.
    Health,
    /// Ask the daemon to stop accepting connections and exit.
    Shutdown,
}

/// Which flight-recorder entries a `trace` request asks for. All
/// filters compose with AND; the default selects everything.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceFilter {
    /// Keep only traces of this op (an [`OPS`] name).
    pub op: Option<String>,
    /// Keep only traces of requests that answered with an error.
    pub errors_only: bool,
    /// Keep only traces at least this slow (total latency, µs).
    pub slow_us: Option<u64>,
    /// Return at most this many traces (newest first).
    pub limit: Option<usize>,
}

impl Request {
    /// Stable op name (wire format and stats key).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Compile { .. } => "compile",
            Request::Classify { .. } => "classify",
            Request::Table { .. } => "table",
            Request::Parse { .. } => "parse",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace(_) => "trace",
            Request::Health => "health",
            Request::Shutdown => "shutdown",
        }
    }

    fn payload_len(&self) -> usize {
        match self {
            Request::Compile { grammar, .. } | Request::Classify { grammar, .. } => grammar.len(),
            Request::Table { grammar, .. } => grammar.len(),
            // Documents are bounded individually (`max_document_bytes`),
            // so an oversized document degrades to a per-document error
            // verdict instead of failing the whole batch.
            Request::Parse { target, .. } => match target {
                ParseTarget::Text { grammar, .. } => grammar.len(),
                ParseTarget::Fingerprint(_) => 0,
            },
            Request::Stats
            | Request::Metrics
            | Request::Trace(_)
            | Request::Health
            | Request::Shutdown => 0,
        }
    }
}

/// How a parse request names its artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTarget {
    /// Grammar source text, compiled (or fetched) like the other ops.
    Text {
        /// Grammar source text.
        grammar: String,
        /// How to read the text.
        format: GrammarFormat,
    },
    /// The fingerprint a prior compile reported; resolved straight from
    /// the cache with no text transfer. `not_found` when the artifact was
    /// never compiled here or has been evicted.
    Fingerprint(u64),
}

/// Index of an op name in [`OPS`] (unknown names map to the last slot).
fn op_index(op: &str) -> usize {
    OPS.iter().position(|&o| o == op).unwrap_or(OPS.len() - 1)
}

/// Compile response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileSummary {
    /// Hex fingerprint of the normalized grammar (the cache key).
    pub fingerprint: String,
    /// Whether this response was served from the cache.
    pub cached: bool,
    /// LR(0) state count.
    pub states: usize,
    /// Production count (including the augmented start).
    pub productions: usize,
    /// Terminal count (including `$`).
    pub terminals: usize,
    /// Unresolved LALR(1) conflicts.
    pub conflicts: usize,
    /// Grammar class string (`LR(0)`, `SLR(1)`, …).
    pub class: String,
    /// Estimated artifact size in bytes (cache accounting unit).
    pub bytes: usize,
    /// Sizes of the four look-ahead relations.
    pub relations: RelationStats,
    /// SCC structure of the `reads` traversal.
    pub reads: DigraphStats,
    /// SCC structure of the `includes` traversal.
    pub includes: DigraphStats,
}

/// Classify response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifySummary {
    /// Grammar class string.
    pub class: String,
    /// Conflicts under no look-ahead.
    pub lr0_conflicts: usize,
    /// Conflicts under SLR(1) look-aheads.
    pub slr_conflicts: usize,
    /// Conflicts under NQLALR(1) look-aheads.
    pub nqlalr_conflicts: usize,
    /// Conflicts under LALR(1) look-aheads.
    pub lalr_conflicts: usize,
    /// Conflicts in the canonical LR(1) machine.
    pub lr1_conflicts: usize,
    /// `reads`-cycle detected (not LR(k) for any k).
    pub not_lr_k: bool,
}

/// Table response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSummary {
    /// The rendered dense ACTION/GOTO matrix.
    pub text: String,
    /// Number of precedence/default conflict resolutions applied.
    pub resolutions: usize,
    /// Dense non-error ACTION entries.
    pub action_entries: usize,
    /// Explicit entries in the compressed table (when requested).
    pub compressed_entries: Option<usize>,
}

/// Parse response payload: one verdict per document, all served from a
/// single artifact resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBatchSummary {
    /// Hex fingerprint of the artifact the batch was parsed against.
    pub fingerprint: String,
    /// Whether the artifact came from the cache (always `true` for
    /// fingerprint-addressed requests).
    pub cached: bool,
    /// Per-document verdicts, in request order.
    pub docs: Vec<DocVerdict>,
}

/// The verdict for one document of a parse batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocVerdict {
    /// Whether the document is a sentence of the grammar.
    pub accepted: bool,
    /// Leaf count of the parse tree (0 when rejected).
    pub leaves: u64,
    /// Interior node count of the parse tree (0 when rejected).
    pub nodes: u64,
    /// S-expression rendering of the parse tree (accepted only).
    pub tree: Option<String>,
    /// The first (or only) error (rejected only).
    pub error: Option<DocError>,
    /// Total diagnostics; exceeds 1 only in recovery mode.
    pub error_count: u64,
}

/// A positioned per-document parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocError {
    /// Human-readable message.
    pub message: String,
    /// Where the error points: the offending token's offset, or — at end
    /// of input — one past the end of the last consumed token.
    pub offset: u64,
    /// The offending token text, absent at end of input.
    pub found: Option<String>,
    /// Terminal names that would have been accepted.
    pub expected: Vec<String>,
}

impl DocVerdict {
    fn rejected(error: DocError) -> DocVerdict {
        DocVerdict {
            accepted: false,
            leaves: 0,
            nodes: 0,
            tree: None,
            error: Some(error),
            error_count: 1,
        }
    }
}

/// Aggregate service statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Total requests handled (all ops).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Per-op request counts, indexed like [`OPS`].
    pub by_op: [u64; 9],
    /// Per-op *error* response counts, indexed like [`OPS`].
    pub errors_by_op: [u64; 9],
    /// Fixed-bucket latency histogram over all ops (bounds
    /// [`LATENCY_BOUNDS_US`], last bucket is overflow).
    pub latency_buckets: [u64; 6],
    /// Per-op latency histograms (same buckets), indexed like [`OPS`].
    pub latency_by_op: [[u64; 6]; 9],
    /// Per-op total latency in microseconds (the histogram `_sum`).
    pub latency_sum_us: [u64; 9],
    /// Per-phase compile-pipeline call counts, indexed like
    /// [`PHASE_NAMES`].
    pub phase_calls: [u64; 8],
    /// Per-phase compile-pipeline wall time in nanoseconds, indexed like
    /// [`PHASE_NAMES`].
    pub phase_ns: [u64; 8],
    /// Parse-lane counters (batches, documents, cache amortization).
    pub parse: ParseLaneStats,
    /// Cache counters (absent when caching is disabled).
    pub cache: Option<CacheStats>,
    /// Worker pool size.
    pub workers: usize,
    /// Milliseconds since the service started.
    pub uptime_ms: u64,
    /// Requests shed because the pending queue was at its bound.
    pub shed: u64,
    /// Requests waiting in the queue right now (a gauge, not cumulative).
    pub queue_depth: usize,
    /// The configured pending-queue bound ([`ServiceConfig::max_pending`]).
    pub queue_limit: usize,
    /// Per-rule fault-injection counters (empty unless a chaos plan is
    /// armed; see `lalr_chaos`).
    pub faults: Vec<FaultPointStats>,
    /// Per-shard event-loop telemetry (empty for the threaded front
    /// end, one entry per epoll shard under the event daemon).
    pub shards: Vec<ShardStatsSnapshot>,
    /// Health state machine and admission-control telemetry.
    pub health: HealthStats,
    /// Flight-recorder counters ([`TracingStats::enabled`] is `false`
    /// when [`ServiceConfig::tracing`] is `None`).
    pub tracing: TracingStats,
}

/// Flight-recorder counters in a [`StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TracingStats {
    /// Whether a flight recorder is armed.
    pub enabled: bool,
    /// Ring capacity (0 when disabled).
    pub capacity: usize,
    /// Sampling period (0 when disabled).
    pub sample_every: u64,
    /// Traces recorded since start (may exceed capacity).
    pub sampled: u64,
    /// Cumulative per-stage nanoseconds across sampled requests,
    /// indexed like [`lalr_obs::STAGE_NAMES`].
    pub stage_ns: [u64; STAGE_COUNT],
}

/// The `trace` op's response payload: a filtered flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    /// Whether a flight recorder is armed (when `false` the dump is
    /// empty but the response is still `ok`).
    pub enabled: bool,
    /// Ring capacity (0 when disabled).
    pub capacity: usize,
    /// Sampling period (0 when disabled).
    pub sample_every: u64,
    /// Traces recorded since start (before filtering; may exceed
    /// capacity).
    pub recorded: u64,
    /// The matching traces, newest first.
    pub traces: Vec<RequestTrace>,
}

/// Parse-lane counters: how many documents rode on how few artifact
/// resolutions (the cache-amortization figure the batch op exists for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseLaneStats {
    /// Parse batches that resolved an artifact.
    pub batches: u64,
    /// Documents parsed across all batches.
    pub documents: u64,
    /// Documents accepted.
    pub accepted: u64,
    /// Documents rejected (syntax error, unknown terminal, oversized).
    pub rejected: u64,
    /// Artifact resolutions performed for parse batches (one per batch;
    /// `documents / resolutions` is the amortization ratio).
    pub resolutions: u64,
}

/// One protocol response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful compile.
    Compile(CompileSummary),
    /// Successful classification.
    Classify(ClassifySummary),
    /// Rendered table.
    Table(TableSummary),
    /// Parse verdicts, one per document in the batch.
    Parse(ParseBatchSummary),
    /// Statistics snapshot.
    Stats(Box<StatsSnapshot>),
    /// Prometheus-style text exposition.
    Metrics(String),
    /// Flight-recorder dump.
    Trace(Box<TraceDump>),
    /// Health probe answer.
    Health(HealthReport),
    /// Shutdown acknowledged.
    Shutdown,
    /// Structured failure.
    Error(ServiceError),
}

impl Response {
    /// `true` for non-error responses.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error(_))
    }
}

/// How a finished job hands its response back: a blocking caller parks
/// on a channel ([`Service::call`]), an event loop registers a callback
/// that runs on the worker thread ([`Service::submit`]).
enum Reply {
    Sync(mpsc::Sender<Response>),
    Callback(Box<dyn FnOnce(Response) + Send>),
}

impl Reply {
    fn deliver(self, response: Response) {
        match self {
            // A dropped receiver (caller gave up) is not an error.
            Reply::Sync(tx) => drop(tx.send(response)),
            Reply::Callback(f) => f(response),
        }
    }
}

struct Job {
    request: Request,
    deadline: Option<Instant>,
    accepted_at: Instant,
    reply: Reply,
    /// The flight-recorder accumulator when this request was sampled.
    /// The worker stamps the queue stage and the pipeline stamps
    /// cache/compile/parse; whoever began the trace finishes it.
    trace: Option<Arc<ActiveTrace>>,
}

struct Inner {
    config: ServiceConfig,
    cache: Option<ArtifactCache>,
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    deadline_exceeded: AtomicU64,
    shed: AtomicU64,
    queue_depth: AtomicUsize,
    by_op: [AtomicU64; 9],
    errors_by_op: [AtomicU64; 9],
    latency: [AtomicU64; 6],
    latency_by_op: [[AtomicU64; 6]; 9],
    latency_sum_us: [AtomicU64; 9],
    phase_calls: [AtomicU64; 8],
    phase_ns: [AtomicU64; 8],
    parse_batches: AtomicU64,
    parse_documents: AtomicU64,
    parse_accepted: AtomicU64,
    parse_rejected: AtomicU64,
    parse_resolutions: AtomicU64,
    /// The flight recorder; `None` when tracing is disabled (the
    /// zero-cost path: every trace hook starts with this check).
    tracer: Option<FlightRecorder>,
    /// Cumulative per-stage nanoseconds across sampled requests.
    stage_ns: [AtomicU64; STAGE_COUNT],
    /// Per-shard event-loop counters, registered once by the event
    /// front end (empty for in-process and threaded callers).
    shards: std::sync::OnceLock<Vec<Arc<ShardCounters>>>,
    /// Daemon self-healing counters (shard restarts, admission
    /// rejections), registered once by whichever front end serves this
    /// service. Absent for in-process callers.
    daemon: std::sync::OnceLock<Arc<DaemonCounters>>,
    /// Health state machine position ([`HealthState::code`] values).
    health: AtomicU8,
    /// Consecutive queue sheds (degradation trigger).
    shed_streak: AtomicU64,
    /// Consecutive calm accepted requests while degraded (recovery
    /// trigger).
    calm_streak: AtomicU64,
    /// `ok → degraded` transitions since start.
    degraded_transitions: AtomicU64,
}

/// The compilation service: a worker pool executing [`Request`]s against
/// the shared [`ArtifactCache`].
///
/// # Examples
///
/// ```
/// use lalr_service::{Request, Response, Service, ServiceConfig, GrammarFormat};
///
/// let service = Service::new(ServiceConfig::default());
/// let r = service.call(
///     Request::Compile {
///         grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
///         format: GrammarFormat::Native,
///     },
///     None,
/// );
/// match r {
///     Response::Compile(c) => assert_eq!(c.conflicts, 0),
///     other => panic!("{other:?}"),
/// }
/// ```
pub struct Service {
    inner: Arc<Inner>,
    tx: Mutex<Option<mpsc::SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.inner.config.workers.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Service {
    /// Starts the worker pool.
    pub fn new(config: ServiceConfig) -> Service {
        // One injector per stack: the cache shares the service's plan so
        // a single spec arms `service.compile` and `cache.storm` alike —
        // and, when a store directory is configured, `store.write` and
        // `store.read` too.
        let cache = config.cache.clone().map(|mut c| {
            c.faults = config.faults.clone();
            if let Some(dir) = &config.store_dir {
                let store = lalr_store::Store::with_faults(dir, config.faults.clone())
                    .expect("open artifact store directory");
                c.store = Some(Arc::new(store));
            }
            ArtifactCache::new(c)
        });
        let inner = Arc::new(Inner {
            cache,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            by_op: Default::default(),
            errors_by_op: Default::default(),
            latency: Default::default(),
            latency_by_op: std::array::from_fn(|_| Default::default()),
            latency_sum_us: Default::default(),
            phase_calls: Default::default(),
            phase_ns: Default::default(),
            parse_batches: AtomicU64::new(0),
            parse_documents: AtomicU64::new(0),
            parse_accepted: AtomicU64::new(0),
            parse_rejected: AtomicU64::new(0),
            parse_resolutions: AtomicU64::new(0),
            tracer: config
                .tracing
                .map(|t| FlightRecorder::new(t.capacity, t.sample_every)),
            stage_ns: Default::default(),
            shards: std::sync::OnceLock::new(),
            daemon: std::sync::OnceLock::new(),
            health: AtomicU8::new(0),
            shed_streak: AtomicU64::new(0),
            calm_streak: AtomicU64::new(0),
            degraded_transitions: AtomicU64::new(0),
            config,
        });
        // A rendezvous queue bounded at `max_pending`: `try_send` makes
        // overload visible (shed + explicit error) instead of unbounded.
        let (tx, rx) = mpsc::sync_channel::<Job>(inner.config.max_pending.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..inner.config.workers.threads())
            .map(|i| {
                let rx = Arc::clone(&rx);
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lalr-service-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            inner,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        }
    }

    /// Submits a request and blocks for the response. `deadline` bounds
    /// queueing plus execution; `None` falls back to the configured
    /// default. A missed deadline yields a `deadline` error response
    /// (checked when the request is dequeued and again after execution —
    /// a compile in progress is not interrupted). When the pending queue
    /// is at [`ServiceConfig::max_pending`] the request is **shed**
    /// immediately with an `overloaded` error rather than queued.
    pub fn call(&self, request: Request, deadline: Option<Duration>) -> Response {
        let accepted_at = Instant::now();
        let op = request.op();
        let trace = self.begin_trace(op, 0);
        let (reply_tx, reply_rx) = mpsc::channel();
        if let Err(e) = self.enqueue(
            request,
            deadline,
            accepted_at,
            Reply::Sync(reply_tx),
            trace.clone(),
        ) {
            // Failed requests are observations too: a shed, rejected, or
            // orphaned call still lands in the histogram and error
            // counters.
            let response = Response::Error(e);
            self.inner.record(op, &response, accepted_at.elapsed());
            if let Some(trace) = &trace {
                trace.set_error();
                self.finish_trace(trace, accepted_at.elapsed());
            }
            return response;
        }
        let response = reply_rx.recv().unwrap_or_else(|_| {
            let response = Response::Error(ServiceError::Unavailable(
                "worker terminated before replying".to_string(),
            ));
            self.inner.record(op, &response, accepted_at.elapsed());
            response
        });
        if let Some(trace) = &trace {
            if !response.is_ok() {
                trace.set_error();
            }
            self.finish_trace(trace, accepted_at.elapsed());
        }
        response
    }

    /// Submits a request without blocking: `on_done` receives the
    /// response **exactly once** — on a worker thread for executed
    /// requests, or inline on this thread when the request is shed,
    /// rejected, or orphaned by shutdown. The same deadline and shedding
    /// semantics as [`Service::call`] apply; the callback must not block
    /// for long (it runs on a pool worker) — the event-loop front end
    /// uses it to park the response on a completion queue and wake its
    /// poller.
    pub fn submit<F>(&self, request: Request, deadline: Option<Duration>, on_done: F)
    where
        F: FnOnce(Response) + Send + 'static,
    {
        self.submit_traced(request, deadline, None, on_done)
    }

    /// [`Service::submit`] with an externally owned trace accumulator:
    /// the event front end begins the trace at read-completion (so the
    /// shard and write-back stages can be stamped outside the pool) and
    /// finishes it when the response drains to the socket. Pass `None`
    /// when the request was not sampled.
    pub fn submit_traced<F>(
        &self,
        request: Request,
        deadline: Option<Duration>,
        trace: Option<Arc<ActiveTrace>>,
        on_done: F,
    ) where
        F: FnOnce(Response) + Send + 'static,
    {
        let accepted_at = Instant::now();
        let op = request.op();
        if let Err(e) = self.enqueue(
            request,
            deadline,
            accepted_at,
            Reply::Callback(Box::new(on_done)),
            trace,
        ) {
            // `enqueue` already delivered the error through the callback;
            // this side only records the observation.
            self.inner
                .record(op, &Response::Error(e), accepted_at.elapsed());
        }
    }

    /// Samples the flight recorder for a new request: `Some` with a
    /// fresh [`ActiveTrace`] when tracing is armed and this request won
    /// the sampling draw, `None` otherwise. The disabled path is a
    /// single branch on a `None` — no IDs, no allocation.
    pub fn begin_trace(&self, op: &str, shard: u16) -> Option<Arc<ActiveTrace>> {
        let tracer = self.inner.tracer.as_ref()?;
        if !tracer.should_sample() {
            return None;
        }
        Some(Arc::new(ActiveTrace::new(
            tracer.next_id(),
            op_index(op) as u8,
            shard,
        )))
    }

    /// Freezes a sampled request's trace with its end-to-end latency,
    /// publishes it to the flight recorder, and folds its stage times
    /// into the service-wide `lalr_stage_seconds` accumulators.
    pub fn finish_trace(&self, trace: &ActiveTrace, total: Duration) {
        let Some(tracer) = self.inner.tracer.as_ref() else {
            return;
        };
        let done = trace.finish(total.as_nanos() as u64);
        for (acc, &us) in self.inner.stage_ns.iter().zip(&done.stages_us) {
            acc.fetch_add(us * 1_000, Ordering::Relaxed);
        }
        tracer.push(&done);
    }

    /// Registers the event front end's per-shard counters so they show
    /// up in [`Service::stats`] and the metrics exposition. Called once
    /// at daemon start; later calls are ignored.
    pub(crate) fn register_shards(&self, shards: Vec<Arc<ShardCounters>>) {
        let _ = self.inner.shards.set(shards);
    }

    /// Registers the daemon's self-healing counters (shard restarts,
    /// admission rejections) so the `health`/`stats` ops and the
    /// metrics exposition can report them. Called once at daemon start;
    /// later calls are ignored.
    pub(crate) fn register_daemon(&self, counters: Arc<DaemonCounters>) {
        let _ = self.inner.daemon.set(counters);
    }

    /// Current health state machine position.
    pub fn health_state(&self) -> HealthState {
        HealthState::from_code(self.inner.health.load(Ordering::Relaxed))
    }

    /// Moves the health state to `draining` (daemon shutdown has begun:
    /// no new connections, in-flight work is draining). Terminal — the
    /// recovery path never leaves `draining`.
    pub fn set_draining(&self) {
        self.inner
            .health
            .store(HealthState::Draining.code(), Ordering::Relaxed);
    }

    /// The `health` op's payload, also callable in process.
    pub fn health_report(&self) -> HealthReport {
        self.inner.health_report()
    }

    /// Queues a job, or explains why it cannot be queued. On failure the
    /// reply has already been consumed: shed/unavailable errors are
    /// delivered through it before returning, so every reply — sync or
    /// callback — fires exactly once.
    fn enqueue(
        &self,
        request: Request,
        deadline: Option<Duration>,
        accepted_at: Instant,
        reply: Reply,
        trace: Option<Arc<ActiveTrace>>,
    ) -> Result<(), ServiceError> {
        let deadline = deadline
            .or(self.inner.config.default_deadline)
            .map(|d| accepted_at + d);
        let job = Job {
            request,
            deadline,
            accepted_at,
            reply,
            trace,
        };
        match &*self.tx.lock().expect("service sender poisoned") {
            Some(tx) => {
                // Count the job *before* it becomes visible to the
                // workers: a worker may dequeue and decrement between
                // try_send and a post-send increment, and the gauge
                // would underflow. Rolled back on the error arms.
                self.inner.queue_depth.fetch_add(1, Ordering::SeqCst);
                match tx.try_send(job) {
                    Ok(()) => {
                        self.inner.note_accept();
                        Ok(())
                    }
                    Err(mpsc::TrySendError::Full(job)) => {
                        self.inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        self.inner.shed.fetch_add(1, Ordering::Relaxed);
                        self.inner.note_shed();
                        Err(ServiceError::Overloaded {
                            pending: self.inner.queue_depth.load(Ordering::SeqCst),
                            limit: self.inner.config.max_pending.max(1),
                        })
                        .inspect_err(|e| job.reply.deliver(Response::Error(e.clone())))
                    }
                    Err(mpsc::TrySendError::Disconnected(job)) => {
                        self.inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        Err(ServiceError::Unavailable(
                            "service is shut down".to_string(),
                        ))
                        .inspect_err(|e| job.reply.deliver(Response::Error(e.clone())))
                    }
                }
            }
            None => {
                let e = ServiceError::Unavailable("service is shut down".to_string());
                job.reply.deliver(Response::Error(e.clone()));
                Err(e)
            }
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.snapshot()
    }

    /// Prometheus-style text exposition of the current statistics (what
    /// the `metrics` protocol op returns).
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(&self.stats())
    }

    /// Direct cache access (for differential tests and the load
    /// generator); `None` when caching is disabled.
    pub fn cache(&self) -> Option<&ArtifactCache> {
        self.inner.cache.as_ref()
    }

    /// Stops accepting new requests and joins the workers. Idempotent.
    pub fn shutdown(&self) {
        drop(self.tx.lock().expect("service sender poisoned").take());
        let mut workers = self.workers.lock().expect("worker list poisoned");
        for h in workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner, rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("job queue poisoned");
            rx.recv()
        };
        let Ok(job) = job else { return };
        inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
        if let Some(trace) = &job.trace {
            // Queue stage: accepted (or read off the socket) → dequeued.
            trace.add_stage(STAGE_QUEUE, job.accepted_at.elapsed().as_nanos() as u64);
        }
        // The compile pipeline has its own `catch_unwind`; this one covers
        // everything else a request executes (table rendering, parsing,
        // snapshotting), so a panic records an error response instead of
        // silently killing the worker.
        let response = panic::catch_unwind(AssertUnwindSafe(|| inner.execute(&job)))
            .unwrap_or_else(|payload| Response::Error(ServiceError::from_panic(payload.as_ref())));
        let elapsed = job.accepted_at.elapsed();
        inner.record(job.request.op(), &response, elapsed);
        if let Some(trace) = &job.trace {
            if !response.is_ok() {
                trace.set_error();
            }
        }
        job.reply.deliver(response);
    }
}

impl Inner {
    /// Health transition on an accepted enqueue: any accept breaks a
    /// shed streak, and — while degraded — a calm queue (at most half
    /// full at accept time) counts toward recovery. Every op arrives
    /// through this path, so even a health poll drives recovery.
    fn note_accept(&self) {
        self.shed_streak.store(0, Ordering::Relaxed);
        if self.health.load(Ordering::Relaxed) != HealthState::Degraded.code() {
            return;
        }
        let depth = self.queue_depth.load(Ordering::SeqCst);
        let limit = self.config.max_pending.max(1);
        if depth * 2 <= limit {
            let calm = self.calm_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if calm >= self.config.health.recover_after_ok.max(1) {
                // compare_exchange: recovery must never resurrect a
                // draining service.
                let _ = self.health.compare_exchange(
                    HealthState::Degraded.code(),
                    HealthState::Ok.code(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                self.calm_streak.store(0, Ordering::Relaxed);
            }
        } else {
            self.calm_streak.store(0, Ordering::Relaxed);
        }
    }

    /// Health transition on a queue shed: consecutive sheds past the
    /// configured threshold flip `ok` to `degraded`.
    fn note_shed(&self) {
        self.calm_streak.store(0, Ordering::Relaxed);
        let threshold = self.config.health.degrade_after_sheds;
        if threshold == 0 {
            return;
        }
        let streak = self.shed_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= threshold
            && self
                .health
                .compare_exchange(
                    HealthState::Ok.code(),
                    HealthState::Degraded.code(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            self.degraded_transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn health_stats(&self) -> HealthStats {
        let daemon = self.daemon.get();
        HealthStats {
            state: HealthState::from_code(self.health.load(Ordering::Relaxed)),
            degraded_transitions: self.degraded_transitions.load(Ordering::Relaxed),
            shard_restarts: daemon
                .map(|d| d.shard_restarts.load(Ordering::Relaxed))
                .unwrap_or(0),
            admission: daemon.map(|d| d.rejects()).unwrap_or_default(),
            max_connections_per_peer: daemon.map(|d| d.max_connections_per_peer).unwrap_or(0),
            rate_limit_per_sec: daemon.map(|d| d.rate_limit_per_sec).unwrap_or(0),
        }
    }

    fn health_report(&self) -> HealthReport {
        let h = self.health_stats();
        HealthReport {
            state: h.state.as_str().to_string(),
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            queue_limit: self.config.max_pending.max(1),
            shed: self.shed.load(Ordering::Relaxed),
            degraded_transitions: h.degraded_transitions,
            shard_restarts: h.shard_restarts,
            max_connections_per_peer: h.max_connections_per_peer,
            rate_limit_per_sec: h.rate_limit_per_sec,
            admission_rejects: h.admission,
        }
    }

    fn execute(&self, job: &Job) -> Response {
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                return Response::Error(ServiceError::DeadlineExceeded {
                    elapsed_ms: job.accepted_at.elapsed().as_millis() as u64,
                });
            }
        }
        let response = self.handle(&job.request, job.trace.as_deref());
        if let Some(deadline) = job.deadline {
            if Instant::now() > deadline {
                return Response::Error(ServiceError::DeadlineExceeded {
                    elapsed_ms: job.accepted_at.elapsed().as_millis() as u64,
                });
            }
        }
        response
    }

    fn handle(&self, request: &Request, trace: Option<&ActiveTrace>) -> Response {
        let limit = self.config.max_request_bytes;
        let size = request.payload_len();
        if size > limit {
            return Response::Error(ServiceError::TooLarge { size, limit });
        }
        match request {
            Request::Compile { grammar, format } => match self.artifact(grammar, *format, trace) {
                Ok((artifact, outcome)) => Response::Compile(CompileSummary {
                    fingerprint: format_fingerprint(artifact.fingerprint()),
                    cached: matches!(outcome, CacheOutcome::Hit | CacheOutcome::Loaded),
                    states: artifact.state_count(),
                    productions: artifact.production_count(),
                    terminals: artifact.terminal_count(),
                    conflicts: artifact.adequacy().lalr_conflicts,
                    class: artifact.adequacy().class.to_string(),
                    bytes: artifact.approx_bytes(),
                    relations: artifact.relation_stats().clone(),
                    reads: artifact.reads_traversal().clone(),
                    includes: artifact.includes_traversal().clone(),
                }),
                Err(e) => Response::Error(e),
            },
            Request::Classify { grammar, format } => match self.artifact(grammar, *format, trace) {
                Ok((artifact, _)) => {
                    let a = artifact.adequacy();
                    Response::Classify(ClassifySummary {
                        class: a.class.to_string(),
                        lr0_conflicts: a.lr0_conflicts,
                        slr_conflicts: a.slr_conflicts,
                        nqlalr_conflicts: a.nqlalr_conflicts,
                        lalr_conflicts: a.lalr_conflicts,
                        lr1_conflicts: a.lr1_conflicts,
                        not_lr_k: a.not_lr_k,
                    })
                }
                Err(e) => Response::Error(e),
            },
            Request::Table {
                grammar,
                format,
                compressed,
            } => match self.artifact(grammar, *format, trace) {
                Ok((artifact, _)) => Response::Table(TableSummary {
                    text: artifact.table().to_string(),
                    resolutions: artifact.table().resolutions().len(),
                    action_entries: artifact.table().stats().action_entries,
                    compressed_entries: compressed
                        .then(|| artifact.compressed().explicit_entries()),
                }),
                Err(e) => Response::Error(e),
            },
            Request::Parse {
                target,
                documents,
                recover,
                sync,
            } => match self.parse_batch(target, documents, *recover, sync, trace) {
                Ok(summary) => Response::Parse(summary),
                Err(e) => Response::Error(e),
            },
            Request::Stats => Response::Stats(Box::new(self.snapshot())),
            Request::Metrics => Response::Metrics(crate::metrics::render(&self.snapshot())),
            Request::Trace(filter) => match self.trace_dump(filter) {
                Ok(dump) => Response::Trace(Box::new(dump)),
                Err(e) => Response::Error(e),
            },
            Request::Health => Response::Health(self.health_report()),
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// The `trace` op: snapshot the flight recorder and filter. A
    /// disabled recorder answers `ok` with `enabled: false` and no
    /// traces; an unknown op filter is a structured `bad_request`.
    fn trace_dump(&self, filter: &TraceFilter) -> Result<TraceDump, ServiceError> {
        let op_filter = match &filter.op {
            Some(name) => match OPS.iter().position(|&o| o == name.as_str()) {
                Some(i) => Some(i as u8),
                None => {
                    return Err(ServiceError::BadRequest(format!(
                        "unknown op filter {name:?} (available: {})",
                        OPS.join(", ")
                    )))
                }
            },
            None => None,
        };
        let Some(tracer) = self.tracer.as_ref() else {
            return Ok(TraceDump {
                enabled: false,
                capacity: 0,
                sample_every: 0,
                recorded: 0,
                traces: Vec::new(),
            });
        };
        let recorded = tracer.recorded();
        let mut traces = tracer.snapshot();
        traces.retain(|t| {
            op_filter.is_none_or(|op| t.op == op)
                && (!filter.errors_only || t.error)
                && filter.slow_us.is_none_or(|slow| t.total_us >= slow)
        });
        traces.truncate(filter.limit.unwrap_or(usize::MAX));
        Ok(TraceDump {
            enabled: true,
            capacity: tracer.capacity(),
            sample_every: tracer.sample_every(),
            recorded,
            traces,
        })
    }

    /// The batched parse op: resolve the artifact **once**, then drive
    /// the LR driver over every document.
    fn parse_batch(
        &self,
        target: &ParseTarget,
        documents: &[String],
        recover: bool,
        sync: &[String],
        trace: Option<&ActiveTrace>,
    ) -> Result<ParseBatchSummary, ServiceError> {
        // The parse-worker failpoint: same contract as `service.compile` —
        // a panic unwinds into the worker's `catch_unwind` and surfaces
        // as a retryable `panicked` response.
        match self.config.faults.at("service.parse") {
            Some(Fault::Panic) => panic!("injected fault at service.parse"),
            Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Fault::Error) => {
                return Err(ServiceError::Panicked(
                    "injected fault at service.parse".to_string(),
                ))
            }
            _ => {}
        }
        if documents.is_empty() {
            return Err(ServiceError::BadRequest(
                "empty batch: \"batch\" must contain at least one document".to_string(),
            ));
        }
        // One artifact resolution per batch — the amortization the op
        // exists for.
        let (artifact, cached) = match target {
            ParseTarget::Text { grammar, format } => {
                let (artifact, outcome) = self.artifact(grammar, *format, trace)?;
                (
                    artifact,
                    matches!(outcome, CacheOutcome::Hit | CacheOutcome::Loaded),
                )
            }
            ParseTarget::Fingerprint(fp) => {
                let lookup_started = trace.map(|_| Instant::now());
                let hex = format_fingerprint(*fp);
                let artifact = self
                    .cache
                    .as_ref()
                    .ok_or_else(|| {
                        ServiceError::NotFound(format!(
                            "artifact {hex}: caching is disabled, send the grammar text"
                        ))
                    })?
                    .get_by_fingerprint(*fp)
                    .ok_or_else(|| {
                        ServiceError::NotFound(format!(
                            "artifact {hex}: not in cache (never compiled or evicted)"
                        ))
                    })?;
                if let (Some(trace), Some(t0)) = (trace, lookup_started) {
                    trace.add_stage(STAGE_CACHE, t0.elapsed().as_nanos() as u64);
                }
                (artifact, true)
            }
        };
        let parse_started = trace.map(|_| Instant::now());
        self.parse_resolutions.fetch_add(1, Ordering::Relaxed);
        self.parse_batches.fetch_add(1, Ordering::Relaxed);
        let table = artifact.table();
        // Resolve recovery sync tokens up front: a bad name fails the
        // request, not one document.
        let mut sync_ids = Vec::with_capacity(sync.len());
        for name in sync {
            match table.terminal_by_name(name) {
                Some(t) => sync_ids.push(t),
                None => {
                    return Err(ServiceError::BadRequest(format!(
                        "unknown sync terminal {name:?}"
                    )))
                }
            }
        }
        let mut docs = Vec::with_capacity(documents.len());
        for doc in documents {
            // The batch-boundary failpoint: checked between documents, so
            // a fault mid-batch aborts the remainder (the client sees one
            // structured error, never a half-written response).
            match self.config.faults.at("service.parse.doc") {
                Some(Fault::Panic) => panic!("injected fault at service.parse.doc"),
                Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                Some(Fault::Error) => {
                    return Err(ServiceError::Panicked(
                        "injected fault at service.parse.doc".to_string(),
                    ))
                }
                _ => {}
            }
            docs.push(self.parse_document(table, doc, recover, &sync_ids));
        }
        if let (Some(trace), Some(t0)) = (trace, parse_started) {
            trace.add_stage(STAGE_PARSE, t0.elapsed().as_nanos() as u64);
        }
        let accepted = docs.iter().filter(|d| d.accepted).count() as u64;
        self.parse_documents
            .fetch_add(docs.len() as u64, Ordering::Relaxed);
        self.parse_accepted.fetch_add(accepted, Ordering::Relaxed);
        self.parse_rejected
            .fetch_add(docs.len() as u64 - accepted, Ordering::Relaxed);
        Ok(ParseBatchSummary {
            fingerprint: format_fingerprint(artifact.fingerprint()),
            cached,
            docs,
        })
    }

    /// Parses one document (whitespace-separated terminal names; token
    /// offsets are token indices) to a verdict. Never fails the batch:
    /// oversized documents and unknown terminals degrade to per-document
    /// error verdicts.
    fn parse_document(
        &self,
        table: &lalr_tables::ParseTable,
        doc: &str,
        recover: bool,
        sync: &[u32],
    ) -> DocVerdict {
        let limit = self.config.max_document_bytes;
        if doc.len() > limit {
            return DocVerdict::rejected(DocError {
                message: format!(
                    "document of {} bytes exceeds the {limit}-byte limit",
                    doc.len()
                ),
                offset: 0,
                found: None,
                expected: Vec::new(),
            });
        }
        let mut tokens = Vec::new();
        for (i, word) in doc.split_whitespace().enumerate() {
            match table.terminal_by_name(word) {
                Some(t) => tokens.push(Token::new(t, word, i)),
                None => {
                    return DocVerdict::rejected(DocError {
                        message: format!("unknown terminal {word:?}"),
                        offset: i as u64,
                        found: Some(word.to_string()),
                        expected: Vec::new(),
                    })
                }
            }
        }
        let doc_error = |e: &lalr_runtime::ParseError| DocError {
            message: e.to_string(),
            offset: e.offset as u64,
            found: e.found.as_ref().map(|t| t.text().to_string()),
            expected: e.expected.clone(),
        };
        if recover {
            let (tree, errors) = Parser::new(table).parse_with_recovery(tokens, sync, 8);
            let (leaves, nodes, sexpr) = match &tree {
                Some(t) => (
                    t.leaf_count() as u64,
                    t.node_count() as u64,
                    Some(t.to_sexpr(table)),
                ),
                None => (0, 0, None),
            };
            DocVerdict {
                accepted: errors.is_empty() && tree.is_some(),
                leaves,
                nodes,
                tree: sexpr,
                error: errors.first().map(doc_error),
                error_count: errors.len() as u64,
            }
        } else {
            match Parser::new(table).parse(tokens) {
                Ok(tree) => DocVerdict {
                    accepted: true,
                    leaves: tree.leaf_count() as u64,
                    nodes: tree.node_count() as u64,
                    tree: Some(tree.to_sexpr(table)),
                    error: None,
                    error_count: 0,
                },
                Err(e) => DocVerdict::rejected(doc_error(&e)),
            }
        }
    }

    fn artifact(
        &self,
        grammar: &str,
        format: GrammarFormat,
        trace: Option<&ActiveTrace>,
    ) -> Result<(Arc<CompiledArtifact>, CacheOutcome), ServiceError> {
        // The format is part of the identity: the same bytes read as yacc
        // and as native text are different grammars, so prefix the cache
        // key (the prefix survives normalization — it is its own line).
        let key = match format {
            GrammarFormat::Native => format!("%key native\n{grammar}"),
            GrammarFormat::Yacc => format!("%key yacc\n{grammar}"),
        };
        // Stage attribution: the whole resolution is timed here, the
        // compile closure stamps its own share, and the remainder —
        // key hashing, map probes, store I/O, waiting out another
        // thread's in-flight compile — is the cache stage.
        let resolve_started = trace.map(|_| Instant::now());
        let pipeline = self.config.pipeline;
        // Graceful degradation gates the *pipeline*, not the lookup: a
        // degraded service still answers memory hits and verified store
        // loads (the closure never runs for those), and only a request
        // that would actually run a cold compile is shed with a
        // retryable `degraded` error.
        let degraded = self.health.load(Ordering::Relaxed) == HealthState::Degraded.code();
        let result = match &self.cache {
            Some(cache) => {
                let (result, outcome) = cache.get_or_compile(&key, |_, fp| {
                    if degraded {
                        return Err(ServiceError::Degraded(
                            "cold compile shed while degraded; retry after backoff".to_string(),
                        ));
                    }
                    self.compile_observed(grammar, format, fp, &pipeline, trace)
                });
                result.map(|a| (a, outcome))
            }
            None if degraded => Err(ServiceError::Degraded(
                "cold compile shed while degraded; retry after backoff".to_string(),
            )),
            None => {
                let fp = crate::fingerprint::fx_fingerprint(&crate::fingerprint::normalize(&key));
                self.compile_observed(grammar, format, fp, &pipeline, trace)
                    .map(|a| (Arc::new(a), CacheOutcome::Compiled))
            }
        };
        if let (Some(trace), Some(t0)) = (trace, resolve_started) {
            let total_ns = t0.elapsed().as_nanos() as u64;
            let compile_ns = trace.stage_ns(STAGE_COMPILE);
            trace.add_stage(STAGE_CACHE, total_ns.saturating_sub(compile_ns));
        }
        result
    }

    /// Runs one compile under a [`CollectingRecorder`] and folds its
    /// top-level phase timings into the service-wide counters.
    fn compile_observed(
        &self,
        grammar: &str,
        format: GrammarFormat,
        fp: u64,
        pipeline: &Parallelism,
        trace: Option<&ActiveTrace>,
    ) -> Result<CompiledArtifact, ServiceError> {
        // The compile-worker failpoint: a `panic` here unwinds into the
        // cache's `catch_unwind` (or the worker's, on the cache-less
        // path) and must surface as a `panicked` error response, never a
        // hang or a poisoned cache slot.
        match self.config.faults.at("service.compile") {
            Some(Fault::Panic) => panic!("injected fault at service.compile"),
            Some(Fault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Fault::Error) => {
                return Err(ServiceError::Panicked(
                    "injected fault at service.compile".to_string(),
                ))
            }
            _ => {}
        }
        let compile_started = trace.map(|_| Instant::now());
        let rec = CollectingRecorder::new();
        let compiled = CompiledArtifact::compile_recorded(grammar, format, fp, pipeline, &rec);
        for phase in &rec.report().phases {
            if let Some(i) = PHASE_NAMES.iter().position(|&n| n == phase.name) {
                self.phase_calls[i].fetch_add(phase.calls, Ordering::Relaxed);
                self.phase_ns[i].fetch_add(phase.total_ns, Ordering::Relaxed);
            }
        }
        if let (Some(trace), Some(t0)) = (trace, compile_started) {
            trace.add_stage(STAGE_COMPILE, t0.elapsed().as_nanos() as u64);
        }
        compiled
    }

    fn record(&self, op: &str, response: &Response, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let op_idx = op_index(op);
        self.by_op[op_idx].fetch_add(1, Ordering::Relaxed);
        if let Response::Error(e) = response {
            self.errors.fetch_add(1, Ordering::Relaxed);
            self.errors_by_op[op_idx].fetch_add(1, Ordering::Relaxed);
            if matches!(e, ServiceError::DeadlineExceeded { .. }) {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
        }
        let us = elapsed.as_micros() as u64;
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_by_op[op_idx][bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us[op_idx].fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            by_op: std::array::from_fn(|i| self.by_op[i].load(Ordering::Relaxed)),
            errors_by_op: std::array::from_fn(|i| self.errors_by_op[i].load(Ordering::Relaxed)),
            latency_buckets: std::array::from_fn(|i| self.latency[i].load(Ordering::Relaxed)),
            latency_by_op: std::array::from_fn(|op| {
                std::array::from_fn(|i| self.latency_by_op[op][i].load(Ordering::Relaxed))
            }),
            latency_sum_us: std::array::from_fn(|i| self.latency_sum_us[i].load(Ordering::Relaxed)),
            phase_calls: std::array::from_fn(|i| self.phase_calls[i].load(Ordering::Relaxed)),
            phase_ns: std::array::from_fn(|i| self.phase_ns[i].load(Ordering::Relaxed)),
            parse: ParseLaneStats {
                batches: self.parse_batches.load(Ordering::Relaxed),
                documents: self.parse_documents.load(Ordering::Relaxed),
                accepted: self.parse_accepted.load(Ordering::Relaxed),
                rejected: self.parse_rejected.load(Ordering::Relaxed),
                resolutions: self.parse_resolutions.load(Ordering::Relaxed),
            },
            cache: self.cache.as_ref().map(ArtifactCache::stats),
            workers: self.config.workers.threads(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            shed: self.shed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::SeqCst),
            queue_limit: self.config.max_pending.max(1),
            faults: self.config.faults.stats(),
            shards: self
                .shards
                .get()
                .map(|shards| {
                    shards
                        .iter()
                        .enumerate()
                        .map(|(i, c)| c.snapshot(i))
                        .collect()
                })
                .unwrap_or_default(),
            health: self.health_stats(),
            tracing: match &self.tracer {
                Some(tracer) => TracingStats {
                    enabled: true,
                    capacity: tracer.capacity(),
                    sample_every: tracer.sample_every(),
                    sampled: tracer.recorded(),
                    stage_ns: std::array::from_fn(|i| self.stage_ns[i].load(Ordering::Relaxed)),
                },
                None => TracingStats::default(),
            },
        }
    }
}
