//! The fault-injection no-overhead contract: a disabled
//! [`lalr_chaos::FaultInjector`] must add *zero* allocations to the
//! paths it guards — the same gating discipline `obs_overhead.rs`
//! enforces for the NULL recorder. Two layers are checked:
//!
//! 1. The injector itself: a disabled `at()` is a `None` check and an
//!    *enabled* `at()` is atomics-only — neither may allocate per hit.
//! 2. The service compile path: a `Service` built with the default
//!    (disabled) injector allocates exactly as much per request as one
//!    with the field never armed can — i.e. the failpoints in
//!    `compile_observed` and the cache cost nothing when off.
//!
//! This file is its own test binary (no concurrency), so the
//! process-global allocation counters see only the measured code.

use lalr_bench::alloc_counter::measure;
use lalr_chaos::{Fault, FaultInjector, FaultPlan, Trigger};

/// Minimum allocation count over several runs of `f`. The counters are
/// process-global, so rare background activity (libtest bookkeeping,
/// allocator housekeeping on another thread) lands on whichever region
/// is open when it happens; that noise is strictly additive, so the
/// minimum over a few trials is the true cost of the measured path.
fn min_allocations(trials: usize, mut f: impl FnMut()) -> usize {
    (0..trials)
        .map(|_| measure(&mut f).1.allocations)
        .min()
        .unwrap_or(0)
}

#[test]
fn disabled_and_enabled_failpoint_checks_allocate_nothing() {
    let disabled = FaultInjector::disabled();
    let enabled = FaultPlan::new(7)
        .rule("daemon.read", Fault::Error, Trigger::Rate(0.25))
        .rule("service.compile", Fault::Delay(0), Trigger::EveryNth(3))
        .build();

    // Warm-up: allocator metadata, lazy statics.
    for _ in 0..8 {
        std::hint::black_box(disabled.at("daemon.read"));
        std::hint::black_box(enabled.at("daemon.read"));
    }

    let off = min_allocations(5, || {
        for _ in 0..10_000 {
            std::hint::black_box(disabled.at("daemon.read"));
            std::hint::black_box(disabled.at("service.compile"));
        }
    });
    assert_eq!(
        off, 0,
        "a disabled failpoint check allocated — the Option gate is broken"
    );

    let on = min_allocations(5, || {
        for _ in 0..10_000 {
            std::hint::black_box(enabled.at("daemon.read"));
            std::hint::black_box(enabled.at("service.compile"));
        }
    });
    assert_eq!(
        on, 0,
        "an armed failpoint hit allocated — rule matching must stay \
         slice-scan + atomics (Delay(0) and unfired Error rules do not act)"
    );

    // Same binary, same test fn (the global counters must not see a
    // concurrently running sibling test): the service-level check.
    disabled_injector_is_deterministic_for_a_service_request();
}

fn disabled_injector_is_deterministic_for_a_service_request() {
    use lalr_service::{GrammarFormat, Request, Response, Service, ServiceConfig};

    let entry = lalr_corpus::by_name("expr").expect("corpus entry exists");
    let config = ServiceConfig {
        workers: lalr_core::Parallelism::sequential(),
        ..ServiceConfig::default()
    };
    // One long-lived service, measured on this thread: a fresh
    // `Service::new` per sample spawns worker threads whose startup
    // allocations race into the measured window (the counters are
    // process-wide), so the service is built and warmed once and only
    // the repeat requests are compared.
    let service = Service::new(config);
    let warm = service.call(
        Request::Compile {
            grammar: entry.source.to_string(),
            format: GrammarFormat::Native,
        },
        None,
    );
    assert!(matches!(warm, Response::Compile(_)), "{warm:?}");
    let classify_allocs = || {
        let (response, stats) = measure(|| {
            service.call(
                Request::Classify {
                    grammar: entry.source.to_string(),
                    format: GrammarFormat::Native,
                },
                None,
            )
        });
        assert!(matches!(response, Response::Classify(_)), "{response:?}");
        stats.allocations
    };

    let _ = classify_allocs();
    let a = classify_allocs();
    let b = classify_allocs();
    assert_eq!(
        a, b,
        "identical disabled-injector requests allocated differently — \
         a failpoint check is not allocation-free"
    );
}
