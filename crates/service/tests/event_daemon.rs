//! Loopback tests of the epoll event-loop daemon: protocol parity with
//! the thread-per-connection front end, pipelining, drain semantics,
//! the connection cap, and warm restarts from the persistent store.
//!
//! Every test is gated on `lalr_net::supported()` so the suite stays
//! green on platforms without the raw epoll backend.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use lalr_service::client::{self, ClientReply};
use lalr_service::protocol::request_to_line;
use lalr_service::{
    Daemon, DaemonConfig, EventDaemon, GrammarFormat, ParseTarget, Request, ServiceConfig,
};

use serde_json::Value;

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lalr-eventd-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_event_daemon(shards: usize) -> EventDaemon {
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    };
    EventDaemon::start(config, shards).expect("bind loopback")
}

fn call(addr: &str, request: &Request) -> ClientReply {
    client::call(addr, request, None, Duration::from_secs(30)).expect("daemon reachable")
}

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

#[test]
fn event_daemon_compiles_caches_reports_stats_and_shuts_down() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = start_event_daemon(1);
    let addr = daemon.addr().to_string();

    let cold = call(&addr, &compile_request());
    assert!(cold.is_ok(), "{}", cold.raw);
    assert_eq!(
        cold.value.get("cached").and_then(Value::as_bool),
        Some(false)
    );
    let fp = cold
        .value
        .get("fingerprint")
        .and_then(Value::as_str)
        .expect("fingerprint present")
        .to_string();

    let warm = call(&addr, &compile_request());
    assert_eq!(
        warm.value.get("cached").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        warm.value.get("fingerprint").and_then(Value::as_str),
        Some(fp.as_str())
    );

    let stats = call(&addr, &Request::Stats);
    assert!(stats.is_ok(), "{}", stats.raw);
    assert!(
        stats.value.get("requests").and_then(Value::as_u64) >= Some(2),
        "{}",
        stats.raw
    );

    let bye = call(&addr, &Request::Shutdown);
    assert!(bye.is_ok(), "{}", bye.raw);
    let summary = daemon.join();
    assert!(summary.connections >= 4, "{summary:?}");
    assert!(summary.requests >= 4, "{summary:?}");
}

#[test]
fn event_daemon_pipelined_requests_answer_in_order_on_one_connection() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = start_event_daemon(1);
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Three requests in a single write: the daemon must answer each in
    // order, one at a time, on the same connection.
    let batch = [
        request_to_line(&compile_request(), None),
        request_to_line(
            &Request::Classify {
                grammar: GRAMMAR.to_string(),
                format: GrammarFormat::Native,
            },
            None,
        ),
        request_to_line(&compile_request(), None),
    ];
    writer
        .write_all(format!("{}\n{}\n{}\n", batch[0], batch[1], batch[2]).as_bytes())
        .unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let first: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(first.get("op").and_then(Value::as_str), Some("compile"));
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));

    line.clear();
    reader.read_line(&mut line).unwrap();
    let second: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(second.get("op").and_then(Value::as_str), Some("classify"));

    line.clear();
    reader.read_line(&mut line).unwrap();
    let third: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(third.get("op").and_then(Value::as_str), Some("compile"));
    assert_eq!(third.get("cached").and_then(Value::as_bool), Some(true));

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn event_daemon_handles_malformed_lines_and_keeps_the_connection() {
    if !lalr_net::supported() {
        return;
    }
    let daemon = start_event_daemon(1);
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writeln!(writer, "{{not json").unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));

    line.clear();
    writeln!(writer, "{{\"op\":\"frobnicate\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    let msg = v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Value::as_str)
        .unwrap();
    assert!(msg.contains("available: compile"), "{msg}");

    // The same connection still serves a good request afterwards.
    line.clear();
    writeln!(writer, "{}", request_to_line(&compile_request(), None)).unwrap();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn event_daemon_rejects_oversized_lines_with_too_large() {
    if !lalr_net::supported() {
        return;
    }
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        max_line_bytes: 256,
        ..DaemonConfig::default()
    };
    let daemon = EventDaemon::start(config, 1).unwrap();
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let huge = format!(
        "{{\"op\":\"compile\",\"grammar\":\"{}\"}}",
        "x".repeat(4096)
    );
    writeln!(writer, "{huge}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("too_large"),
        "{line}"
    );
    // The daemon closes the connection after an oversize line.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "{line}");

    drop(writer);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn event_daemon_enforces_the_connection_cap() {
    if !lalr_net::supported() {
        return;
    }
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        max_connections: 1,
        ..DaemonConfig::default()
    };
    let daemon = EventDaemon::start(config, 1).unwrap();

    // First connection occupies the single slot.
    let holder = TcpStream::connect(daemon.addr()).unwrap();
    // Give the acceptor time to install it before the second arrives.
    std::thread::sleep(Duration::from_millis(100));

    let second = TcpStream::connect(daemon.addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(second);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("unavailable"),
        "{line}"
    );

    drop(holder);
    drop(reader);
    daemon.stop();
    daemon.join();
}

#[test]
fn event_daemon_drains_idle_connections_promptly() {
    if !lalr_net::supported() {
        return;
    }
    let config = DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        read_timeout: Duration::from_secs(30),
        drain_deadline: Duration::from_secs(5),
        ..DaemonConfig::default()
    };
    let daemon = EventDaemon::start(config, 2).unwrap();
    let addr = daemon.addr().to_string();

    let idle_a = TcpStream::connect(daemon.addr()).unwrap();
    let idle_b = TcpStream::connect(daemon.addr()).unwrap();
    let worked = call(&addr, &compile_request());
    assert!(worked.is_ok(), "{}", worked.raw);
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    daemon.stop();
    let summary = daemon.join();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "join took {:?} — idle connections were waited out, not drained",
        started.elapsed()
    );
    assert!(summary.drained >= 2, "{summary:?}");
    assert_eq!(summary.aborted, 0, "{summary:?}");
    drop(idle_a);
    drop(idle_b);
}

#[test]
fn event_daemon_serves_warm_from_store_after_restart() {
    if !lalr_net::supported() {
        return;
    }
    let dir = temp_store_dir("restart");
    let config = || DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        service: ServiceConfig {
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
        ..DaemonConfig::default()
    };

    // First daemon compiles cold and publishes the artifact to disk.
    let first = EventDaemon::start(config(), 1).unwrap();
    let addr = first.addr().to_string();
    let cold = call(&addr, &compile_request());
    assert!(cold.is_ok(), "{}", cold.raw);
    assert_eq!(
        cold.value.get("cached").and_then(Value::as_bool),
        Some(false)
    );
    let fp = cold
        .value
        .get("fingerprint")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let stats = call(&addr, &Request::Stats);
    let cache = stats.value.get("cache").expect("cache stats");
    assert_eq!(cache.get("store_writes").and_then(Value::as_u64), Some(1));
    call(&addr, &Request::Shutdown);
    first.join();

    // A fresh daemon over the same directory: the repeat request is a
    // warm hit served from disk, with no recompilation.
    let second = EventDaemon::start(config(), 1).unwrap();
    let addr = second.addr().to_string();
    let warm = call(&addr, &compile_request());
    assert!(warm.is_ok(), "{}", warm.raw);
    assert_eq!(
        warm.value.get("cached").and_then(Value::as_bool),
        Some(true),
        "warm restart must serve from the store: {}",
        warm.raw
    );
    assert_eq!(
        warm.value.get("fingerprint").and_then(Value::as_str),
        Some(fp.as_str())
    );
    let stats = call(&addr, &Request::Stats);
    let cache = stats.value.get("cache").expect("cache stats");
    assert!(
        cache.get("store_hits").and_then(Value::as_u64) >= Some(1),
        "{}",
        stats.raw
    );
    assert_eq!(
        cache.get("compiles").and_then(Value::as_u64),
        Some(0),
        "nothing recompiled: {}",
        stats.raw
    );
    call(&addr, &Request::Shutdown);
    second.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance differential: eight client threads over TCP against
/// the epoll front end must produce byte-identical response lines to
/// the thread-per-connection reference daemon answering the same
/// workload (modulo the scheduling-dependent `cached` flag).
#[test]
fn eight_thread_tcp_soak_matches_threaded_daemon_byte_for_byte() {
    if !lalr_net::supported() {
        return;
    }
    const THREADS: usize = 8;

    fn workload() -> Vec<String> {
        let mut lines = Vec::new();
        for entry in lalr_corpus::all_entries() {
            let grammar = entry.source.to_string();
            lines.push(request_to_line(
                &Request::Compile {
                    grammar: grammar.clone(),
                    format: GrammarFormat::Native,
                },
                None,
            ));
            lines.push(request_to_line(
                &Request::Classify {
                    grammar: grammar.clone(),
                    format: GrammarFormat::Native,
                },
                None,
            ));
            lines.push(request_to_line(
                &Request::Table {
                    grammar: grammar.clone(),
                    format: GrammarFormat::Native,
                    compressed: true,
                },
                None,
            ));
            let parsed = entry.grammar();
            let documents: Vec<String> = lalr_corpus::sentences::generate_many(&parsed, 1, 2, 16)
                .iter()
                .map(|s| {
                    s.iter()
                        .map(|&t| parsed.terminal_name(t))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            if !documents.is_empty() {
                lines.push(request_to_line(
                    &Request::Parse {
                        target: ParseTarget::Text {
                            grammar: grammar.clone(),
                            format: GrammarFormat::Native,
                        },
                        documents,
                        recover: false,
                        sync: Vec::new(),
                    },
                    None,
                ));
            }
        }
        lines
    }

    fn normalize(line: &str) -> String {
        line.replace("\"cached\":true", "\"cached\":false")
    }

    /// Runs the strided workload through `addr` from THREADS client
    /// threads, each on one persistent connection, and returns the
    /// normalized response for every request index.
    fn run(addr: std::net::SocketAddr, requests: &std::sync::Arc<Vec<String>>) -> Vec<String> {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let requests = std::sync::Arc::clone(requests);
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(60)))
                        .unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    let mut got = Vec::new();
                    let mut line = String::new();
                    for i in (t..requests.len()).step_by(THREADS) {
                        writeln!(writer, "{}", requests[i]).unwrap();
                        line.clear();
                        reader.read_line(&mut line).unwrap();
                        got.push((i, normalize(line.trim_end())));
                    }
                    got
                })
            })
            .collect();
        let mut out = vec![String::new(); requests.len()];
        for h in handles {
            for (i, line) in h.join().unwrap() {
                out[i] = line;
            }
        }
        out
    }

    let requests = std::sync::Arc::new(workload());
    assert!(requests.len() >= 40, "workload is non-trivial");

    let threaded = Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".to_string(),
        ..DaemonConfig::default()
    })
    .unwrap();
    let reference = run(threaded.addr(), &requests);
    threaded.stop();
    threaded.join();

    let event = start_event_daemon(2);
    let subject = run(event.addr(), &requests);
    event.stop();
    let summary = event.join();
    assert_eq!(summary.aborted, 0, "{summary:?}");

    for (i, (want, got)) in reference.iter().zip(&subject).enumerate() {
        assert_eq!(
            got, want,
            "request {i} diverged between the epoll and threaded front ends"
        );
    }
}
