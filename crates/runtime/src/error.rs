//! Lexing and parsing errors.

use std::error::Error;
use std::fmt;

use crate::token::Token;

/// A character the lexer cannot start a token with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// Its byte offset.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at offset {}",
            self.ch, self.offset
        )
    }
}

impl Error for LexError {}

/// A syntax error: where the parser was, what it saw, what it wanted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The automaton state the error occurred in.
    pub state: u32,
    /// The offending token, or `None` at end of input.
    pub found: Option<Token>,
    /// Names of the terminals with a non-error action in `state`.
    pub expected: Vec<String>,
    /// Where the error points: the offending token's offset, or — at end
    /// of input — one past the end of the last consumed token.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.found {
            Some(t) => write!(f, "unexpected {:?} at offset {}", t.text(), t.offset())?,
            None => write!(f, "unexpected end of input at offset {}", self.offset)?,
        }
        if !self.expected.is_empty() {
            let mut names = self.expected.clone();
            names.truncate(6);
            write!(f, ", expected {}", names.join(" or "))?;
            if self.expected.len() > 6 {
                write!(f, " (and {} more)", self.expected.len() - 6)?;
            }
        }
        Ok(())
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_error_message() {
        let e = LexError { ch: '@', offset: 4 };
        assert_eq!(e.to_string(), "unexpected character '@' at offset 4");
    }

    #[test]
    fn parse_error_message_with_token() {
        let e = ParseError {
            state: 3,
            found: Some(Token::new(1, ")", 7)),
            expected: vec!["NUM".into(), "(".into()],
            offset: 7,
        };
        assert_eq!(
            e.to_string(),
            "unexpected \")\" at offset 7, expected NUM or ("
        );
    }

    #[test]
    fn parse_error_message_at_eof_truncates_expected() {
        let e = ParseError {
            state: 0,
            found: None,
            expected: (0..9).map(|i| format!("t{i}")).collect(),
            offset: 12,
        };
        let msg = e.to_string();
        assert!(msg.starts_with("unexpected end of input at offset 12, expected "));
        assert!(msg.ends_with("(and 3 more)"));
    }
}
