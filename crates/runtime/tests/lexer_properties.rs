//! Property tests for the runtime lexer.

use lalr_automata::Lr0Automaton;
use lalr_core::LalrAnalysis;
use lalr_grammar::parse_grammar;
use lalr_runtime::Lexer;
use lalr_tables::{build_table, ParseTable, TableOptions};
use proptest::prelude::*;

fn rich_table() -> ParseTable {
    let g = parse_grammar(
        r#"
        s : WHILE ID DO s | ID ASSIGN expr | ;
        expr : expr "+" atom | atom ;
        atom : NUM | ID | STR | "(" expr ")" ;
        "#,
    )
    .unwrap();
    let lr0 = Lr0Automaton::build(&g);
    let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
    build_table(&g, &lr0, &la, TableOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer must never panic, whatever bytes arrive.
    #[test]
    fn tokenize_never_panics(input in ".{0,120}") {
        let table = rich_table();
        let lexer = Lexer::for_table(&table)
            .number("NUM")
            .identifier("ID")
            .string("STR")
            .build();
        let _ = lexer.tokenize(&input);
    }

    /// On success, offsets are strictly increasing and each token's text
    /// occurs at its offset.
    #[test]
    fn token_offsets_are_faithful(input in "[ a-z0-9+()]{0,80}") {
        let table = rich_table();
        let lexer = Lexer::for_table(&table)
            .number("NUM")
            .identifier("ID")
            .string("STR")
            .build();
        if let Ok(tokens) = lexer.tokenize(&input) {
            let mut last_end = 0usize;
            for t in &tokens {
                prop_assert!(t.offset() >= last_end);
                prop_assert!(input[t.offset()..].starts_with(t.text()), "{t}");
                last_end = t.offset() + t.text().len();
            }
        }
    }

    /// Concatenating token texts with spaces re-tokenizes to the same
    /// terminal sequence (idempotence of the lexeme stream).
    #[test]
    fn retokenization_is_stable(input in "[ a-z0-9+()]{0,80}") {
        let table = rich_table();
        let lexer = Lexer::for_table(&table)
            .number("NUM")
            .identifier("ID")
            .string("STR")
            .build();
        if let Ok(tokens) = lexer.tokenize(&input) {
            let rebuilt: Vec<String> = tokens.iter().map(|t| t.text().to_string()).collect();
            let again = lexer.tokenize(&rebuilt.join(" ")).expect("re-lexable");
            let a: Vec<u32> = tokens.iter().map(|t| t.terminal()).collect();
            let b: Vec<u32> = again.iter().map(|t| t.terminal()).collect();
            prop_assert_eq!(a, b);
        }
    }
}
