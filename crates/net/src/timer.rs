//! A single-level hashed timer wheel for connection timeouts.
//!
//! Deadlines are quantized to ticks of a fixed granularity and hashed
//! into `slots` buckets; advancing the wheel sweeps each elapsed slot
//! and yields entries whose tick has actually arrived (entries hashed
//! into a swept slot from a future lap are put back). Cancellation is
//! lazy: [`TimerWheel::cancel`] bumps a generation counter, and stale
//! entries are dropped when their slot is swept — O(1) for the caller,
//! which matters when every served request cancels a timeout.

use std::time::{Duration, Instant};

/// One expired timer: the token it was armed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// Caller token (e.g. a connection id).
    pub token: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    tick: u64,
    generation: u64,
}

/// The wheel. Tokens are dense caller ids; each token has at most one
/// live timer (re-arming supersedes, cancelling invalidates).
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Latest armed generation per token; stale wheel entries lose.
    generations: Vec<u64>,
    granularity: Duration,
    origin: Instant,
    /// Next tick to sweep.
    cursor: u64,
}

impl TimerWheel {
    /// A wheel of `slots` buckets at `granularity` per tick, starting
    /// its clock at `origin`.
    pub fn new(origin: Instant, slots: usize, granularity: Duration) -> TimerWheel {
        assert!(slots > 0 && !granularity.is_zero());
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            generations: Vec::new(),
            granularity,
            origin,
            cursor: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.origin);
        // Round up: a deadline mid-tick expires on the *next* sweep, so
        // timers never fire early.
        elapsed.as_nanos().div_ceil(self.granularity.as_nanos()) as u64
    }

    /// Arms (or re-arms) `token` to expire at `deadline`.
    pub fn arm(&mut self, token: u64, deadline: Instant) {
        let idx = token as usize;
        if idx >= self.generations.len() {
            self.generations.resize(idx + 1, 0);
        }
        self.generations[idx] += 1;
        let tick = self.tick_of(deadline).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            token,
            tick,
            generation: self.generations[idx],
        });
    }

    /// Cancels `token`'s pending timer (O(1); the wheel entry is
    /// dropped lazily).
    pub fn cancel(&mut self, token: u64) {
        if let Some(generation) = self.generations.get_mut(token as usize) {
            *generation += 1;
        }
    }

    /// Sweeps every tick up to and including `now`'s, appending live
    /// expirations to `out`.
    pub fn advance(&mut self, now: Instant, out: &mut Vec<Expired>) {
        let target = self.tick_of(now);
        if target < self.cursor {
            return;
        }
        // Never sweep more than one full lap: beyond that every slot
        // has been visited once already.
        let sweeps = (target - self.cursor + 1).min(self.slots.len() as u64);
        for step in 0..sweeps {
            let tick = self.cursor + step;
            let slot = (tick % self.slots.len() as u64) as usize;
            let mut keep = Vec::new();
            for entry in self.slots[slot].drain(..) {
                if self.generations[entry.token as usize] != entry.generation {
                    continue; // cancelled or re-armed
                }
                if entry.tick <= target {
                    out.push(Expired { token: entry.token });
                } else {
                    keep.push(entry); // future lap
                }
            }
            self.slots[slot] = keep;
        }
        self.cursor = target + 1;
    }

    /// Time until the next armed (possibly stale) deadline, or `None`
    /// when the wheel is empty — the poll timeout to use.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let mut earliest: Option<u64> = None;
        for slot in &self.slots {
            for entry in slot {
                if self.generations[entry.token as usize] != entry.generation {
                    continue;
                }
                earliest = Some(earliest.map_or(entry.tick, |t| t.min(entry.tick)));
            }
        }
        let tick = earliest?;
        let due = self.origin
            + Duration::from_nanos((self.granularity.as_nanos() as u64).saturating_mul(tick));
        Some(due.saturating_duration_since(now).max(self.granularity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(origin: Instant) -> TimerWheel {
        TimerWheel::new(origin, 8, Duration::from_millis(10))
    }

    #[test]
    fn arms_expire_in_order_and_not_early() {
        let t0 = Instant::now();
        let mut w = wheel(t0);
        w.arm(1, t0 + Duration::from_millis(25));
        w.arm(2, t0 + Duration::from_millis(55));

        let mut out = Vec::new();
        w.advance(t0 + Duration::from_millis(20), &mut out);
        assert!(out.is_empty(), "not due yet: {out:?}");
        w.advance(t0 + Duration::from_millis(30), &mut out);
        assert_eq!(out, vec![Expired { token: 1 }]);
        out.clear();
        w.advance(t0 + Duration::from_millis(60), &mut out);
        assert_eq!(out, vec![Expired { token: 2 }]);
    }

    #[test]
    fn cancel_and_rearm_invalidate_stale_entries() {
        let t0 = Instant::now();
        let mut w = wheel(t0);
        w.arm(3, t0 + Duration::from_millis(20));
        w.cancel(3);
        let mut out = Vec::new();
        w.advance(t0 + Duration::from_millis(100), &mut out);
        assert!(out.is_empty(), "cancelled timer fired: {out:?}");

        // Re-arm supersedes: only the latest deadline fires.
        w.arm(3, t0 + Duration::from_millis(120));
        w.arm(3, t0 + Duration::from_millis(200));
        w.advance(t0 + Duration::from_millis(150), &mut out);
        assert!(out.is_empty(), "superseded timer fired: {out:?}");
        w.advance(t0 + Duration::from_millis(210), &mut out);
        assert_eq!(out, vec![Expired { token: 3 }]);
    }

    #[test]
    fn entries_beyond_one_lap_survive_the_sweep() {
        let t0 = Instant::now();
        let mut w = wheel(t0); // 8 slots × 10ms = 80ms per lap
        w.arm(5, t0 + Duration::from_millis(250));
        let mut out = Vec::new();
        w.advance(t0 + Duration::from_millis(240), &mut out);
        assert!(out.is_empty(), "{out:?}");
        w.advance(t0 + Duration::from_millis(260), &mut out);
        assert_eq!(out, vec![Expired { token: 5 }]);
    }

    #[test]
    fn next_timeout_tracks_the_earliest_live_deadline() {
        let t0 = Instant::now();
        let mut w = wheel(t0);
        assert_eq!(w.next_timeout(t0), None);
        w.arm(1, t0 + Duration::from_millis(70));
        w.arm(2, t0 + Duration::from_millis(30));
        let hint = w.next_timeout(t0).unwrap();
        assert!(hint <= Duration::from_millis(40), "{hint:?}");
        w.cancel(2);
        let hint = w.next_timeout(t0).unwrap();
        assert!(hint >= Duration::from_millis(50), "{hint:?}");
    }
}
