//! The observability no-overhead contract: driving the recorded pipeline
//! entry points with [`lalr_obs::NULL`] must execute *exactly* the plain
//! pipeline — same allocation count, byte for byte. Every counter in the
//! instrumentation is gated on `Recorder::is_enabled`, so the NULL path
//! compiles down to the pre-instrumentation code; if someone adds an
//! ungated `format!`, `Vec` tally, or clone on the hot path, this test
//! catches it as an allocation delta before any benchmark notices.
//!
//! This file is its own test binary (one test, no concurrency), so the
//! process-global allocation counters see only the measured pipeline.

use lalr_automata::Lr0Automaton;
use lalr_bench::alloc_counter::measure;
use lalr_core::{LalrAnalysis, Parallelism};

fn cold_allocations(recorded: bool) -> usize {
    let entry = lalr_corpus::by_name("c_subset").expect("corpus entry exists");
    let ((), stats) = measure(|| {
        let grammar = entry.grammar();
        let seq = Parallelism::sequential();
        let (lr0, analysis) = if recorded {
            let lr0 = Lr0Automaton::build_recorded(&grammar, &lalr_obs::NULL);
            let a = LalrAnalysis::compute_recorded(&grammar, &lr0, &seq, &lalr_obs::NULL);
            (lr0, a)
        } else {
            let lr0 = Lr0Automaton::build(&grammar);
            let a = LalrAnalysis::compute_with(&grammar, &lr0, &seq);
            (lr0, a)
        };
        std::hint::black_box((lr0.state_count(), analysis.lookaheads().reduction_count()));
    });
    stats.allocations
}

#[test]
fn null_recorder_adds_zero_allocations_to_the_cold_pipeline() {
    // One warm-up round each, so lazily initialized state (thread-local
    // buffers, allocator metadata) is attributed to neither arm.
    let _ = cold_allocations(false);
    let _ = cold_allocations(true);

    let plain = cold_allocations(false);
    let nulled = cold_allocations(true);
    assert_eq!(
        nulled, plain,
        "the NULL-recorder pipeline allocated {nulled} times vs {plain} plain — \
         an instrumentation tally is not gated on Recorder::is_enabled"
    );
}
