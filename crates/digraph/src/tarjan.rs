//! Tarjan's strongly-connected-components algorithm (iterative).

use crate::Graph;

/// The result of [`tarjan_scc`]: a mapping from nodes to component ids.
///
/// Component ids are assigned in *reverse topological order* of the
/// condensation: if there is an edge from a node in component `a` to a node
/// in a different component `b`, then `a > b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccInfo {
    comp: Vec<u32>,
    count: usize,
}

impl SccInfo {
    /// Component id of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn component(&self, node: usize) -> usize {
        self.comp[node] as usize
    }

    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of nodes in the underlying graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.comp.len()
    }

    /// Size of every component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.comp {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// `true` when `a` and `b` are in the same component.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn same_component(&self, a: usize, b: usize) -> bool {
        self.comp[a] == self.comp[b]
    }

    /// The members of every component, indexed by component id.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.count];
        for (node, &c) in self.comp.iter().enumerate() {
            out[c as usize].push(node);
        }
        out
    }
}

/// Computes strongly connected components.
///
/// # Examples
///
/// ```
/// use lalr_digraph::{tarjan_scc, Graph};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3)]);
/// let scc = tarjan_scc(&g);
/// assert_eq!(scc.count(), 3);
/// assert!(scc.same_component(0, 1));
/// assert!(!scc.same_component(1, 2));
/// // Reverse-topological numbering: the sink {3} gets the smallest id.
/// assert!(scc.component(3) < scc.component(0));
/// ```
pub fn tarjan_scc(graph: &Graph) -> SccInfo {
    let n = graph.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    struct Frame {
        node: u32,
        next_succ: u32,
    }
    let mut frames: Vec<Frame> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        frames.push(Frame {
            node: root as u32,
            next_succ: 0,
        });

        while let Some(frame) = frames.last_mut() {
            let x = frame.node as usize;
            let succs = graph.successors(x);
            if (frame.next_succ as usize) < succs.len() {
                let y = succs[frame.next_succ as usize] as usize;
                frame.next_succ += 1;
                if index[y] == UNVISITED {
                    index[y] = next_index;
                    lowlink[y] = next_index;
                    next_index += 1;
                    stack.push(y as u32);
                    on_stack[y] = true;
                    frames.push(Frame {
                        node: y as u32,
                        next_succ: 0,
                    });
                } else if on_stack[y] {
                    lowlink[x] = lowlink[x].min(index[y]);
                }
            } else {
                frames.pop();
                if lowlink[x] == index[x] {
                    loop {
                        let top = stack.pop().expect("open component on stack") as usize;
                        on_stack[top] = false;
                        comp[top] = comp_count;
                        if top == x {
                            break;
                        }
                    }
                    comp_count += 1;
                }
                if let Some(parent) = frames.last() {
                    let p = parent.node as usize;
                    lowlink[p] = lowlink[p].min(lowlink[x]);
                }
            }
        }
    }

    SccInfo {
        comp,
        count: comp_count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_without_edges() {
        let scc = tarjan_scc(&Graph::new(3));
        assert_eq!(scc.count(), 3);
        assert_eq!(scc.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn one_big_cycle() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.sizes(), vec![4]);
    }

    #[test]
    fn two_cycles_bridged() {
        // {0,1} -> {2,3}
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
        assert!(scc.same_component(0, 1));
        assert!(scc.same_component(2, 3));
        // Edge from comp(0) to comp(2) ⇒ comp(0) numbered later.
        assert!(scc.component(0) > scc.component(2));
    }

    #[test]
    fn members_partition_nodes() {
        let g = Graph::from_edges(5, [(0, 1), (1, 0), (2, 3)]);
        let scc = tarjan_scc(&g);
        let members = scc.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        for (cid, ms) in members.iter().enumerate() {
            for &m in ms {
                assert_eq!(scc.component(m), cid);
            }
        }
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let g = Graph::from_edges(2, [(0, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
    }

    #[test]
    fn deep_chain_iterative() {
        let n = 20_000;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), n);
        // Chain tail is the sink ⇒ component 0.
        assert_eq!(scc.component(n - 1), 0);
        assert_eq!(scc.component(0), n - 1);
    }
}
