//! Offline placeholder for `serde_json`.
//!
//! Present only so Cargo can resolve the dev-dependency edge offline; the
//! single consumer (`crates/tables/tests/serde_roundtrip.rs`) is compiled
//! out unless the `serde` feature is enabled, which the offline build
//! never does. See `vendor/serde/src/lib.rs`.

#![forbid(unsafe_code)]
