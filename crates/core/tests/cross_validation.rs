//! The central correctness claim: the DeRemer–Pennello computation yields
//! exactly the LALR(1) look-ahead sets — validated against the definition
//! (canonical LR(1) merged by core) and against yacc-style propagation, on
//! the whole corpus and on seeded random grammars.

use lalr_automata::{merge_lr1, Lr0Automaton, Lr1Automaton};
use lalr_core::{propagation_lookaheads, LalrAnalysis, LookaheadSets};
use lalr_corpus::synthetic::{random, RandomConfig};
use lalr_grammar::{Grammar, ProdId};

fn dp(grammar: &Grammar, lr0: &Lr0Automaton) -> LookaheadSets {
    LalrAnalysis::compute(grammar, lr0).into_lookaheads()
}

/// The merged LR(1) oracle, normalized: the oracle also records the accept
/// "reduction" of the augmented production, which DP handles as the accept
/// special case — both must agree there too.
fn oracle(grammar: &Grammar, lr0: &Lr0Automaton) -> LookaheadSets {
    let lr1 = Lr1Automaton::build(grammar);
    LookaheadSets::from(&merge_lr1(grammar, &lr1, lr0))
}

#[track_caller]
fn assert_all_methods_agree(name: &str, grammar: &Grammar) {
    let lr0 = Lr0Automaton::build(grammar);
    let dp_la = dp(grammar, &lr0);
    let prop_la = propagation_lookaheads(grammar, &lr0);
    let merge_la = oracle(grammar, &lr0);

    assert_eq!(dp_la, prop_la, "{name}: DP vs propagation");

    // The oracle covers exactly the reachable reductions; DP covers every
    // syntactic reduction point (plus accept). Compare on the oracle's
    // domain and check DP's extras are unreachable-reduction empties.
    for ((state, prod), set) in merge_la.iter() {
        let got = dp_la
            .la(state, prod)
            .unwrap_or_else(|| panic!("{name}: DP misses LA({}, {})", state.index(), prod.index()));
        assert_eq!(
            got,
            set,
            "{name}: LA({}, {}) differs: DP={:?} oracle={:?}",
            state.index(),
            prod.index(),
            got,
            set
        );
    }
    for ((state, prod), set) in dp_la.iter() {
        if merge_la.la(state, prod).is_none() && prod != ProdId::START {
            assert!(
                set.is_empty(),
                "{name}: DP found la for unreachable reduction ({}, {})",
                state.index(),
                prod.index()
            );
        }
    }
}

#[test]
fn corpus_grammars_agree() {
    for entry in lalr_corpus::all_entries() {
        assert_all_methods_agree(entry.name, &entry.grammar());
    }
}

#[test]
fn synthetic_families_agree() {
    for levels in [1, 3, 8] {
        assert_all_methods_agree(
            &format!("ladder{levels}"),
            &lalr_corpus::synthetic::expr_ladder(levels),
        );
    }
    for depth in [1, 5, 20] {
        assert_all_methods_agree(
            &format!("chain{depth}"),
            &lalr_corpus::synthetic::chain(depth),
        );
    }
    for n in [1, 4, 7] {
        assert_all_methods_agree(
            &format!("nullable{n}"),
            &lalr_corpus::synthetic::nullable_blocks(n),
        );
    }
    for n in [1, 3] {
        assert_all_methods_agree(
            &format!("lists{n}"),
            &lalr_corpus::synthetic::nested_lists(n),
        );
    }
}

#[test]
fn random_grammars_agree() {
    // 150 seeded random grammars, including ε-heavy ones (the regime where
    // reads/includes interact most).
    for seed in 0..100u64 {
        let g = random(seed, RandomConfig::default());
        assert_all_methods_agree(&format!("random{seed}"), &g);
    }
    let eps_heavy = RandomConfig {
        epsilon_prob: 0.4,
        ..RandomConfig::default()
    };
    for seed in 0..50u64 {
        let g = random(seed, eps_heavy);
        assert_all_methods_agree(&format!("eps{seed}"), &g);
    }
}

#[test]
fn selective_agrees_with_full_on_corpus_and_random() {
    let check = |name: &str, grammar: &Grammar| {
        let lr0 = Lr0Automaton::build(grammar);
        let full = dp(grammar, &lr0);
        let sel = lalr_core::selective_lookaheads(grammar, &lr0);
        for ((state, prod), la) in sel.lookaheads().iter() {
            assert_eq!(
                full.la(state, prod),
                Some(la),
                "{name}: selective LA({}, {})",
                state.index(),
                prod.index()
            );
        }
        // Every inadequate reduction is covered.
        for &state in sel.inadequate_states() {
            for &prod in lr0.reductions(state) {
                assert!(sel.lookaheads().la(state, prod).is_some(), "{name}");
            }
        }
    };
    for entry in lalr_corpus::all_entries() {
        check(entry.name, &entry.grammar());
    }
    for seed in 0..60u64 {
        check(
            &format!("random{seed}"),
            &random(seed, RandomConfig::default()),
        );
    }
}

/// The dense-layout differential: on every corpus grammar, all five
/// methods must tell the same story no matter how many threads the
/// DeRemer–Pennello pipeline uses — parallel DP is bit-identical to
/// sequential DP, both match yacc-style propagation and the merged-LR(1)
/// oracle exactly, and SLR/NQLALR remain supersets. This pins down the
/// dense `LookaheadSets` rows and the CSR lookback slab (including the
/// sharded parallel merge) as result-identical representations.
#[test]
fn corpus_methods_agree_across_thread_counts() {
    use lalr_core::Parallelism;
    for entry in lalr_corpus::all_entries() {
        let name = entry.name;
        let g = entry.grammar();
        let lr0 = Lr0Automaton::build(&g);
        let seq = dp(&g, &lr0);
        let prop_la = propagation_lookaheads(&g, &lr0);
        let slr = lalr_core::slr_lookaheads(&g, &lr0);
        let nq = lalr_core::NqlalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let merge_la = oracle(&g, &lr0);
        for threads in [1usize, 2, 4, 8] {
            let par =
                LalrAnalysis::compute_with(&g, &lr0, &Parallelism::new(threads)).into_lookaheads();
            assert_eq!(par, seq, "{name}: parallel({threads}) DP vs sequential DP");
            assert_eq!(par, prop_la, "{name}: DP({threads}) vs propagation");
            for ((state, prod), set) in merge_la.iter() {
                assert_eq!(
                    par.la(state, prod),
                    Some(set),
                    "{name}: DP({threads}) vs merged LR(1) at ({}, {})",
                    state.index(),
                    prod.index()
                );
            }
            for ((state, prod), set) in par.iter() {
                if prod == ProdId::START {
                    continue;
                }
                if let Some(s) = slr.la(state, prod) {
                    assert!(set.is_subset(s), "{name}: SLR ⊇ DP({threads})");
                }
                if let Some(s) = nq.la(state, prod) {
                    assert!(set.is_subset(s), "{name}: NQLALR ⊇ DP({threads})");
                }
            }
        }
    }
}

#[test]
fn slr_is_superset_and_nqlalr_is_superset_on_corpus() {
    for entry in lalr_corpus::all_entries() {
        let g = entry.grammar();
        let lr0 = Lr0Automaton::build(&g);
        let dp_la = dp(&g, &lr0);
        let slr = lalr_core::slr_lookaheads(&g, &lr0);
        let nq = lalr_core::NqlalrAnalysis::compute(&g, &lr0).into_lookaheads();
        for ((state, prod), set) in dp_la.iter() {
            if prod == ProdId::START {
                continue; // accept special case is not an SLR reduction
            }
            if let Some(slr_set) = slr.la(state, prod) {
                assert!(set.is_subset(slr_set), "{}: SLR ⊇ LALR", entry.name);
            }
            if let Some(nq_set) = nq.la(state, prod) {
                assert!(set.is_subset(nq_set), "{}: NQLALR ⊇ LALR", entry.name);
            }
        }
    }
}
