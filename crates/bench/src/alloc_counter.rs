//! A counting global allocator (experiment **E11**).
//!
//! Wraps the system allocator and counts every allocation request and its
//! byte size, so the evaluation can report *allocation pressure* of the
//! cold `grammar → LA sets` pipeline per method — the quantity the
//! dense-index memory layout is designed to reduce. Linking `lalr-bench`
//! installs the counter as the global allocator for every binary, bench
//! and test of this crate; the counters cost two relaxed atomic adds per
//! allocation and do not perturb the timings measurably.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The system allocator behind relaxed allocation/byte counters.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to `System`; the counters are side tables.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one more allocator round-trip; count the newly
        // requested size (the classic `heaptrack` convention).
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation counters captured around a region; see [`measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of allocation requests (`alloc` + `realloc`).
    pub allocations: usize,
    /// Total bytes requested.
    pub bytes: usize,
}

fn snapshot() -> (usize, usize) {
    (
        ALLOCATIONS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Cumulative `(allocations, bytes)` since process start.
///
/// Matches the `lalr_obs::AllocProbe` signature, so a
/// `CollectingRecorder::with_alloc_probe(lalr_bench::alloc_counter::totals)`
/// attributes allocation deltas to pipeline spans (the CLI's `profile`
/// command does exactly this).
pub fn totals() -> (u64, u64) {
    let (a, b) = snapshot();
    (a as u64, b as u64)
}

/// Runs `f` and returns its result with the allocation activity observed
/// while it ran.
///
/// The counters are process-global, so concurrent allocations from other
/// threads are attributed to the measured region; measure on a quiet
/// process (the report binary and the budget test are single-threaded
/// while measuring).
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocStats) {
    let (a0, b0) = snapshot();
    let out = f();
    let (a1, b1) = snapshot();
    (
        out,
        AllocStats {
            allocations: a1 - a0,
            bytes: b1 - b0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_a_vec_allocation() {
        let (len, stats) = measure(|| {
            let v: Vec<u64> = Vec::with_capacity(1000);
            v.capacity()
        });
        assert_eq!(len, 1000);
        assert!(stats.allocations >= 1);
        assert!(stats.bytes >= 8000);
    }

    #[test]
    fn measure_of_allocation_free_region_is_zero() {
        let (_, stats) = measure(|| std::hint::black_box(1u64 + 1));
        assert_eq!(stats.allocations, 0);
        assert_eq!(stats.bytes, 0);
    }
}
