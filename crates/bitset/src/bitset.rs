//! The [`BitSet`] type.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Sub};

use crate::{kernels, words_for, BITS};

/// A dense set of `usize` indices backed by machine words.
///
/// The set has a fixed *universe size* chosen at construction; indices in
/// `0..len()` may be inserted. This mirrors the paper's use of bit vectors
/// sized to the terminal alphabet.
///
/// # Examples
///
/// ```
/// use lalr_bitset::BitSet;
///
/// let mut s = BitSet::new(10);
/// s.insert(2);
/// s.insert(9);
/// assert!(s.contains(2));
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    words: Vec<usize>,
    /// Universe size in bits.
    len: usize,
}

impl BitSet {
    /// Creates an empty set with universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates a set containing every index in `0..len`.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = usize::MAX;
        }
        s.trim();
        s
    }

    /// Builds a set from an iterator of indices over the universe `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, iter: I) -> Self {
        let mut s = BitSet::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The universe size (not the number of set bits; see [`BitSet::count`]).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> usize {
        kernels::popcount(&self.words)
    }

    /// Inserts `idx`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of range 0..{}",
            self.len
        );
        let (w, b) = (idx / BITS, idx % BITS);
        let mask = 1usize << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `idx`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of range 0..{}",
            self.len
        );
        let (w, b) = (idx / BITS, idx % BITS);
        let mask = 1usize << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Tests membership. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        let (w, b) = (idx / BITS, idx % BITS);
        self.words[w] & (1usize << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union; returns `true` if `self` changed.
    ///
    /// This is the hot operation of the Digraph traversal, so it reports
    /// whether anything was added (used by worklist algorithms to detect
    /// fixpoints without a separate comparison pass). Delegates to
    /// [`kernels::or_into`], which picks the fixed-width or wide lane by
    /// row width.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let changed = kernels::or_into(&mut self.words, &other.words);
        kernels::debug_assert_tail_clear(&self.words, self.len);
        changed
    }

    /// In-place intersection; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place difference (`self \ other`); returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & !b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Returns `true` if the sets share no element.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        kernels::is_disjoint(&self.words, &other.words)
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        kernels::is_subset(&self.words, &other.words)
    }

    /// Iterates over the set bits in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// A view of the underlying words, least-significant bit first.
    ///
    /// Useful for bulk unions into [`crate::BitMatrix`] rows via
    /// [`crate::BitMatrix::union_row_with_words`].
    pub fn as_words(&self) -> &[usize] {
        &self.words
    }

    /// Borrows the set as a [`crate::BitSetRef`] view.
    pub fn as_ref_set(&self) -> crate::BitSetRef<'_> {
        crate::BitSetRef::from_words(&self.words, self.len)
    }

    /// Builds a set directly from its raw word storage.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `words.len()` is not exactly
    /// `words_for(len)`.
    pub(crate) fn from_words(words: Vec<usize>, len: usize) -> Self {
        debug_assert_eq!(
            words.len(),
            words_for(len),
            "raw storage must hold exactly words_for(len) words"
        );
        BitSet { words, len }
    }

    /// Clears any bits beyond `len` that block-wise ops may have set.
    fn trim(&mut self) {
        let used = self.len % BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1usize << used) - 1;
            }
        }
    }
}

/// Iterator over set bits; see [`BitSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: usize,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * BITS + bit);
            }
            self.word_idx += 1;
            self.current = *self.set.words.get(self.word_idx)?;
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for i in iter {
            self.insert(i);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl BitOr for &BitSet {
    type Output = BitSet;

    fn bitor(self, rhs: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(rhs);
        out
    }
}

impl BitAnd for &BitSet {
    type Output = BitSet;

    fn bitand(self, rhs: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(rhs);
        out
    }
}

impl Sub for &BitSet {
    type Output = BitSet;

    fn sub(self, rhs: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.difference_with(rhs);
        out
    }
}

impl BitXor for &BitSet {
    type Output = BitSet;

    fn bitxor(self, rhs: &BitSet) -> BitSet {
        assert_eq!(self.len, rhs.len, "universe mismatch");
        let mut out = self.clone();
        for (a, &b) in out.words.iter_mut().zip(&rhs.words) {
            *a ^= b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(199));
        assert!(!s.insert(199), "second insert reports not-fresh");
        assert!(s.contains(0));
        assert!(s.contains(199));
        assert!(!s.contains(100));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn empty_and_count() {
        let mut s = BitSet::new(65);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        s.insert(64);
        assert!(!s.is_empty());
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().next(), None);
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn full_respects_len() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::from_indices(10, [1, 2]);
        let b = BitSet::from_indices(10, [2, 3]);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(100, [1, 50, 99]);
        let b = BitSet::from_indices(100, [50, 60]);
        assert_eq!((&a | &b).iter().collect::<Vec<_>>(), vec![1, 50, 60, 99]);
        assert_eq!((&a & &b).iter().collect::<Vec<_>>(), vec![50]);
        assert_eq!((&a - &b).iter().collect::<Vec<_>>(), vec![1, 99]);
        assert_eq!((&a ^ &b).iter().collect::<Vec<_>>(), vec![1, 60, 99]);
    }

    #[test]
    fn subset_disjoint() {
        let a = BitSet::from_indices(64, [3, 7]);
        let b = BitSet::from_indices(64, [3, 7, 9]);
        let c = BitSet::from_indices(64, [10]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let idx = [0, 63, 64, 65, 127, 128];
        let s = BitSet::from_indices(129, idx);
        assert_eq!(s.iter().collect::<Vec<_>>(), idx.to_vec());
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn extend_and_from_indices_agree() {
        let mut a = BitSet::new(20);
        a.extend([4, 5, 6]);
        let b = BitSet::from_indices(20, [4, 5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_set_like() {
        let s = BitSet::from_indices(8, [1, 3]);
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }
}
