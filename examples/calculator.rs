//! A complete calculator: ambiguous grammar tamed by precedence
//! declarations (the yacc workflow), parse trees evaluated to numbers.
//!
//! ```text
//! cargo run --example calculator -- "1 + 2 * 3 - (4 - 5) / 2"
//! ```

use lalr::prelude::*;
use lalr::runtime::ParseTree;

const GRAMMAR: &str = r#"
    %left "+" "-"
    %left "*" "/"
    %right NEG
    expr : expr "+" expr
         | expr "-" expr
         | expr "*" expr
         | expr "/" expr
         | "-" expr %prec NEG
         | "(" expr ")"
         | NUM
         ;
"#;

fn eval(tree: &ParseTree) -> f64 {
    match tree {
        ParseTree::Leaf(tok) => tok.text().parse().unwrap_or(0.0),
        ParseTree::Node { children, .. } => match children.as_slice() {
            // expr op expr
            [l, ParseTree::Leaf(op), r] if "+-*/".contains(op.text()) => {
                let (a, b) = (eval(l), eval(r));
                match op.text() {
                    "+" => a + b,
                    "-" => a - b,
                    "*" => a * b,
                    _ => a / b,
                }
            }
            // ( expr )
            [ParseTree::Leaf(open), inner, _close] if open.text() == "(" => eval(inner),
            // - expr
            [ParseTree::Leaf(minus), inner] if minus.text() == "-" => -eval(inner),
            // unit productions
            [single] => eval(single),
            other => panic!("unexpected node shape: {} children", other.len()),
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "1 + 2 * 3 - (4 - 5) / 2".to_string());

    let grammar = parse_grammar(GRAMMAR)?;
    let lr0 = Lr0Automaton::build(&grammar);
    let analysis = LalrAnalysis::compute(&grammar, &lr0);
    println!(
        "raw conflicts before precedence: {}",
        analysis.conflicts(&grammar, &lr0).len()
    );

    let table = build_table(
        &grammar,
        &lr0,
        analysis.lookaheads(),
        TableOptions::default(),
    );
    println!(
        "resolutions applied by precedence/assoc: {}",
        table.resolutions().len()
    );

    let lexer = Lexer::for_table(&table).number("NUM").build();
    let tree = Parser::new(&table).parse(lexer.tokenize(&input)?)?;
    println!("{input} = {}", eval(&tree));
    Ok(())
}
