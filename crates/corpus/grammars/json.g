// JSON (RFC 8259 shape), LALR(1).
%start value

value : object | array | STRING | NUMBER | TRUE | FALSE | NULL ;

object  : "{" members "}" | "{" "}" ;
members : member | members "," member ;
member  : STRING ":" value ;

array    : "[" elements "]" | "[" "]" ;
elements : value | elements "," value ;
