//! The tracing no-overhead contract, extending the `obs_overhead.rs`
//! discipline to the daemon hot path: a service whose flight recorder
//! is *disabled* must execute `call` exactly like a pre-tracing service
//! — same allocation count, byte for byte. Every tracing hook starts
//! with an `Option` check on the recorder, so the disabled path
//! compiles down to the untraced code; an ungated `Arc::new`,
//! `Instant::now` box, or stage tally shows up here as an allocation
//! delta before any benchmark notices.
//!
//! A second assertion bounds the *armed* path: sampling 1-in-N must
//! allocate on sampled requests only, so an armed-but-never-sampling
//! recorder (`sample_every` larger than the request count) is also
//! allocation-identical on the steady-state path.
//!
//! This file is its own test binary (one test family, no concurrency),
//! so the process-global allocation counters see only the measured
//! calls.

use lalr_bench::alloc_counter::measure;
use lalr_core::Parallelism;
use lalr_service::{GrammarFormat, Request, Service, ServiceConfig, TraceConfig};

const GRAMMAR: &str = "e : e \"+\" t | t ; t : \"x\" ;";

fn service(tracing: Option<TraceConfig>) -> Service {
    Service::new(ServiceConfig {
        workers: Parallelism::new(1),
        tracing,
        ..ServiceConfig::default()
    })
}

fn compile_request() -> Request {
    Request::Compile {
        grammar: GRAMMAR.to_string(),
        format: GrammarFormat::Native,
    }
}

/// Allocations of one warm (cache-hit) `call` on an already-warmed
/// service: the daemon steady-state hot path.
fn warm_call_allocations(service: &Service) -> usize {
    let ((), stats) = measure(|| {
        let response = service.call(compile_request(), None);
        assert!(response.is_ok(), "{response:?}");
        std::hint::black_box(&response);
    });
    stats.allocations
}

#[test]
fn disabled_tracing_adds_zero_allocations_to_the_request_path() {
    // Arm A: tracing disabled entirely (the library default).
    let plain = service(None);
    // Arm B: recorder armed but sampling 1-in-1M, so no request in this
    // test is ever sampled — the begin/finish hooks run their cheap
    // should-sample check and nothing else.
    let armed_idle = service(Some(TraceConfig {
        capacity: 64,
        sample_every: 1_000_000,
    }));
    // Arm C: sampling every request, as an upper bound and a sanity
    // check that the probe actually sees tracing allocations at all.
    let armed_hot = service(Some(TraceConfig {
        capacity: 64,
        sample_every: 1,
    }));

    // Warm every arm (cold compile + one warm round for lazily
    // initialized state), so measured calls are pure cache hits.
    for s in [&plain, &armed_idle, &armed_hot] {
        assert!(s.call(compile_request(), None).is_ok());
        let _ = warm_call_allocations(s);
    }

    let base = warm_call_allocations(&plain);
    let idle = warm_call_allocations(&armed_idle);
    assert_eq!(
        idle, base,
        "an armed-but-not-sampling recorder allocated {idle} times vs {base} untraced — \
         a tracing hook is not gated on the sampling decision"
    );

    // Not a strict equality (the sampled arm legitimately allocates the
    // ActiveTrace Arc), but it must stay within a handful of
    // allocations of the base path.
    let hot = warm_call_allocations(&armed_hot);
    assert!(
        hot >= base,
        "sampled path allocated less ({hot}) than untraced ({base})?"
    );
    assert!(
        hot - base <= 8,
        "sampling one request cost {} extra allocations (budget: 8)",
        hot - base
    );

    plain.shutdown();
    armed_idle.shutdown();
    armed_hot.shutdown();
}
