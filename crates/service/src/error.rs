//! Structured service failures.
//!
//! Every request path returns a [`ServiceError`] instead of panicking —
//! the compile pipeline runs under `catch_unwind`, so even a bug in the
//! engine surfaces as a `panicked` error response rather than taking a
//! worker (or the daemon) down. Errors are `Clone` because a coalesced
//! compile failure is delivered to every waiter.

use std::fmt;

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The grammar text did not parse.
    BadGrammar(String),
    /// The request was structurally invalid (bad JSON shape, unknown op,
    /// unknown terminal name, …).
    BadRequest(String),
    /// The request body exceeded the configured size guard.
    TooLarge {
        /// Size of the offending payload in bytes.
        size: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A fingerprint-addressed request named an artifact the cache does
    /// not hold (never compiled, or since evicted). Clients should fall
    /// back to sending the grammar text.
    NotFound(String),
    /// The request missed its deadline (in queue or during execution).
    DeadlineExceeded {
        /// How long the request had been in the service when it expired.
        elapsed_ms: u64,
    },
    /// The compile pipeline panicked; the payload is the panic message.
    Panicked(String),
    /// The service is shutting down or over its concurrency cap.
    Unavailable(String),
    /// The service is in degraded mode: it keeps serving warm cache and
    /// store hits but sheds cold compiles until pressure subsides.
    /// Clients should back off and retry — the state is transient.
    Degraded(String),
    /// Admission control rejected the request before it was queued:
    /// a per-peer connection quota, the request rate limit, or an armed
    /// admission failpoint. Retryable after backoff.
    Throttled(String),
    /// The pending-request queue is full; the request was shed without
    /// being executed. Clients should back off and retry.
    Overloaded {
        /// Requests already waiting when this one was rejected.
        pending: usize,
        /// The configured queue limit.
        limit: usize,
    },
    /// A client-side timeout: connect or read exceeded its budget.
    Timeout(String),
    /// The client could not connect at all (nobody listening).
    Refused(String),
    /// The connection closed before a complete response line arrived
    /// (either before any bytes, or mid-line — the payload says which).
    Closed(String),
    /// A client-side transport failure (connect, read, write, framing).
    Io(String),
}

impl ServiceError {
    /// Converts a `catch_unwind` payload into a [`ServiceError::Panicked`]
    /// carrying the panic message (the common `&str`/`String` payloads;
    /// anything else becomes `"unknown panic"`).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> ServiceError {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_string());
        ServiceError::Panicked(msg)
    }

    /// Stable machine-readable discriminator used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::BadGrammar(_) => "bad_grammar",
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::TooLarge { .. } => "too_large",
            ServiceError::NotFound(_) => "not_found",
            ServiceError::DeadlineExceeded { .. } => "deadline",
            ServiceError::Panicked(_) => "panicked",
            ServiceError::Unavailable(_) => "unavailable",
            ServiceError::Degraded(_) => "degraded",
            ServiceError::Throttled(_) => "throttled",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::Timeout(_) => "timeout",
            ServiceError::Refused(_) => "refused",
            ServiceError::Closed(_) => "closed",
            ServiceError::Io(_) => "io",
        }
    }

    /// Whether a retry might succeed: transient transport and capacity
    /// failures are retryable; structural errors (bad grammar/request,
    /// oversized payload) and expired deadlines are not. Used by the
    /// client's retry loop.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::Unavailable(_)
                | ServiceError::Degraded(_)
                | ServiceError::Throttled(_)
                | ServiceError::Panicked(_)
                | ServiceError::Timeout(_)
                | ServiceError::Refused(_)
                | ServiceError::Closed(_)
                | ServiceError::Io(_)
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadGrammar(m) => write!(f, "grammar error: {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::TooLarge { size, limit } => {
                write!(f, "request of {size} bytes exceeds the {limit}-byte limit")
            }
            ServiceError::NotFound(m) => write!(f, "not found: {m}"),
            ServiceError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "deadline exceeded after {elapsed_ms} ms")
            }
            ServiceError::Panicked(m) => write!(f, "compile pipeline panicked: {m}"),
            ServiceError::Unavailable(m) => write!(f, "service unavailable: {m}"),
            ServiceError::Degraded(m) => write!(f, "service degraded: {m}"),
            ServiceError::Throttled(m) => write!(f, "throttled: {m}"),
            ServiceError::Overloaded { pending, limit } => {
                write!(f, "overloaded: {pending} requests pending (limit {limit})")
            }
            ServiceError::Timeout(m) => write!(f, "timed out: {m}"),
            ServiceError::Refused(m) => write!(f, "connection refused: {m}"),
            ServiceError::Closed(m) => write!(f, "connection closed: {m}"),
            ServiceError::Io(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let e = ServiceError::TooLarge { size: 10, limit: 5 };
        assert_eq!(e.kind(), "too_large");
        assert!(e.to_string().contains("10 bytes"));
        assert_eq!(
            ServiceError::BadGrammar(String::new()).kind(),
            "bad_grammar"
        );
        assert_eq!(
            ServiceError::DeadlineExceeded { elapsed_ms: 7 }.kind(),
            "deadline"
        );
        let e = ServiceError::Overloaded {
            pending: 9,
            limit: 8,
        };
        assert_eq!(e.kind(), "overloaded");
        assert!(e.to_string().contains("limit 8"));
        assert_eq!(ServiceError::Timeout(String::new()).kind(), "timeout");
        assert_eq!(ServiceError::Refused(String::new()).kind(), "refused");
        assert_eq!(ServiceError::Closed(String::new()).kind(), "closed");
        let e = ServiceError::Degraded("cold compile shed".into());
        assert_eq!(e.kind(), "degraded");
        assert!(e.to_string().contains("degraded"));
        let e = ServiceError::Throttled("peer quota".into());
        assert_eq!(e.kind(), "throttled");
        assert!(e.to_string().contains("throttled"));
    }

    #[test]
    fn retryability_splits_transient_from_structural() {
        for e in [
            ServiceError::Overloaded {
                pending: 1,
                limit: 1,
            },
            ServiceError::Unavailable("draining".into()),
            ServiceError::Degraded("cold compile shed".into()),
            ServiceError::Throttled("rate limit".into()),
            ServiceError::Panicked("boom".into()),
            ServiceError::Timeout("read".into()),
            ServiceError::Refused("connect".into()),
            ServiceError::Closed("mid-line".into()),
            ServiceError::Io("reset".into()),
        ] {
            assert!(e.is_retryable(), "{e}");
        }
        for e in [
            ServiceError::BadGrammar("x".into()),
            ServiceError::BadRequest("x".into()),
            ServiceError::TooLarge { size: 2, limit: 1 },
            ServiceError::NotFound("no such artifact".into()),
            ServiceError::DeadlineExceeded { elapsed_ms: 1 },
        ] {
            assert!(!e.is_retryable(), "{e}");
        }
        assert_eq!(ServiceError::NotFound(String::new()).kind(), "not_found");
    }
}
