//! The LR parsing runtime: drive a [`lalr_tables::ParseTable`] over a
//! token stream.
//!
//! * [`Token`] / [`Lexer`] — a small configurable lexer that derives its
//!   literal and keyword tables from the parse table's terminal names.
//! * [`Parser`] — the classic shift-reduce driver, generic over
//!   [`ActionSource`] so it runs identically on dense and compressed
//!   tables; builds a [`ParseTree`].
//! * [`ParseError`] — positioned errors listing the expected terminals.
//! * Panic-mode error recovery via [`Parser::parse_with_recovery`].
//!
//! # Examples
//!
//! ```
//! use lalr_automata::Lr0Automaton;
//! use lalr_core::LalrAnalysis;
//! use lalr_grammar::parse_grammar;
//! use lalr_runtime::{Lexer, Parser};
//! use lalr_tables::{build_table, TableOptions};
//!
//! let g = parse_grammar("e : e \"+\" t | t ; t : NUM ;")?;
//! let lr0 = Lr0Automaton::build(&g);
//! let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
//! let table = build_table(&g, &lr0, &la, TableOptions::default());
//!
//! let lexer = Lexer::for_table(&table).number("NUM").build();
//! let tokens = lexer.tokenize("1 + 2 + 3")?;
//! let tree = Parser::new(&table).parse(tokens)?;
//! assert_eq!(tree.leaf_count(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod lexer;
mod parser;
mod token;
mod tree;

pub use error::{LexError, ParseError};
pub use lexer::{Lexer, LexerBuilder};
pub use parser::{ActionSource, CompressedSource, Parser};
pub use token::Token;
pub use tree::ParseTree;
