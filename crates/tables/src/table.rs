//! The dense [`ParseTable`].

use crate::action::Action;

/// What the runtime needs to know about one production.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProductionInfo {
    /// LHS nonterminal index.
    pub lhs: u32,
    /// RHS length (how many stack entries a reduce pops).
    pub rhs_len: u32,
    /// Rendering like `expr -> expr "+" term` for diagnostics.
    pub display: String,
}

/// Size/occupancy statistics of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Number of automaton states.
    pub states: usize,
    /// Terminal count (ACTION columns).
    pub terminals: usize,
    /// Nonterminal count (GOTO columns).
    pub nonterminals: usize,
    /// Non-error ACTION entries.
    pub action_entries: usize,
    /// Present GOTO entries.
    pub goto_entries: usize,
}

/// A dense LALR parse table: `ACTION[state][terminal]` and
/// `GOTO[state][nonterminal]`, plus production metadata and symbol names.
///
/// Self-contained: the runtime drives parses from this value alone.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParseTable {
    pub(crate) actions: Vec<Action>,
    pub(crate) gotos: Vec<u32>, // u32::MAX = absent
    pub(crate) states: u32,
    pub(crate) terminals: u32,
    pub(crate) nonterminals: u32,
    pub(crate) productions: Vec<ProductionInfo>,
    pub(crate) terminal_names: Vec<String>,
    pub(crate) nonterminal_names: Vec<String>,
    pub(crate) resolutions: Vec<crate::build::Resolution>,
}

pub(crate) const NO_GOTO: u32 = u32::MAX;

impl ParseTable {
    /// `ACTION[state][terminal]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn action(&self, state: u32, terminal: u32) -> Action {
        assert!(state < self.states && terminal < self.terminals);
        self.actions[(state * self.terminals + terminal) as usize]
    }

    /// `GOTO[state][nonterminal]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn goto(&self, state: u32, nonterminal: u32) -> Option<u32> {
        assert!(state < self.states && nonterminal < self.nonterminals);
        let v = self.gotos[(state * self.nonterminals + nonterminal) as usize];
        (v != NO_GOTO).then_some(v)
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> u32 {
        self.states
    }

    /// Number of terminals (including `$` at index 0).
    #[inline]
    pub fn terminal_count(&self) -> u32 {
        self.terminals
    }

    /// Number of nonterminals (including `<start>` at index 0).
    #[inline]
    pub fn nonterminal_count(&self) -> u32 {
        self.nonterminals
    }

    /// Metadata for a production.
    ///
    /// # Panics
    ///
    /// Panics if `prod` is out of range.
    #[inline]
    pub fn production(&self, prod: u32) -> &ProductionInfo {
        &self.productions[prod as usize]
    }

    /// Number of productions.
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    /// The name of a terminal.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn terminal_name(&self, terminal: u32) -> &str {
        &self.terminal_names[terminal as usize]
    }

    /// Looks up a terminal index by name.
    pub fn terminal_by_name(&self, name: &str) -> Option<u32> {
        self.terminal_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u32)
    }

    /// The name of a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `nonterminal` is out of range.
    pub fn nonterminal_name(&self, nonterminal: u32) -> &str {
        &self.nonterminal_names[nonterminal as usize]
    }

    /// The terminals with a non-error action in `state` (error-message
    /// material).
    pub fn expected_terminals(&self, state: u32) -> Vec<u32> {
        (0..self.terminals)
            .filter(|&t| !self.action(state, t).is_error())
            .collect()
    }

    /// The flat row-major `ACTION` array (`states × terminals`), for
    /// serializers.
    pub fn actions_raw(&self) -> &[Action] {
        &self.actions
    }

    /// The flat row-major `GOTO` array (`states × nonterminals`,
    /// `u32::MAX` = absent), for serializers.
    pub fn gotos_raw(&self) -> &[u32] {
        &self.gotos
    }

    /// All production metadata, in production order.
    pub fn production_infos(&self) -> &[ProductionInfo] {
        &self.productions
    }

    /// All terminal names, in index order.
    pub fn terminal_names(&self) -> &[String] {
        &self.terminal_names
    }

    /// All nonterminal names, in index order.
    pub fn nonterminal_names(&self) -> &[String] {
        &self.nonterminal_names
    }

    /// Reassembles a table from its raw parts — the inverse of the
    /// `*_raw`/name/production accessors, used by the on-disk artifact
    /// store. Dimensions are validated.
    ///
    /// # Panics
    ///
    /// Panics if the array lengths disagree with the dimensions.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        actions: Vec<Action>,
        gotos: Vec<u32>,
        states: u32,
        terminals: u32,
        nonterminals: u32,
        productions: Vec<ProductionInfo>,
        terminal_names: Vec<String>,
        nonterminal_names: Vec<String>,
        resolutions: Vec<crate::build::Resolution>,
    ) -> ParseTable {
        assert_eq!(actions.len(), (states * terminals) as usize);
        assert_eq!(gotos.len(), (states * nonterminals) as usize);
        assert_eq!(terminal_names.len(), terminals as usize);
        assert_eq!(nonterminal_names.len(), nonterminals as usize);
        ParseTable {
            actions,
            gotos,
            states,
            terminals,
            nonterminals,
            productions,
            terminal_names,
            nonterminal_names,
            resolutions,
        }
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            states: self.states as usize,
            terminals: self.terminals as usize,
            nonterminals: self.nonterminals as usize,
            action_entries: self.actions.iter().filter(|a| !a.is_error()).count(),
            goto_entries: self.gotos.iter().filter(|&&g| g != NO_GOTO).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_table, TableOptions};
    use lalr_automata::Lr0Automaton;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    fn table(src: &str) -> ParseTable {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        build_table(&g, &lr0, &la, TableOptions::default())
    }

    #[test]
    fn dimensions_and_metadata() {
        let t = table("s : \"a\" s | \"b\" ;");
        assert_eq!(t.terminal_count(), 3);
        assert_eq!(t.nonterminal_count(), 2);
        assert_eq!(t.production_count(), 3);
        assert_eq!(t.production(1).rhs_len, 2);
        assert_eq!(t.production(1).lhs, 1);
        assert_eq!(t.terminal_name(0), "$");
        assert_eq!(t.terminal_by_name("a"), Some(1));
        assert_eq!(t.terminal_by_name("zz"), None);
        assert_eq!(t.nonterminal_name(1), "s");
    }

    #[test]
    fn stats_count_nonerror_entries() {
        let t = table("s : \"a\" ;");
        let st = t.stats();
        assert!(st.action_entries >= 3, "shift a, accept, reduce on $");
        assert!(st.goto_entries >= 1);
        assert_eq!(st.states, t.state_count() as usize);
    }

    #[test]
    fn expected_terminals_in_start_state() {
        let t = table("s : \"a\" s | \"b\" ;");
        let expected: Vec<String> = t
            .expected_terminals(0)
            .into_iter()
            .map(|i| t.terminal_name(i).to_string())
            .collect();
        assert_eq!(expected, vec!["a", "b"]);
    }
}
