//! LR(0) items and item sets.

use std::sync::atomic::{AtomicUsize, Ordering};

use lalr_grammar::{Grammar, ProdId, Symbol};

/// Process-wide count of [`ItemSet`] clones, for the zero-copy interning
/// invariant test; see [`item_set_clone_count`].
static ITEM_SET_CLONES: AtomicUsize = AtomicUsize::new(0);

/// Number of [`ItemSet`] clones performed by this process so far.
///
/// `Lr0Automaton::build` interns kernels without cloning them; tests
/// assert that by sampling this counter before and after a build. Only
/// explicit `.clone()` calls count — moves and borrows do not.
pub fn item_set_clone_count() -> usize {
    ITEM_SET_CLONES.load(Ordering::Relaxed)
}

/// An LR(0) item `A → α · β`: a production plus a dot position.
///
/// # Examples
///
/// ```
/// use lalr_automata::Item;
/// use lalr_grammar::{parse_grammar, ProdId};
///
/// let g = parse_grammar("s : \"a\" \"b\" ;")?;
/// let item = Item::start_of(ProdId::new(1));
/// assert_eq!(item.display(&g), "s -> . a b");
/// let next = item.advanced();
/// assert_eq!(next.display(&g), "s -> a . b");
/// assert!(next.advanced().is_final(&g));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    prod: ProdId,
    dot: u32,
}

impl Item {
    /// The item with the dot at the far left of `prod`.
    pub fn start_of(prod: ProdId) -> Item {
        Item { prod, dot: 0 }
    }

    /// Creates an item with an explicit dot position.
    pub fn new(prod: ProdId, dot: usize) -> Item {
        Item {
            prod,
            dot: dot as u32,
        }
    }

    /// The production this item is over.
    #[inline]
    pub fn production(self) -> ProdId {
        self.prod
    }

    /// Dot position (0 = before the first symbol).
    #[inline]
    pub fn dot(self) -> usize {
        self.dot as usize
    }

    /// The symbol right after the dot, or `None` for a final item.
    pub fn next_symbol(self, grammar: &Grammar) -> Option<Symbol> {
        grammar.production(self.prod).rhs().get(self.dot()).copied()
    }

    /// The RHS suffix strictly after the next symbol (`γ` in `A → α · X γ`).
    ///
    /// # Panics
    ///
    /// Panics if the item is final.
    pub fn tail_after_next(self, grammar: &Grammar) -> &[Symbol] {
        &grammar.production(self.prod).rhs()[self.dot() + 1..]
    }

    /// `true` when the dot is at the far right (a reduction item).
    pub fn is_final(self, grammar: &Grammar) -> bool {
        self.dot() == grammar.production(self.prod).len()
    }

    /// `true` when the dot is at the far left.
    #[inline]
    pub fn is_initial(self) -> bool {
        self.dot == 0
    }

    /// The item with the dot moved one symbol right.
    ///
    /// The caller must ensure the item is not final (checked downstream by
    /// `next_symbol`).
    pub fn advanced(self) -> Item {
        Item {
            prod: self.prod,
            dot: self.dot + 1,
        }
    }

    /// Renders the item as `lhs -> α . β`.
    pub fn display(self, grammar: &Grammar) -> String {
        let p = grammar.production(self.prod);
        let mut parts: Vec<&str> = Vec::with_capacity(p.len() + 1);
        for (i, &s) in p.rhs().iter().enumerate() {
            if i == self.dot() {
                parts.push(".");
            }
            parts.push(grammar.name_of(s));
        }
        if self.is_final(grammar) {
            parts.push(".");
        }
        format!(
            "{} -> {}",
            grammar.nonterminal_name(p.lhs()),
            parts.join(" ")
        )
    }
}

/// A sorted, deduplicated set of items — the identity of an LR(0) state is
/// its kernel `ItemSet`.
#[derive(Debug, PartialEq, Eq, Hash, Default)]
pub struct ItemSet {
    items: Vec<Item>,
}

impl Clone for ItemSet {
    fn clone(&self) -> ItemSet {
        ITEM_SET_CLONES.fetch_add(1, Ordering::Relaxed);
        ItemSet {
            items: self.items.clone(),
        }
    }
}

impl ItemSet {
    /// Builds a set from arbitrary items (sorts and dedups).
    pub fn new(mut items: Vec<Item>) -> ItemSet {
        items.sort_unstable();
        items.dedup();
        ItemSet { items }
    }

    /// Builds a set from items that are already strictly ascending, moving
    /// the buffer without a sort pass.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the items are not strictly ascending.
    pub fn from_sorted(items: Vec<Item>) -> ItemSet {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be strictly ascending"
        );
        ItemSet { items }
    }

    /// Consumes the set, returning its item buffer (for buffer recycling).
    pub fn into_items(self) -> Vec<Item> {
        self.items
    }

    /// The items in sorted order.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when there are no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// The ε-closure of this set: adds `B → · γ` for every `B` after a dot,
    /// transitively.
    pub fn closure(&self, grammar: &Grammar) -> ItemSet {
        let mut scratch = ClosureScratch::default();
        self.closure_with(grammar, &mut scratch);
        ItemSet {
            items: std::mem::take(&mut scratch.closed),
        }
    }

    /// Computes the ε-closure into reusable scratch buffers, returning the
    /// closed items sorted and deduplicated.
    ///
    /// The allocation-free workhorse behind [`ItemSet::closure`]: callers
    /// that close many sets in a row (the LR(0) worklist) keep one
    /// [`ClosureScratch`] and avoid reallocating the closure buffers per
    /// state.
    pub fn closure_with<'a>(
        &self,
        grammar: &Grammar,
        scratch: &'a mut ClosureScratch,
    ) -> &'a [Item] {
        scratch.closed.clear();
        scratch.closed.extend_from_slice(&self.items);
        scratch.work.clear();
        scratch.work.extend_from_slice(&self.items);
        scratch.added_nt.clear();
        scratch.added_nt.resize(grammar.nonterminal_count(), false);
        while let Some(item) = scratch.work.pop() {
            let Some(Symbol::NonTerminal(b)) = item.next_symbol(grammar) else {
                continue;
            };
            if scratch.added_nt[b.index()] {
                continue;
            }
            scratch.added_nt[b.index()] = true;
            for &pid in grammar.productions_of(b) {
                let fresh = Item::start_of(pid);
                scratch.closed.push(fresh);
                scratch.work.push(fresh);
            }
        }
        scratch.closed.sort_unstable();
        scratch.closed.dedup();
        &scratch.closed
    }
}

/// Reusable buffers for repeated [`ItemSet::closure_with`] calls.
#[derive(Debug, Default)]
pub struct ClosureScratch {
    closed: Vec<Item>,
    work: Vec<Item>,
    added_nt: Vec<bool>,
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> ItemSet {
        ItemSet::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a ItemSet {
    type Item = Item;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Item>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    #[test]
    fn item_navigation() {
        let g = parse_grammar("s : \"a\" \"b\" ;").unwrap();
        let i0 = Item::start_of(ProdId::new(1));
        assert!(i0.is_initial());
        assert_eq!(
            i0.next_symbol(&g),
            Some(Symbol::Terminal(g.terminal_by_name("a").unwrap()))
        );
        let i2 = i0.advanced().advanced();
        assert!(i2.is_final(&g));
        assert_eq!(i2.next_symbol(&g), None);
    }

    #[test]
    fn epsilon_production_item_is_final_and_initial() {
        let g = parse_grammar("s : ;").unwrap();
        let i = Item::start_of(ProdId::new(1));
        assert!(i.is_initial());
        assert!(i.is_final(&g));
        assert_eq!(i.display(&g), "s -> .");
    }

    #[test]
    fn itemset_sorts_and_dedups() {
        let a = Item::new(ProdId::new(2), 1);
        let b = Item::new(ProdId::new(1), 0);
        let set = ItemSet::new(vec![a, b, a]);
        assert_eq!(set.items(), &[b, a]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(a));
        assert!(!set.contains(Item::new(ProdId::new(3), 0)));
    }

    #[test]
    fn closure_pulls_in_alternatives_transitively() {
        let g = parse_grammar("s : e ; e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let kernel = ItemSet::new(vec![Item::start_of(ProdId::START)]);
        let closed = kernel.closure(&g);
        // <start>→·s, s→·e, e→·e+t, e→·t, t→·x
        assert_eq!(closed.len(), 5);
        for item in &closed {
            assert!(item.is_initial());
        }
    }

    #[test]
    fn closure_of_final_items_is_identity() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let kernel = ItemSet::new(vec![Item::new(ProdId::new(1), 1)]);
        assert_eq!(kernel.closure(&g), kernel);
    }

    #[test]
    fn tail_after_next() {
        let g = parse_grammar("s : \"a\" \"b\" \"c\" ;").unwrap();
        let i = Item::new(ProdId::new(1), 1);
        let tail = i.tail_after_next(&g);
        assert_eq!(tail.len(), 1);
        assert_eq!(g.name_of(tail[0]), "c");
    }
}
