//! E16 — bitset kernel micro-benchmarks: ns/row for the word-level
//! kernels every hot path bottoms out in (`lalr_bitset::kernels`), at the
//! row widths the corpus actually selects (w=1 fixed-64, w=2 fixed-128)
//! plus wider multi-word rows. `report table12` prints the same
//! measurements with a cycles/row conversion; this harness exists for
//! Criterion's statistics and for `cargo bench -- --test` smoke in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_bitset::kernels;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Rows per working set: with w=8 this is 2 × 2048 × 64 B = 256 KiB, so
/// the wide configurations stream from L2/L3 like real LA matrices do.
const ROWS: usize = 2048;

fn rows(words: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut state = seed ^ (words as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    (0..ROWS)
        .map(|_| (0..words).map(|_| next()).collect())
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for words in WIDTHS {
        let srcs = rows(words, 0x1234_5678_9abc_def0);
        let mut dsts = rows(words, 0x0fed_cba9_8765_4321);

        group.bench_with_input(BenchmarkId::new("or", words), &words, |b, _| {
            b.iter(|| {
                let mut fresh = false;
                for (dst, src) in dsts.iter_mut().zip(&srcs) {
                    fresh |= kernels::or_into(dst, src);
                }
                fresh
            })
        });

        group.bench_with_input(BenchmarkId::new("or_assign", words), &words, |b, _| {
            b.iter(|| {
                for (dst, src) in dsts.iter_mut().zip(&srcs) {
                    kernels::or_assign(dst, src);
                }
            })
        });

        let mask: Vec<usize> = (0..words).map(|i| usize::MAX >> (i % 3)).collect();
        group.bench_with_input(BenchmarkId::new("masked_or", words), &words, |b, _| {
            b.iter(|| {
                let mut fresh = false;
                for (dst, src) in dsts.iter_mut().zip(&srcs) {
                    fresh |= kernels::masked_or(dst, src, &mask);
                }
                fresh
            })
        });

        group.bench_with_input(BenchmarkId::new("copy", words), &words, |b, _| {
            b.iter(|| {
                for (dst, src) in dsts.iter_mut().zip(&srcs) {
                    kernels::copy(dst, src);
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("popcount", words), &words, |b, _| {
            b.iter(|| srcs.iter().map(|r| kernels::popcount(r)).sum::<usize>())
        });

        // The blocked accumulator: union 8 source rows per destination,
        // the shape the tiled Digraph sweep batches per level tile.
        group.bench_with_input(BenchmarkId::new("or_acc8", words), &words, |b, _| {
            b.iter(|| {
                let mut fresh = false;
                for (i, dst) in dsts.iter_mut().enumerate() {
                    let gather: Vec<&[usize]> = (0..8)
                        .map(|k| srcs[(i + k * 251) % ROWS].as_slice())
                        .collect();
                    fresh |= kernels::or_accumulate(dst, &gather);
                }
                fresh
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
