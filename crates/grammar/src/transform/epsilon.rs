//! ε-production removal.

use crate::analysis::nullable;
use crate::builder::GrammarBuilder;
use crate::error::GrammarError;
use crate::grammar::Grammar;
use crate::symbol::Symbol;

/// Rewrites `grammar` into an equivalent grammar without ε-productions.
///
/// The language is preserved except that the empty string (if previously
/// derivable) is no longer derivable — the standard construction: for every
/// production, all variants obtained by deleting nullable nonterminal
/// occurrences are added, and all ε-productions dropped.
///
/// # Errors
///
/// Returns [`GrammarError::Empty`] when the grammar generates only ε (every
/// production erased).
///
/// # Examples
///
/// ```
/// use lalr_grammar::{analysis::nullable, parse_grammar, transform::remove_epsilon};
///
/// let g = parse_grammar("s : a \"b\" ; a : \"x\" | ;")?;
/// let g2 = remove_epsilon(&g)?;
/// assert_eq!(nullable(&g2).count(), 0);
/// // s : a "b" | "b" ;  a : "x" ;
/// assert_eq!(g2.production_count(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn remove_epsilon(grammar: &Grammar) -> Result<Grammar, GrammarError> {
    let nullable = nullable(grammar);

    // Nonterminals that can derive a NON-empty string. Occurrences of
    // nonterminals deriving only ε must be deleted unconditionally (keeping
    // them would leave a nonterminal without productions).
    let mut nonempty = vec![false; grammar.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for p in grammar.productions() {
            if nonempty[p.lhs().index()] {
                continue;
            }
            let derives_nonempty = p.rhs().iter().any(|&s| match s {
                Symbol::Terminal(_) => true,
                Symbol::NonTerminal(n) => nonempty[n.index()],
            });
            if derives_nonempty {
                nonempty[p.lhs().index()] = true;
                changed = true;
            }
        }
    }

    let mut builder = GrammarBuilder::new();
    builder.start(grammar.nonterminal_name(grammar.start()));

    let mut seen: std::collections::HashSet<(String, Vec<String>)> = Default::default();
    for (pid, p) in grammar.iter_productions() {
        if pid.index() == 0 {
            continue;
        }
        if !nonempty[p.lhs().index()] {
            continue; // this nonterminal's occurrences are erased everywhere
        }
        // Occurrences of only-ε nonterminals are dropped outright; nullable
        // nonterminals that can also derive something become optional.
        let rhs_kept: Vec<Symbol> = p
            .rhs()
            .iter()
            .copied()
            .filter(|&s| match s {
                Symbol::Terminal(_) => true,
                Symbol::NonTerminal(n) => nonempty[n.index()],
            })
            .collect();
        let p_rhs = rhs_kept;
        // Positions of nullable nonterminals in the kept RHS.
        let nullable_pos: Vec<usize> = p_rhs
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| match s {
                Symbol::NonTerminal(n) if nullable.contains(n) => Some(i),
                _ => None,
            })
            .collect();
        // Enumerate all subsets of deletions. Grammar RHSs are short; still,
        // cap the enumeration to keep pathological inputs safe.
        assert!(
            nullable_pos.len() <= 16,
            "more than 16 nullable occurrences in one production"
        );
        for mask in 0..(1u32 << nullable_pos.len()) {
            let rhs: Vec<&str> = p_rhs
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    match nullable_pos.iter().position(|&np| np == *i) {
                        Some(k) => mask & (1 << k) == 0, // bit set ⇒ delete
                        None => true,
                    }
                })
                .map(|(_, &s)| grammar.name_of(s))
                .collect();
            if rhs.is_empty() {
                continue; // never add new ε-productions
            }
            if rhs.len() == 1 && rhs[0] == grammar.nonterminal_name(p.lhs()) {
                // Deleting the other occurrences left the trivial cycle
                // A → A, which derives nothing new.
                continue;
            }
            let key = (
                grammar.nonterminal_name(p.lhs()).to_string(),
                rhs.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            );
            if seen.insert(key) {
                builder.rule(grammar.nonterminal_name(p.lhs()), rhs);
            }
        }
    }
    builder.build().map_err(|e| match e {
        // An all-ε grammar produces no rules at all.
        GrammarError::Empty | GrammarError::StartNotNonterminal(_) => GrammarError::Empty,
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::nullable as nullable_of;
    use crate::parse_grammar;

    fn production_strings(g: &Grammar) -> Vec<String> {
        g.iter_productions()
            .skip(1)
            .map(|(_, p)| {
                let rhs: Vec<&str> = p.rhs().iter().map(|&s| g.name_of(s)).collect();
                format!("{} -> {}", g.nonterminal_name(p.lhs()), rhs.join(" "))
            })
            .collect()
    }

    #[test]
    fn no_epsilon_in_result() {
        let g = parse_grammar("s : a s a | \"x\" ; a : \"y\" | ;").unwrap();
        let g2 = remove_epsilon(&g).unwrap();
        assert_eq!(nullable_of(&g2).count(), 0);
        for (_, p) in g2.iter_productions().skip(1) {
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn variants_enumerated() {
        let g = parse_grammar("s : a \"b\" a ; a : \"q\" | ;").unwrap();
        let g2 = remove_epsilon(&g).unwrap();
        let prods = production_strings(&g2);
        assert!(prods.contains(&"s -> a b a".to_string()));
        assert!(prods.contains(&"s -> b a".to_string()));
        assert!(prods.contains(&"s -> a b".to_string()));
        assert!(prods.contains(&"s -> b".to_string()));
        assert!(prods.contains(&"a -> q".to_string()));
        assert_eq!(prods.len(), 5);
    }

    #[test]
    fn duplicates_not_added() {
        // Both deletions of s → a a yield s → a once.
        let g = parse_grammar("s : a a ; a : \"x\" | ;").unwrap();
        let g2 = remove_epsilon(&g).unwrap();
        let prods = production_strings(&g2);
        assert_eq!(
            prods,
            vec![
                "s -> a a".to_string(),
                "s -> a".to_string(),
                "a -> x".to_string()
            ]
        );
    }

    #[test]
    fn pure_epsilon_grammar_is_error() {
        let g = parse_grammar("s : | a ; a : ;").unwrap();
        assert_eq!(remove_epsilon(&g), Err(GrammarError::Empty));
    }

    #[test]
    fn language_sample_preserved() {
        // L = {x^n b : n ≥ 0}; ε ∉ L so removal is language-preserving.
        let g = parse_grammar("s : rep \"b\" ; rep : \"x\" rep | ;").unwrap();
        let g2 = remove_epsilon(&g).unwrap();
        let prods = production_strings(&g2);
        assert!(prods.contains(&"s -> b".to_string()), "derives b");
        assert!(prods.contains(&"s -> rep b".to_string()), "derives x..x b");
        assert!(prods.contains(&"rep -> x rep".to_string()));
        assert!(prods.contains(&"rep -> x".to_string()));
        assert_eq!(prods.len(), 4);
    }
}
