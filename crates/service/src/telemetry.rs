//! Per-shard event-loop telemetry.
//!
//! Each epoll shard owns one [`ShardCounters`] and bumps it inline from
//! its event loop (no contention: every counter has exactly one
//! writer). The [`crate::Service`] holds the full set so the `stats`
//! op and the metrics exposition can fold per-shard numbers in without
//! reaching into the daemon.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for one epoll shard. Gauges and totals are written by
/// the shard thread and read by stats snapshots.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// `epoll_wait` calls made by the shard's event loop.
    pub epoll_waits: AtomicU64,
    /// Nanoseconds spent blocked in `epoll_wait`.
    pub epoll_wait_ns: AtomicU64,
    /// Readiness events dispatched.
    pub events: AtomicU64,
    /// Connections accepted (or dealt to) this shard.
    pub accepts: AtomicU64,
    /// Completions and dealt connections drained from the inbox.
    pub inbox_items: AtomicU64,
    /// Timer-wheel expirations handled.
    pub timer_fires: AtomicU64,
    /// Connections currently open on this shard (a gauge).
    pub connections: AtomicU64,
}

impl ShardCounters {
    /// Copies the counters into an owned snapshot for shard `shard`.
    pub fn snapshot(&self, shard: usize) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            shard,
            epoll_waits: self.epoll_waits.load(Ordering::Relaxed),
            epoll_wait_us: self.epoll_wait_ns.load(Ordering::Relaxed) / 1_000,
            events: self.events.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            inbox_items: self.inbox_items.load(Ordering::Relaxed),
            timer_fires: self.timer_fires.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// Daemon-level self-healing counters: shard restarts and per-reason
/// admission rejections. One instance is shared by the supervisor and
/// every shard incarnation, and registered with the [`crate::Service`]
/// (see `register_daemon`) so the `health`/`stats` ops and the metrics
/// exposition can report them without reaching into the daemon.
///
/// The two `max_*` fields are configuration echoes, not counters: they
/// are set at construction so the `health` op can report the quotas the
/// daemon is enforcing.
#[derive(Debug, Default)]
pub struct DaemonCounters {
    /// Event-loop shards respawned by the supervisor after a panic.
    pub shard_restarts: AtomicU64,
    /// Connections rejected at the global connection cap.
    pub rejects_conn_cap: AtomicU64,
    /// Connections rejected by the per-peer connection quota.
    pub rejects_peer_quota: AtomicU64,
    /// Request lines rejected by the token-bucket rate limit.
    pub rejects_rate_limit: AtomicU64,
    /// Connections closed for failing to drain their write buffer
    /// within the write budget (write-side slowloris).
    pub rejects_slow_client: AtomicU64,
    /// Request lines rejected by the armed `daemon.admit` failpoint.
    pub rejects_failpoint: AtomicU64,
    /// Configured per-peer connection quota (0 = unlimited).
    pub max_connections_per_peer: u64,
    /// Configured request-rate limit per second (0 = unlimited).
    pub rate_limit_per_sec: u64,
}

impl DaemonCounters {
    /// Fresh counters echoing the daemon's admission quotas.
    pub fn with_quotas(max_connections_per_peer: u64, rate_limit_per_sec: u64) -> DaemonCounters {
        DaemonCounters {
            max_connections_per_peer,
            rate_limit_per_sec,
            ..DaemonCounters::default()
        }
    }

    /// Copies the admission counters into an owned snapshot.
    pub fn rejects(&self) -> crate::AdmissionRejects {
        crate::AdmissionRejects {
            conn_cap: self.rejects_conn_cap.load(Ordering::Relaxed),
            peer_quota: self.rejects_peer_quota.load(Ordering::Relaxed),
            rate_limit: self.rejects_rate_limit.load(Ordering::Relaxed),
            slow_client: self.rejects_slow_client.load(Ordering::Relaxed),
            failpoint: self.rejects_failpoint.load(Ordering::Relaxed),
        }
    }
}

/// One shard's telemetry in a [`crate::StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Shard index (0 owns the listener).
    pub shard: usize,
    /// `epoll_wait` calls made by the shard's event loop.
    pub epoll_waits: u64,
    /// Microseconds spent blocked in `epoll_wait`.
    pub epoll_wait_us: u64,
    /// Readiness events dispatched.
    pub events: u64,
    /// Connections accepted (or dealt to) this shard.
    pub accepts: u64,
    /// Completions and dealt connections drained from the inbox.
    pub inbox_items: u64,
    /// Timer-wheel expirations handled.
    pub timer_fires: u64,
    /// Connections open on this shard at snapshot time (a gauge).
    pub connections: u64,
}
