// A Pascal subset: program structure, declarations, statements,
// expressions. Modeled on the Jensen & Wirth report grammar; LALR(1).
%start program

program : PROGRAM IDENT ";" block "." ;

block : decl_part compound_stmt ;

decl_part
    : %empty
    | decl_part const_section
    | decl_part type_section
    | decl_part var_section
    | decl_part proc_decl
    | decl_part func_decl
    ;

const_section : CONST const_defs ;
const_defs    : const_def | const_defs const_def ;
const_def     : IDENT "=" constant ";" ;
constant      : NUMBER | STRING | IDENT | "-" NUMBER ;

type_section : TYPE type_defs ;
type_defs    : type_def | type_defs type_def ;
type_def     : IDENT "=" type_denoter ";" ;

type_denoter
    : IDENT
    | ARRAY "[" index_range "]" OF type_denoter
    | RECORD field_list END
    | "^" IDENT
    ;
index_range : constant DOTDOT constant ;
field_list  : field_decl | field_list ";" field_decl ;
field_decl  : ident_list ":" type_denoter ;

var_section : VAR var_decls ;
var_decls   : var_decl | var_decls var_decl ;
var_decl    : ident_list ":" type_denoter ";" ;
ident_list  : IDENT | ident_list "," IDENT ;

proc_decl : PROCEDURE IDENT formal_params ";" block ";" ;
func_decl : FUNCTION IDENT formal_params ":" IDENT ";" block ";" ;

formal_params : %empty | "(" param_groups ")" ;
param_groups  : param_group | param_groups ";" param_group ;
param_group   : ident_list ":" IDENT | VAR ident_list ":" IDENT ;

compound_stmt : BEGIN stmt_list END ;
stmt_list     : statement | stmt_list ";" statement ;

statement
    : %empty
    | assignment
    | proc_call
    | compound_stmt
    | if_stmt
    | while_stmt
    | repeat_stmt
    | for_stmt
    | case_stmt
    ;

assignment : variable ASSIGN expression ;
variable   : IDENT | variable "[" expression "]" | variable "." IDENT | variable "^" ;

proc_call : IDENT | IDENT "(" arg_list ")" ;
arg_list  : expression | arg_list "," expression ;

if_stmt     : IF expression THEN statement | IF expression THEN statement ELSE statement ;
while_stmt  : WHILE expression DO statement ;
repeat_stmt : REPEAT stmt_list UNTIL expression ;
for_stmt    : FOR IDENT ASSIGN expression direction expression DO statement ;
direction   : TO | DOWNTO ;

case_stmt    : CASE expression OF case_elems END ;
case_elems   : case_elem | case_elems ";" case_elem ;
case_elem    : case_labels ":" statement ;
case_labels  : constant | case_labels "," constant ;

expression
    : simple_expr
    | simple_expr relop simple_expr
    ;
relop : "=" | NE | "<" | LE | ">" | GE | IN ;

simple_expr : term_ | simple_expr addop term_ | sign term_ ;
addop       : "+" | "-" | OR ;
sign        : "+" | "-" ;

term_  : factor_ | term_ mulop factor_ ;
mulop  : "*" | "/" | DIV | MOD | AND ;

factor_
    : variable
    | NUMBER
    | STRING
    | NIL
    | IDENT "(" arg_list ")"
    | "(" expression ")"
    | NOT factor_
    ;
