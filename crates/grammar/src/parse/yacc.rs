//! Reader for yacc/bison `.y` grammar files.
//!
//! Real-world grammars live in yacc syntax. [`parse_yacc`] accepts the
//! subset needed to *analyze* them: the declarations section (`%token`,
//! `%left`/`%right`/`%nonassoc`, `%start`; other `%…` declarations and
//! `%{ … %}` blocks are skipped), the rules section with semantic actions
//! `{ … }` stripped (balanced braces), character literals `'+'` and
//! string literals `"if"`, and `%prec`. The trailing user-code section
//! after the second `%%` is ignored.

use crate::builder::GrammarBuilder;
use crate::error::{GrammarError, ParseErrorKind};
use crate::grammar::Grammar;
use crate::parse::Assoc;

/// Parses a yacc/bison-style grammar file.
///
/// # Errors
///
/// Returns [`GrammarError`] for malformed input (with position) or for the
/// same semantic problems [`crate::parse_grammar`] reports.
///
/// # Examples
///
/// ```
/// use lalr_grammar::parse_yacc;
///
/// let g = parse_yacc(r#"
/// %token NUM
/// %left '+'
/// %left '*'
/// %%
/// expr : expr '+' expr { $$ = $1 + $3; }
///      | expr '*' expr { $$ = $1 * $3; }
///      | NUM
///      ;
/// %%
/// int main() { return 0; }
/// "#)?;
/// assert_eq!(g.production_count(), 4);
/// assert!(g.terminal_by_name("+").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_yacc(src: &str) -> Result<Grammar, GrammarError> {
    YaccReader::new(src).run()
}

struct YaccReader<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    builder: GrammarBuilder,
}

impl<'a> YaccReader<'a> {
    fn new(src: &'a str) -> Self {
        YaccReader {
            bytes: src.as_bytes(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            builder: GrammarBuilder::new(),
        }
    }

    fn error(&self, kind: ParseErrorKind) -> GrammarError {
        GrammarError::Parse {
            line: self.line,
            col: self.col,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), GrammarError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            None => {
                                return Err(GrammarError::Parse {
                                    line,
                                    col,
                                    kind: ParseErrorKind::UnterminatedComment,
                                })
                            }
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn at_section_divider(&self) -> bool {
        self.peek() == Some(b'%') && self.peek2() == Some(b'%')
    }

    fn read_ident(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                self.bump();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }

    /// `'+'`, `'\n'`, `"if"` — returns the literal's symbol name.
    fn read_literal(&mut self) -> Result<String, GrammarError> {
        let quote = self.bump().expect("caller saw the quote");
        let (line, col) = (self.line, self.col);
        let mut name = String::new();
        loop {
            match self.bump() {
                None => {
                    return Err(GrammarError::Parse {
                        line,
                        col,
                        kind: ParseErrorKind::UnterminatedLiteral,
                    })
                }
                Some(b'\\') => {
                    // Keep escapes readable as two-character names.
                    match self.bump() {
                        Some(b'n') => name.push('\n'),
                        Some(b't') => name.push('\t'),
                        Some(b) => name.push(b as char),
                        None => {
                            return Err(GrammarError::Parse {
                                line,
                                col,
                                kind: ParseErrorKind::UnterminatedLiteral,
                            })
                        }
                    }
                }
                Some(b) if b == quote => return Ok(name),
                Some(b) => name.push(b as char),
            }
        }
    }

    /// Skips a balanced `{ … }` action (handles nested braces, strings,
    /// chars and comments inside).
    fn skip_action(&mut self) -> Result<(), GrammarError> {
        let (line, col) = (self.line, self.col);
        let mut depth = 0usize;
        loop {
            match self.peek() {
                None => {
                    return Err(GrammarError::Parse {
                        line,
                        col,
                        kind: ParseErrorKind::UnterminatedComment,
                    })
                }
                Some(b'{') => {
                    depth += 1;
                    self.bump();
                }
                Some(b'}') => {
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(b'\'') | Some(b'"') => {
                    self.read_literal()?;
                }
                Some(b'/') if self.peek2() == Some(b'/') || self.peek2() == Some(b'*') => {
                    self.skip_ws_and_comments()?;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Skips a `%{ … %}` prologue block.
    fn skip_prologue(&mut self) -> Result<(), GrammarError> {
        let (line, col) = (self.line, self.col);
        self.bump(); // %
        self.bump(); // {
        loop {
            match self.bump() {
                None => {
                    return Err(GrammarError::Parse {
                        line,
                        col,
                        kind: ParseErrorKind::UnterminatedComment,
                    })
                }
                Some(b'%') if self.peek() == Some(b'}') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {}
            }
        }
    }

    fn declarations(&mut self) -> Result<(), GrammarError> {
        loop {
            self.skip_ws_and_comments()?;
            if self.at_section_divider() {
                self.bump();
                self.bump();
                return Ok(());
            }
            match self.peek() {
                None => {
                    return Err(self.error(ParseErrorKind::Expected {
                        wanted: "'%%' before the rules section".to_string(),
                        found: "end of input".to_string(),
                    }))
                }
                Some(b'%') if self.peek2() == Some(b'{') => self.skip_prologue()?,
                Some(b'%') => {
                    self.bump();
                    let dir = self.read_ident();
                    match dir.as_str() {
                        "token" | "term" => {
                            self.type_tag()?;
                            for name in self.symbol_list()? {
                                self.builder.terminal(name);
                            }
                        }
                        "left" | "right" | "nonassoc" => {
                            let assoc = match dir.as_str() {
                                "left" => Assoc::Left,
                                "right" => Assoc::Right,
                                _ => Assoc::NonAssoc,
                            };
                            self.type_tag()?;
                            let names = self.symbol_list()?;
                            self.builder.precedence(assoc, names);
                        }
                        "start" => {
                            self.skip_ws_and_comments()?;
                            let name = self.read_ident();
                            self.builder.start(name);
                        }
                        // Declarations irrelevant to analysis: skip the
                        // rest of their line (types/unions skip blocks).
                        "union" | "code" => {
                            self.skip_ws_and_comments()?;
                            if self.peek() == Some(b'{') {
                                self.skip_action()?;
                            }
                        }
                        _ => {
                            while let Some(b) = self.peek() {
                                if b == b'\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                    }
                }
                Some(other) => {
                    return Err(self.error(ParseErrorKind::UnexpectedChar(other as char)))
                }
            }
        }
    }

    /// An optional `<type>` tag after %token/%left/etc.
    fn type_tag(&mut self) -> Result<(), GrammarError> {
        self.skip_ws_and_comments()?;
        if self.peek() == Some(b'<') {
            while let Some(b) = self.bump() {
                if b == b'>' {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Names/literals until end of the declaration.
    fn symbol_list(&mut self) -> Result<Vec<String>, GrammarError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments()?;
            match self.peek() {
                Some(b'\'') | Some(b'"') => out.push(self.read_literal()?),
                Some(b) if b.is_ascii_alphabetic() || b == b'_' => out.push(self.read_ident()),
                Some(b) if b.is_ascii_digit() => {
                    // yacc allows explicit token numbers; skip them.
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                _ => return Ok(out),
            }
        }
    }

    fn rules(&mut self) -> Result<(), GrammarError> {
        loop {
            self.skip_ws_and_comments()?;
            if self.at_section_divider() || self.peek().is_none() {
                return Ok(()); // trailing user code ignored
            }
            // LHS ident then ':'.
            let lhs = self.read_ident();
            if lhs.is_empty() {
                let found = self.peek().map(|b| b as char).unwrap_or('?');
                return Err(self.error(ParseErrorKind::UnexpectedChar(found)));
            }
            self.skip_ws_and_comments()?;
            if self.peek() != Some(b':') {
                return Err(self.error(ParseErrorKind::Expected {
                    wanted: "':'".to_string(),
                    found: format!("{:?}", self.peek().map(|b| b as char)),
                }));
            }
            self.bump();
            // Alternatives.
            let mut rhs: Vec<String> = Vec::new();
            let mut prec: Option<String> = None;
            loop {
                self.skip_ws_and_comments()?;
                match self.peek() {
                    Some(b';') => {
                        self.bump();
                        self.emit(&lhs, std::mem::take(&mut rhs), prec.take());
                        break;
                    }
                    Some(b'|') => {
                        self.bump();
                        self.emit(&lhs, std::mem::take(&mut rhs), prec.take());
                    }
                    Some(b'{') => self.skip_action()?,
                    Some(b'\'') | Some(b'"') => rhs.push(self.read_literal()?),
                    Some(b'%') => {
                        self.bump();
                        let dir = self.read_ident();
                        match dir.as_str() {
                            "prec" => {
                                self.skip_ws_and_comments()?;
                                prec = Some(match self.peek() {
                                    Some(b'\'') | Some(b'"') => self.read_literal()?,
                                    _ => self.read_ident(),
                                });
                            }
                            "empty" => {}
                            other => {
                                return Err(
                                    self.error(ParseErrorKind::UnknownDirective(other.to_string()))
                                )
                            }
                        }
                    }
                    Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                        rhs.push(self.read_ident());
                    }
                    // yacc allows rules terminated by the next rule: `a : b
                    // c : d` is invalid in our subset — require ; or |.
                    Some(other) => {
                        return Err(self.error(ParseErrorKind::UnexpectedChar(other as char)))
                    }
                    None => {
                        // Accept an unterminated final rule (bison does).
                        self.emit(&lhs, std::mem::take(&mut rhs), prec.take());
                        break;
                    }
                }
            }
        }
    }

    fn emit(&mut self, lhs: &str, rhs: Vec<String>, prec: Option<String>) {
        match prec {
            None => self.builder.rule(lhs, rhs),
            Some(p) => self.builder.rule_with_prec(lhs, rhs, p),
        };
    }

    fn run(mut self) -> Result<Grammar, GrammarError> {
        self.declarations()?;
        self.rules()?;
        self.builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CALC: &str = r#"
%{
#include <stdio.h>
int yylex(void);
%}
%union { double val; }
%token <val> NUM
%type <val> expr
%left '+' '-'
%left '*' '/'
%right UMINUS
%start expr
%%
expr : expr '+' expr  { $$ = $1 + $3; }
     | expr '-' expr  { $$ = $1 - $3; }
     | expr '*' expr  { $$ = $1 * $3; }
     | expr '/' expr  { $$ = $1 / $3; }
     | '-' expr %prec UMINUS { $$ = -$2; }
     | '(' expr ')'   { $$ = $2; }
     | NUM
     ;
%%
int main(void) { return yyparse(); }
"#;

    #[test]
    fn parses_a_realistic_y_file() {
        let g = parse_yacc(CALC).unwrap();
        assert_eq!(g.production_count(), 8);
        assert_eq!(g.nonterminal_name(g.start()), "expr");
        let plus = g.terminal_by_name("+").unwrap();
        assert!(g.precedence_of(plus).is_some());
        // %prec captured.
        let e = g.nonterminal_by_name("expr").unwrap();
        let neg = g.productions_of(e)[4];
        assert_eq!(
            g.production(neg).prec_override(),
            g.terminal_by_name("UMINUS")
        );
    }

    #[test]
    fn actions_with_nested_braces_and_strings_are_skipped() {
        let g = parse_yacc("%%\ns : 'a' { if (x) { printf(\"}{\"); } } | 'b' ;\n").unwrap();
        assert_eq!(g.production_count(), 3);
    }

    #[test]
    fn epsilon_alternative_and_empty_keyword() {
        let g = parse_yacc("%%\ns : 'a' s | %empty ;\n").unwrap();
        let s = g.nonterminal_by_name("s").unwrap();
        assert!(g.production(g.productions_of(s)[1]).is_empty());
        let g = parse_yacc("%%\ns : 'a' s | ;\n").unwrap();
        let s = g.nonterminal_by_name("s").unwrap();
        assert!(g.production(g.productions_of(s)[1]).is_empty());
    }

    #[test]
    fn character_escapes_in_literals() {
        let g = parse_yacc("%%\ns : '\\n' | '\\t' | '\\\\' ;\n").unwrap();
        assert!(g.terminal_by_name("\n").is_some());
        assert!(g.terminal_by_name("\t").is_some());
        assert!(g.terminal_by_name("\\").is_some());
    }

    #[test]
    fn missing_section_divider_is_an_error() {
        // Without `%%` the rule's `:` is unparseable in the declarations
        // section (the LHS ident is swallowed by the %token list).
        let err = parse_yacc("%token A\ns : A ;").unwrap_err();
        assert!(matches!(err, GrammarError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn unknown_declarations_are_skipped_line_wise() {
        let g = parse_yacc("%define api.pure full\n%expect 1\n%token A\n%%\ns : A ;\n").unwrap();
        assert_eq!(g.production_count(), 2);
    }

    #[test]
    fn final_rule_without_semicolon() {
        let g = parse_yacc("%%\ns : 'a'").unwrap();
        assert_eq!(g.production_count(), 2);
    }

    #[test]
    fn same_analysis_as_native_format() {
        // The yacc calc grammar and the equivalent native-format grammar
        // produce identical classification.
        let y = parse_yacc(CALC).unwrap();
        let native = crate::parse_grammar(
            r#"
            %left "+" "-"
            %left "*" "/"
            %right UMINUS
            %start expr
            expr : expr "+" expr | expr "-" expr | expr "*" expr
                 | expr "/" expr | "-" expr %prec UMINUS
                 | "(" expr ")" | NUM ;
            "#,
        )
        .unwrap();
        assert_eq!(y.production_count(), native.production_count());
        assert_eq!(y.terminal_count(), native.terminal_count());
    }
}
