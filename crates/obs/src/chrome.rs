//! Chrome trace-event JSON export.
//!
//! The [trace-event format] is the lingua franca of `chrome://tracing`
//! and Perfetto: an object with a `traceEvents` array of complete
//! (`"ph":"X"`) events carrying microsecond `ts`/`dur`. The writer is
//! hand-rolled (this crate is dependency-free) and emits keys in sorted
//! order inside every object, so output is deterministic up to the
//! recorded timings.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::report::PhaseReport;

impl PhaseReport {
    /// Serializes the report as Chrome trace-event JSON.
    ///
    /// Every completed span becomes one complete event (`ph:"X"`) on
    /// its thread row; counters are attached as a single global instant
    /// event named `counters` so they survive into the trace viewer.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"args\":{{\"allocs\":{},\"bytes\":{}}},\"cat\":\"lalr\",\"dur\":{},\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
                e.allocs,
                e.bytes,
                us(e.dur_ns),
                escape(e.name),
                e.tid,
                us(e.start_ns),
            );
        }
        if !self.counters.is_empty() {
            if !first {
                out.push(',');
            }
            out.push_str("{\"args\":{");
            for (i, (name, value)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", escape(name), value);
            }
            let _ = write!(
                out,
                "}},\"name\":\"counters\",\"ph\":\"I\",\"pid\":1,\"s\":\"g\",\"tid\":0,\"ts\":{}}}",
                us(self.total_ns)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Nanoseconds to the microsecond JSON number the format expects.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000.0)
}

/// Minimal JSON string escaping. Names are static identifiers in
/// practice, but the writer must never emit invalid JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::recorder::{span, Recorder};
    use crate::CollectingRecorder;

    #[test]
    fn trace_round_trips_through_the_json_parser() {
        let rec = CollectingRecorder::new();
        {
            let _outer = span(&rec, "outer");
            let _inner = span(&rec, "inner");
        }
        rec.add("bits.or_ops", 7);
        let trace = rec.report().to_chrome_trace();

        let value = serde_json::from_str(&trace).expect("valid JSON");
        assert_eq!(
            value.get("displayTimeUnit").and_then(|v| v.as_str()),
            Some("ms")
        );
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        // Two complete events plus the counter instant.
        assert_eq!(events.len(), 3);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in &complete {
            assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
            assert_eq!(e.get("pid").and_then(|v| v.as_u64()), Some(1));
        }
        let instant = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("I"))
            .expect("counter instant event");
        assert_eq!(
            instant
                .get("args")
                .and_then(|a| a.get("bits.or_ops"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
    }

    #[test]
    fn escaping_keeps_json_valid() {
        assert_eq!(super::escape("plain.name"), "plain.name");
        assert_eq!(super::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(super::escape("\u{1}"), "\\u0001");
    }
}
