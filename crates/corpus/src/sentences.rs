//! Random sentence generation (bounded leftmost derivations).
//!
//! Sampling strings *from* a grammar closes the loop for testing: every
//! generated sentence must be accepted by a parser built from the same
//! grammar. The generator bounds derivation size by switching to
//! cheapest-production expansion once a budget is exhausted, so it
//! terminates on every productive grammar.

use lalr_grammar::{Grammar, NonTerminal, ProdId, Symbol, Terminal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cost of the cheapest terminal string derivable from each nonterminal
/// (`None` when unproductive).
fn min_costs(grammar: &Grammar) -> Vec<Option<u32>> {
    let mut cost: Vec<Option<u32>> = vec![None; grammar.nonterminal_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for p in grammar.productions() {
            let mut total: u32 = 1;
            let mut ok = true;
            for &sym in p.rhs() {
                match sym {
                    Symbol::Terminal(_) => total += 1,
                    Symbol::NonTerminal(n) => match cost[n.index()] {
                        Some(c) => total += c,
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if ok {
                let slot = &mut cost[p.lhs().index()];
                if slot.is_none_or(|c| total < c) {
                    *slot = Some(total);
                    changed = true;
                }
            }
        }
    }
    cost
}

/// Cheapest production of `nt` under `costs`.
fn cheapest_production(grammar: &Grammar, costs: &[Option<u32>], nt: NonTerminal) -> ProdId {
    *grammar
        .productions_of(nt)
        .iter()
        .min_by_key(|&&pid| {
            grammar
                .production(pid)
                .rhs()
                .iter()
                .map(|&s| match s {
                    Symbol::Terminal(_) => 1,
                    Symbol::NonTerminal(n) => costs[n.index()].unwrap_or(u32::MAX / 4),
                })
                .sum::<u32>()
        })
        .expect("every nonterminal has a production")
}

/// Generates a random sentence (terminal sequence) of the grammar's
/// language, as terminal ids. Returns `None` when the start symbol is
/// unproductive.
///
/// `budget` caps the number of *random* expansions; after that every
/// nonterminal expands by its cheapest production, guaranteeing
/// termination.
///
/// # Examples
///
/// ```
/// use lalr_corpus::sentences::generate;
/// use lalr_grammar::parse_grammar;
///
/// let g = parse_grammar("s : \"a\" s | \"b\" ;")?;
/// let sentence = generate(&g, 42, 30).expect("productive");
/// // Always a^n b.
/// let names: Vec<&str> = sentence.iter().map(|&t| g.terminal_name(t)).collect();
/// assert_eq!(names.last(), Some(&"b"));
/// assert!(names[..names.len() - 1].iter().all(|&n| n == "a"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate(grammar: &Grammar, seed: u64, budget: usize) -> Option<Vec<Terminal>> {
    let costs = min_costs(grammar);
    costs[grammar.start().index()]?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Terminal> = Vec::new();
    // Work stack of pending symbols (rightmost at top).
    let mut stack: Vec<Symbol> = vec![Symbol::NonTerminal(grammar.start())];
    let mut random_budget = budget;

    while let Some(sym) = stack.pop() {
        match sym {
            Symbol::Terminal(t) => out.push(t),
            Symbol::NonTerminal(nt) => {
                let pid = if random_budget > 0 {
                    random_budget -= 1;
                    // Pick a random *productive* production.
                    let candidates: Vec<ProdId> = grammar
                        .productions_of(nt)
                        .iter()
                        .copied()
                        .filter(|&pid| {
                            grammar.production(pid).rhs().iter().all(|&s| match s {
                                Symbol::Terminal(_) => true,
                                Symbol::NonTerminal(n) => costs[n.index()].is_some(),
                            })
                        })
                        .collect();
                    candidates[rng.gen_range(0..candidates.len())]
                } else {
                    cheapest_production(grammar, &costs, nt)
                };
                for &s in grammar.production(pid).rhs().iter().rev() {
                    stack.push(s);
                }
            }
        }
    }
    Some(out)
}

/// Generates `count` distinct-seed sentences.
pub fn generate_many(
    grammar: &Grammar,
    base_seed: u64,
    count: usize,
    budget: usize,
) -> Vec<Vec<Terminal>> {
    (0..count)
        .filter_map(|i| generate(grammar, base_seed.wrapping_add(i as u64), budget))
        .collect()
}

/// The kind of single-token edit [`mutate`] applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// One token replaced by a different terminal.
    Substitute,
    /// One token removed.
    Delete,
    /// One terminal inserted at a position.
    Insert,
    /// One token duplicated in place.
    Duplicate,
}

/// Applies one deterministic single-token mutation to `sentence`.
///
/// The edit kind, position, and replacement terminal are all drawn from
/// `seed`, so the same `(sentence, seed)` always produces the same
/// mutant. Returns `None` when no edit is possible (an empty sentence
/// can only grow, and a grammar whose sole terminal is `$` has nothing
/// to insert or substitute).
///
/// The mutant is **not guaranteed to leave the language** — a deleted
/// token in `a*` still yields a valid string. Differential harnesses
/// must therefore compare *verdicts* across implementations rather than
/// assume rejection.
pub fn mutate(
    grammar: &Grammar,
    sentence: &[Terminal],
    seed: u64,
) -> Option<(Vec<Terminal>, MutationKind)> {
    // Real terminals only: index 0 is the reserved `$`.
    let alphabet: Vec<Terminal> = grammar.terminals().filter(|t| t.index() != 0).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Try kinds in a seeded order until one is applicable.
    let mut kinds = [
        MutationKind::Substitute,
        MutationKind::Delete,
        MutationKind::Insert,
        MutationKind::Duplicate,
    ];
    for i in (1..kinds.len()).rev() {
        kinds.swap(i, rng.gen_range(0..=i));
    }
    for kind in kinds {
        match kind {
            MutationKind::Substitute => {
                if sentence.is_empty() || alphabet.len() < 2 {
                    continue;
                }
                let at = rng.gen_range(0..sentence.len());
                let others: Vec<Terminal> = alphabet
                    .iter()
                    .copied()
                    .filter(|&t| t != sentence[at])
                    .collect();
                if others.is_empty() {
                    continue;
                }
                let mut out = sentence.to_vec();
                out[at] = others[rng.gen_range(0..others.len())];
                return Some((out, kind));
            }
            MutationKind::Delete => {
                if sentence.is_empty() {
                    continue;
                }
                let at = rng.gen_range(0..sentence.len());
                let mut out = sentence.to_vec();
                out.remove(at);
                return Some((out, kind));
            }
            MutationKind::Insert => {
                if alphabet.is_empty() {
                    continue;
                }
                let at = rng.gen_range(0..=sentence.len());
                let mut out = sentence.to_vec();
                out.insert(at, alphabet[rng.gen_range(0..alphabet.len())]);
                return Some((out, kind));
            }
            MutationKind::Duplicate => {
                if sentence.is_empty() {
                    continue;
                }
                let at = rng.gen_range(0..sentence.len());
                let mut out = sentence.to_vec();
                out.insert(at, sentence[at]);
                return Some((out, kind));
            }
        }
    }
    None
}

/// Generates `count` mutants of distinct seeds, each paired with the
/// sentence it was derived from.
pub fn mutate_many(
    grammar: &Grammar,
    sentences: &[Vec<Terminal>],
    base_seed: u64,
    count: usize,
) -> Vec<(Vec<Terminal>, Vec<Terminal>)> {
    if sentences.is_empty() {
        return Vec::new();
    }
    (0..count)
        .filter_map(|i| {
            let seed = base_seed.wrapping_add(i as u64);
            let original = &sentences[i % sentences.len()];
            mutate(grammar, original, seed).map(|(m, _)| (original.clone(), m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    #[test]
    fn generation_terminates_on_recursive_grammars() {
        let g = parse_grammar("e : e \"+\" e | e \"*\" e | \"x\" ;").unwrap();
        for seed in 0..20 {
            let s = generate(&g, seed, 50).unwrap();
            assert!(!s.is_empty());
            assert!(s.len() < 500, "budget bounds the output");
        }
    }

    #[test]
    fn unproductive_start_yields_none() {
        let g = parse_grammar("s : s \"x\" ;").unwrap();
        assert_eq!(generate(&g, 0, 10), None);
    }

    #[test]
    fn epsilon_only_language() {
        let g = parse_grammar("s : ;").unwrap();
        assert_eq!(generate(&g, 0, 10), Some(vec![]));
    }

    #[test]
    fn partial_productivity_is_respected() {
        // `dead` is unproductive; the generator must never choose s → dead.
        let g = parse_grammar("s : \"a\" | dead ; dead : dead \"x\" ;").unwrap();
        for seed in 0..20 {
            let s = generate(&g, seed, 10).unwrap();
            let names: Vec<&str> = s.iter().map(|&t| g.terminal_name(t)).collect();
            assert_eq!(names, vec!["a"]);
        }
    }

    #[test]
    fn many_generates_requested_count() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let all = generate_many(&g, 7, 25, 20);
        assert_eq!(all.len(), 25);
    }

    #[test]
    fn mutation_is_deterministic_and_one_edit_away() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let sentence = generate(&g, 3, 20).unwrap();
        let (a, kind_a) = mutate(&g, &sentence, 99).unwrap();
        let (b, kind_b) = mutate(&g, &sentence, 99).unwrap();
        assert_eq!(a, b, "same seed, same mutant");
        assert_eq!(kind_a, kind_b);
        // Single-token edits change length by at most one.
        let delta = a.len().abs_diff(sentence.len());
        assert!(delta <= 1, "{delta}");
        if delta == 0 {
            let diffs = a.iter().zip(&sentence).filter(|(x, y)| x != y).count();
            assert_eq!(diffs, 1, "substitution changes exactly one token");
        }
    }

    #[test]
    fn distinct_seeds_reach_every_mutation_kind() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let sentence = generate(&g, 5, 20).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..64 {
            if let Some((_, kind)) = mutate(&g, &sentence, seed) {
                seen.insert(format!("{kind:?}"));
            }
        }
        assert_eq!(seen.len(), 4, "all kinds reachable: {seen:?}");
    }

    #[test]
    fn empty_sentence_can_only_grow() {
        let g = parse_grammar("s : ;").unwrap();
        // `s : ;` still names no real terminals beyond `$`… use one with
        // a terminal but an empty generated sentence.
        let g2 = parse_grammar("s : \"a\" s | ;").unwrap();
        assert!(mutate(&g, &[], 0).is_none(), "no terminals to insert");
        for seed in 0..16 {
            if let Some((m, kind)) = mutate(&g2, &[], seed) {
                assert_eq!(kind, MutationKind::Insert);
                assert_eq!(m.len(), 1);
            }
        }
    }

    #[test]
    fn mutate_many_pairs_mutants_with_their_originals() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let sentences = generate_many(&g, 11, 5, 20);
        let pairs = mutate_many(&g, &sentences, 100, 20);
        assert_eq!(pairs.len(), 20);
        for (original, mutant) in &pairs {
            assert!(sentences.contains(original));
            assert!(original.len().abs_diff(mutant.len()) <= 1);
        }
    }
}
