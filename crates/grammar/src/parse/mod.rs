//! The grammar text format.
//!
//! A yacc/menhir-flavoured notation:
//!
//! ```text
//! // line comment            /* block comment */
//! %token NUM ID              // explicit terminal declarations (optional)
//! %start expr                // start symbol (defaults to first rule's LHS)
//! %left "+" "-"              // precedence levels, weakest first
//! %left "*" "/"
//! %right UMINUS
//!
//! expr : expr "+" expr
//!      | expr "*" expr
//!      | "-" expr %prec UMINUS
//!      | NUM
//!      ;
//! ```
//!
//! * Identifiers and quoted literals are both symbol names; a name is a
//!   nonterminal iff it appears to the left of `:`.
//! * An empty alternative (or the keyword `%empty`) denotes ε.
//! * Alternatives are separated by `|`, rules terminated by `;`.

mod lexer;
mod parser;
mod yacc;

pub use parser::parse_grammar;
pub use yacc::parse_yacc;

/// Associativity of a precedence level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assoc {
    /// `%left` — resolve shift/reduce in favour of reduce.
    Left,
    /// `%right` — resolve shift/reduce in favour of shift.
    Right,
    /// `%nonassoc` — same-level shift/reduce becomes an error entry.
    NonAssoc,
}

/// A terminal's precedence: a level (higher binds tighter) and an
/// associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precedence {
    /// Binding strength; larger wins.
    pub level: u16,
    /// Tie-breaking associativity.
    pub assoc: Assoc,
}
