//! A small configurable lexer driven by the parse table's terminal names.

use std::collections::HashMap;

use lalr_tables::ParseTable;

use crate::error::LexError;
use crate::token::Token;

/// Builder for [`Lexer`]; see [`Lexer::for_table`].
#[derive(Debug, Clone)]
pub struct LexerBuilder {
    literals: Vec<(String, u32)>,
    keywords: HashMap<String, u32>,
    number: Option<u32>,
    identifier: Option<u32>,
    string: Option<u32>,
}

impl LexerBuilder {
    /// Route integer/decimal literals to the terminal named `name` (e.g.
    /// `"NUM"`). Without this, digits are lex errors.
    pub fn number(mut self, name: &str) -> Self {
        self.number = self.take(name);
        self
    }

    /// Route non-keyword identifiers to the terminal named `name`.
    pub fn identifier(mut self, name: &str) -> Self {
        self.identifier = self.take(name);
        self
    }

    /// Route double-quoted string literals to the terminal named `name`.
    pub fn string(mut self, name: &str) -> Self {
        self.string = self.take(name);
        self
    }

    /// Removes `name` from the keyword/literal tables and returns its index.
    fn take(&mut self, name: &str) -> Option<u32> {
        let id = self.keywords.remove(name).or_else(|| {
            self.literals
                .iter()
                .position(|(l, _)| l == name)
                .map(|i| self.literals.remove(i).1)
        });
        id
    }

    /// Finishes the lexer.
    pub fn build(mut self) -> Lexer {
        // Longest-first so that ":=" beats ":".
        self.literals
            .sort_by_key(|(lit, _)| std::cmp::Reverse(lit.len()));
        Lexer {
            literals: self.literals,
            keywords: self.keywords,
            number: self.number,
            identifier: self.identifier,
            string: self.string,
        }
    }
}

/// A whitespace-skipping longest-match lexer.
///
/// Terminal names from the table are split into *keywords* (names that look
/// like identifiers: `while`, `BEGIN`) matched against whole identifier
/// lexemes, and *literals* (everything else: `+`, `:=`, `(`) matched
/// verbatim, longest first. Classes for numbers, identifiers and strings
/// are attached through the builder.
///
/// # Examples
///
/// ```
/// # use lalr_automata::Lr0Automaton;
/// # use lalr_core::LalrAnalysis;
/// # use lalr_grammar::parse_grammar;
/// # use lalr_runtime::Lexer;
/// # use lalr_tables::{build_table, TableOptions};
/// let g = parse_grammar("s : WHILE ID DO ID ASSIGN NUM \";\" ;")?;
/// # let lr0 = Lr0Automaton::build(&g);
/// # let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// # let table = build_table(&g, &lr0, &la, TableOptions::default());
/// let lexer = Lexer::for_table(&table)
///     .number("NUM")
///     .identifier("ID")
///     .build();
/// let toks = lexer.tokenize("WHILE x DO y ASSIGN 42 ;")?;
/// assert_eq!(toks.len(), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lexer {
    literals: Vec<(String, u32)>,
    keywords: HashMap<String, u32>,
    number: Option<u32>,
    identifier: Option<u32>,
    string: Option<u32>,
}

impl Lexer {
    /// Starts a builder whose keyword/literal tables come from `table`'s
    /// terminal names (skipping the reserved `$`).
    pub fn for_table(table: &ParseTable) -> LexerBuilder {
        let mut literals = Vec::new();
        let mut keywords = HashMap::new();
        for t in 1..table.terminal_count() {
            let name = table.terminal_name(t).to_string();
            let is_ident = name.chars().all(|c| c.is_alphanumeric() || c == '_')
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_');
            if is_ident {
                keywords.insert(name, t);
            } else {
                literals.push((name, t));
            }
        }
        LexerBuilder {
            literals,
            keywords,
            number: None,
            identifier: None,
            string: None,
        }
    }

    /// Tokenizes `input`, skipping ASCII whitespace.
    ///
    /// # Errors
    ///
    /// Returns [`LexError`] at the first character no rule matches.
    pub fn tokenize(&self, input: &str) -> Result<Vec<Token>, LexError> {
        let bytes = input.as_bytes();
        let mut out = Vec::new();
        let mut pos = 0usize;
        'outer: while pos < bytes.len() {
            let b = bytes[pos];
            if b.is_ascii_whitespace() {
                pos += 1;
                continue;
            }
            // Identifier / keyword.
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let text = &input[start..pos];
                match self.keywords.get(text) {
                    Some(&t) => out.push(Token::new(t, text, start)),
                    None => match self.identifier {
                        Some(t) => out.push(Token::new(t, text, start)),
                        None => {
                            return Err(LexError {
                                ch: text.chars().next().expect("nonempty"),
                                offset: start,
                            })
                        }
                    },
                }
                continue;
            }
            // Number.
            if b.is_ascii_digit() {
                let start = pos;
                while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'.') {
                    pos += 1;
                }
                match self.number {
                    Some(t) => out.push(Token::new(t, &input[start..pos], start)),
                    None => {
                        return Err(LexError {
                            ch: b as char,
                            offset: start,
                        })
                    }
                }
                continue;
            }
            // String literal.
            if b == b'"' {
                if let Some(t) = self.string {
                    let start = pos;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos] != b'"' {
                        pos += 1;
                    }
                    if pos < bytes.len() {
                        pos += 1; // closing quote
                        out.push(Token::new(t, &input[start..pos], start));
                        continue;
                    }
                    return Err(LexError {
                        ch: '"',
                        offset: start,
                    });
                }
            }
            // Punctuation literals, longest first.
            for (lit, t) in &self.literals {
                if input[pos..].starts_with(lit.as_str()) {
                    out.push(Token::new(*t, lit.as_str(), pos));
                    pos += lit.len();
                    continue 'outer;
                }
            }
            return Err(LexError {
                ch: input[pos..].chars().next().expect("nonempty"),
                offset: pos,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_automata::Lr0Automaton;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;
    use lalr_tables::{build_table, TableOptions};

    fn table(src: &str) -> ParseTable {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        build_table(&g, &lr0, &la, TableOptions::default())
    }

    #[test]
    fn longest_literal_wins() {
        let t = table("s : ID ASSIGN1 ;  // dummy\n");
        let _ = t;
        let t = table("s : \":=\" | \":\" ;");
        let lx = Lexer::for_table(&t).build();
        let toks = lx.tokenize(":=").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text(), ":=");
    }

    #[test]
    fn keywords_beat_identifiers() {
        let t = table("s : WHILE ID ;");
        let lx = Lexer::for_table(&t).identifier("ID").build();
        let toks = lx.tokenize("WHILE WHILEx").unwrap();
        assert_eq!(toks[0].terminal(), t.terminal_by_name("WHILE").unwrap());
        assert_eq!(toks[1].terminal(), t.terminal_by_name("ID").unwrap());
    }

    #[test]
    fn numbers_and_strings() {
        let t = table("s : NUM STR ;");
        let lx = Lexer::for_table(&t).number("NUM").string("STR").build();
        let toks = lx.tokenize("3.14 \"hi there\"").unwrap();
        assert_eq!(toks[0].text(), "3.14");
        assert_eq!(toks[1].text(), "\"hi there\"");
        assert_eq!(toks[1].offset(), 5);
    }

    #[test]
    fn unknown_char_is_lex_error() {
        let t = table("s : \"a\" ;");
        let lx = Lexer::for_table(&t).build();
        let err = lx.tokenize("a @").unwrap_err();
        assert_eq!(err, LexError { ch: '@', offset: 2 });
    }

    #[test]
    fn digits_without_number_class_error() {
        let t = table("s : \"a\" ;");
        let lx = Lexer::for_table(&t).build();
        assert!(lx.tokenize("5").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        let t = table("s : STR ;");
        let lx = Lexer::for_table(&t).string("STR").build();
        assert!(lx.tokenize("\"oops").is_err());
    }
}
