//! Serialization round-trips for parse tables (the "ship the tables as an
//! artifact" workflow). Only compiled with the `serde` feature:
//!
//! ```text
//! cargo test -p lalr-tables --features serde
//! ```
#![cfg(feature = "serde")]

use lalr_automata::Lr0Automaton;
use lalr_core::LalrAnalysis;
use lalr_tables::{build_table, CompressedTable, ParseTable, TableOptions};

fn table(name: &str) -> ParseTable {
    let g = lalr_corpus::by_name(name).expect("corpus entry").grammar();
    let lr0 = Lr0Automaton::build(&g);
    let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
    build_table(&g, &lr0, &la, TableOptions::default())
}

#[test]
fn dense_table_json_round_trip() {
    for name in ["expr", "json", "lalr_not_slr"] {
        let t = table(name);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: ParseTable = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t, back, "{name}");
        // Spot-check a lookup survives the trip.
        for s in 0..back.state_count() {
            for x in 0..back.terminal_count() {
                assert_eq!(t.action(s, x), back.action(s, x));
            }
        }
    }
}

#[test]
fn compressed_table_json_round_trip() {
    let t = table("expr");
    let c = CompressedTable::from_dense(&t);
    let json = serde_json::to_string(&c).expect("serialize");
    let back: CompressedTable = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(c, back);
    for s in 0..t.state_count() {
        for x in 0..t.terminal_count() {
            assert_eq!(c.action(s, x), back.action(s, x));
        }
    }
}

#[test]
fn serialized_table_is_reasonably_compact() {
    let t = table("json");
    let dense_json = serde_json::to_string(&t).expect("serialize");
    let compressed_json =
        serde_json::to_string(&CompressedTable::from_dense(&t)).expect("serialize");
    assert!(
        compressed_json.len() < dense_json.len(),
        "compression helps the artifact too: {} vs {}",
        compressed_json.len(),
        dense_json.len()
    );
}
