//! The canonical LR(0) collection.

use std::hash::{Hash, Hasher};

use lalr_grammar::{Grammar, NonTerminal, ProdId, Symbol, Terminal};
use lalr_obs::Recorder;
use rustc_hash::{FxHashMap, FxHasher};

use crate::item::{ClosureScratch, Item, ItemSet};

/// Identifier of an LR(0) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The start state.
    pub const START: StateId = StateId(0);

    /// Creates a state id from a raw index.
    #[inline]
    pub fn new(index: usize) -> StateId {
        StateId(index as u32)
    }

    /// The index into the automaton's state table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a *nonterminal transition* `(p, A)` — the node set of the
/// DeRemer–Pennello relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NtTransId(pub(crate) u32);

impl NtTransId {
    /// Creates an id from a raw index.
    #[inline]
    pub fn new(index: usize) -> NtTransId {
        NtTransId(index as u32)
    }

    /// The index into [`Lr0Automaton::nt_transitions`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A nonterminal transition `p --A--> q`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NtTransition {
    /// Source state `p`.
    pub from: StateId,
    /// The nonterminal `A`.
    pub nt: NonTerminal,
    /// Target state `q = GOTO(p, A)`.
    pub to: StateId,
}

#[derive(Debug, Clone)]
struct State {
    kernel: ItemSet,
    /// Transitions sorted by symbol for binary search.
    transitions: Vec<(Symbol, StateId)>,
    /// Final items of the closure (reductions available here).
    reductions: Vec<ProdId>,
    /// The symbol every in-edge of this state is labelled with (`None` only
    /// for the start state).
    accessing_symbol: Option<Symbol>,
}

/// The canonical LR(0) collection of a grammar.
///
/// # Examples
///
/// ```
/// use lalr_automata::{Lr0Automaton, StateId};
/// use lalr_grammar::{parse_grammar, Symbol};
///
/// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let plus = Symbol::Terminal(g.terminal_by_name("+").unwrap());
/// let after_e = lr0
///     .transition(StateId::START, Symbol::NonTerminal(g.start()))
///     .unwrap();
/// assert!(lr0.transition(after_e, plus).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lr0Automaton {
    states: Vec<State>,
    nt_transitions: Vec<NtTransition>,
    /// CSR offsets: the nonterminal transitions out of state `s` are
    /// `nt_transitions[nt_offsets[s] .. nt_offsets[s + 1]]`, sorted by
    /// nonterminal (per-state transitions are symbol-sorted and ids are
    /// assigned in `(state, nt)` order).
    nt_offsets: Vec<u32>,
}

impl Lr0Automaton {
    /// Builds the canonical collection by the standard worklist algorithm.
    ///
    /// Kernels are interned without cloning: the table maps the FxHash of a
    /// kernel's items to candidate state indices, and the items themselves
    /// live only in `states` (verified by the item-set clone counter).
    /// Goto sets are bucketed by next symbol through a dense symbol-slot
    /// scratch array instead of a hash map, preserving the first-seen
    /// symbol order that fixes the state numbering.
    pub fn build(grammar: &Grammar) -> Lr0Automaton {
        Lr0Automaton::build_recorded(grammar, &lalr_obs::NULL)
    }

    /// [`Lr0Automaton::build`] under an observer: the construction runs
    /// inside an `lr0.build` span, and — when the recorder is enabled —
    /// reports the interned state/item/transition counts.
    pub fn build_recorded(grammar: &Grammar, rec: &dyn Recorder) -> Lr0Automaton {
        let _span = lalr_obs::span(rec, "lr0.build");
        let mut states: Vec<State> = Vec::new();
        // Kernel hash → states whose kernel may match (collisions resolved
        // by comparing item slices against `states`, never by cloning).
        let mut interned: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut work: Vec<StateId> = Vec::new();
        // Spent kernel buffers from intern hits, recycled as goto buckets.
        let mut pool: Vec<Vec<Item>> = Vec::new();

        let mut intern = |items: Vec<Item>,
                          accessing: Option<Symbol>,
                          states: &mut Vec<State>,
                          work: &mut Vec<StateId>,
                          pool: &mut Vec<Vec<Item>>|
         -> StateId {
            let mut hasher = FxHasher::default();
            items.hash(&mut hasher);
            let candidates = interned.entry(hasher.finish()).or_default();
            for &c in candidates.iter() {
                if states[c as usize].kernel.items() == items.as_slice() {
                    let mut spent = items;
                    spent.clear();
                    pool.push(spent);
                    return StateId(c);
                }
            }
            let id = StateId::new(states.len());
            candidates.push(id.0);
            states.push(State {
                kernel: ItemSet::from_sorted(items),
                transitions: Vec::new(),
                reductions: Vec::new(),
                accessing_symbol: accessing,
            });
            work.push(id);
            id
        };

        intern(
            vec![Item::start_of(ProdId::START)],
            None,
            &mut states,
            &mut work,
            &mut pool,
        );

        // Dense per-symbol bucket slots: `sym_slot[dense(sym)]` is the index
        // into `order`/`buckets` for this state, or `NO_SLOT`. Reset between
        // states by walking `order` — O(symbols seen), not O(alphabet).
        const NO_SLOT: u32 = u32::MAX;
        let n_terms = grammar.terminal_count();
        let dense = |sym: Symbol| -> usize {
            match sym {
                Symbol::Terminal(t) => t.index(),
                Symbol::NonTerminal(n) => n_terms + n.index(),
            }
        };
        let mut sym_slot: Vec<u32> = vec![NO_SLOT; n_terms + grammar.nonterminal_count()];
        let mut order: Vec<Symbol> = Vec::new();
        let mut buckets: Vec<Vec<Item>> = Vec::new();
        let mut scratch = ClosureScratch::default();

        while let Some(sid) = work.pop() {
            let closure = states[sid.index()]
                .kernel
                .closure_with(grammar, &mut scratch);
            let mut reductions: Vec<ProdId> = Vec::new();
            for &item in closure {
                match item.next_symbol(grammar) {
                    None => reductions.push(item.production()),
                    Some(sym) => {
                        let d = dense(sym);
                        let slot = if sym_slot[d] == NO_SLOT {
                            let slot = order.len();
                            sym_slot[d] = slot as u32;
                            order.push(sym);
                            if buckets.len() == slot {
                                buckets.push(pool.pop().unwrap_or_default());
                            }
                            slot
                        } else {
                            sym_slot[d] as usize
                        };
                        buckets[slot].push(item.advanced());
                    }
                }
            }
            reductions.sort_unstable();
            reductions.dedup();
            states[sid.index()].reductions = reductions;

            let mut transitions: Vec<(Symbol, StateId)> = Vec::with_capacity(order.len());
            for (slot, &sym) in order.iter().enumerate() {
                // The closure is item-sorted and advancing preserves that
                // order within a bucket, so each goto kernel is born sorted.
                let items = std::mem::replace(&mut buckets[slot], pool.pop().unwrap_or_default());
                let target = intern(items, Some(sym), &mut states, &mut work, &mut pool);
                transitions.push((sym, target));
            }
            transitions.sort_unstable_by_key(|&(sym, _)| sym);
            states[sid.index()].transitions = transitions;
            for &sym in &order {
                sym_slot[dense(sym)] = NO_SLOT;
            }
            order.clear();
        }

        // Enumerate nonterminal transitions in (state, nt) order — the
        // canonical numbering used by the relation matrices. Per-state
        // runs are recorded as CSR offsets for `nt_transition_id`.
        let mut nt_transitions = Vec::new();
        let mut nt_offsets = Vec::with_capacity(states.len() + 1);
        nt_offsets.push(0u32);
        for (i, st) in states.iter().enumerate() {
            for &(sym, to) in &st.transitions {
                if let Symbol::NonTerminal(nt) = sym {
                    let from = StateId::new(i);
                    nt_transitions.push(NtTransition { from, nt, to });
                }
            }
            nt_offsets.push(nt_transitions.len() as u32);
        }

        if rec.is_enabled() {
            rec.add("lr0.states", states.len() as u64);
            let kernel_items: usize = states.iter().map(|s| s.kernel.len()).sum();
            rec.add("lr0.kernel_items", kernel_items as u64);
            let transitions: usize = states.iter().map(|s| s.transitions.len()).sum();
            rec.add("lr0.transitions", transitions as u64);
            rec.add("lr0.nt_transitions", nt_transitions.len() as u64);
        }

        Lr0Automaton {
            states,
            nt_transitions,
            nt_offsets,
        }
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// The kernel items of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn kernel(&self, state: StateId) -> &ItemSet {
        &self.states[state.index()].kernel
    }

    /// The full closure of `state` (recomputed on demand; kernels are what
    /// the automaton stores).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn closure(&self, grammar: &Grammar, state: StateId) -> ItemSet {
        self.states[state.index()].kernel.closure(grammar)
    }

    /// `GOTO(state, symbol)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transition(&self, state: StateId, sym: Symbol) -> Option<StateId> {
        let ts = &self.states[state.index()].transitions;
        ts.binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| ts[i].1)
    }

    /// All outgoing transitions of `state`, sorted by symbol.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transitions(&self, state: StateId) -> &[(Symbol, StateId)] {
        &self.states[state.index()].transitions
    }

    /// The outgoing *terminal* shift symbols of `state`.
    pub fn shift_symbols(&self, state: StateId) -> impl Iterator<Item = Terminal> + '_ {
        self.transitions(state)
            .iter()
            .filter_map(|&(s, _)| s.terminal())
    }

    /// The productions reducible in `state` (final items of its closure).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn reductions(&self, state: StateId) -> &[ProdId] {
        &self.states[state.index()].reductions
    }

    /// The unique symbol labelling every in-edge of `state` (`None` for the
    /// start state).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn accessing_symbol(&self, state: StateId) -> Option<Symbol> {
        self.states[state.index()].accessing_symbol
    }

    /// All nonterminal transitions, in id order.
    #[inline]
    pub fn nt_transitions(&self) -> &[NtTransition] {
        &self.nt_transitions
    }

    /// A nonterminal transition by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn nt_transition(&self, id: NtTransId) -> NtTransition {
        self.nt_transitions[id.index()]
    }

    /// Looks up the id of the transition `(state, nt)` — a binary search
    /// within the state's dense run of nonterminal transitions.
    pub fn nt_transition_id(&self, state: StateId, nt: NonTerminal) -> Option<NtTransId> {
        let lo = self.nt_offsets[state.index()] as usize;
        let hi = self.nt_offsets[state.index() + 1] as usize;
        self.nt_transitions[lo..hi]
            .binary_search_by_key(&nt, |t| t.nt)
            .ok()
            .map(|i| NtTransId::new(lo + i))
    }

    /// Walks `symbols` from `state`, returning the end state if every
    /// transition exists.
    pub fn walk(&self, state: StateId, symbols: &[Symbol]) -> Option<StateId> {
        symbols
            .iter()
            .try_fold(state, |s, &sym| self.transition(s, sym))
    }

    /// The state reached by shifting the user start symbol from the start
    /// state — the *accept state* (its kernel is `<start> → S ·`).
    pub fn accept_state(&self, grammar: &Grammar) -> StateId {
        self.transition(StateId::START, Symbol::NonTerminal(grammar.start()))
            .expect("the start production's transition always exists")
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    /// The dragon-book expression grammar has the famous 12-state LR(0)
    /// machine.
    #[test]
    fn dragon_expression_grammar_has_12_states() {
        let g = parse_grammar(
            r#"
            e : e "+" t | t ;
            t : t "*" f | f ;
            f : "(" e ")" | "id" ;
            "#,
        )
        .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        assert_eq!(lr0.state_count(), 12);
        // Nonterminal transitions: I0-e, I0-t, I0-f, I4-e, I4-t, I4-f,
        // I6-t, I6-f, I7-f.
        assert_eq!(lr0.nt_transitions().len(), 9);
    }

    #[test]
    fn start_state_and_accept_state() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        assert_eq!(lr0.accessing_symbol(StateId::START), None);
        let acc = lr0.accept_state(&g);
        assert_eq!(
            lr0.accessing_symbol(acc),
            Some(Symbol::NonTerminal(g.start()))
        );
        let kernel = lr0.kernel(acc);
        assert_eq!(kernel.len(), 1);
        assert!(kernel.items()[0].is_final(&g));
    }

    #[test]
    fn reductions_include_epsilon_items() {
        let g = parse_grammar("s : a \"x\" ; a : ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        // In the start state, a → · is a (final) closure item.
        let a_prod = g.productions_of(g.nonterminal_by_name("a").unwrap())[0];
        assert_eq!(lr0.reductions(StateId::START), &[a_prod]);
    }

    #[test]
    fn walk_follows_production_bodies() {
        let g = parse_grammar("s : \"a\" \"b\" \"c\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let p = g.production(ProdId::new(1));
        let end = lr0.walk(StateId::START, p.rhs()).unwrap();
        assert!(lr0.reductions(end).contains(&ProdId::new(1)));
        assert_eq!(lr0.walk(end, p.rhs()), None);
    }

    #[test]
    fn nt_transition_index_is_consistent() {
        let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        for (i, t) in lr0.nt_transitions().iter().enumerate() {
            let id = NtTransId::new(i);
            assert_eq!(lr0.nt_transition(id), *t);
            assert_eq!(lr0.nt_transition_id(t.from, t.nt), Some(id));
            assert_eq!(
                lr0.transition(t.from, Symbol::NonTerminal(t.nt)),
                Some(t.to)
            );
        }
    }

    #[test]
    fn deterministic_state_numbering() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let a = Lr0Automaton::build(&g);
        let b = Lr0Automaton::build(&g);
        assert_eq!(a.state_count(), b.state_count());
        for s in a.states() {
            assert_eq!(a.kernel(s), b.kernel(s));
            assert_eq!(a.transitions(s), b.transitions(s));
        }
    }

    #[test]
    fn accessing_symbol_unique_over_in_edges() {
        let g =
            parse_grammar("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;")
                .unwrap();
        let lr0 = Lr0Automaton::build(&g);
        for s in lr0.states() {
            for &(sym, to) in lr0.transitions(s) {
                assert_eq!(lr0.accessing_symbol(to), Some(sym));
            }
        }
    }

    #[test]
    fn transition_count_matches_enumeration() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let manual: usize = lr0.states().map(|s| lr0.transitions(s).len()).sum();
        assert_eq!(lr0.transition_count(), manual);
    }
}
