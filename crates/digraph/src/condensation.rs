//! Condensation (SCC quotient graph).

use crate::{tarjan_scc, Graph, SccInfo};

/// The quotient of a graph by its strongly connected components.
///
/// Used by the relation-structure experiment (**E5**) to report how cyclic
/// the `reads` and `includes` relations are on real grammars, and by the
/// non-LR(k) diagnosis to name the offending component.
///
/// # Examples
///
/// ```
/// use lalr_digraph::{Condensation, Graph};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
/// let c = Condensation::of(&g);
/// assert_eq!(c.graph().node_count(), 2);
/// assert!(c.graph().edge_count() == 1);
/// assert!(c.is_dag_nontrivial() == false || c.scc().count() < 3);
/// ```
#[derive(Debug, Clone)]
pub struct Condensation {
    scc: SccInfo,
    graph: Graph,
}

impl Condensation {
    /// Computes the condensation of `graph`.
    pub fn of(graph: &Graph) -> Self {
        let scc = tarjan_scc(graph);
        let mut quotient = Graph::new(scc.count());
        for (u, v) in graph.edges() {
            let (cu, cv) = (scc.component(u), scc.component(v));
            if cu != cv {
                quotient.add_edge_dedup(cu, cv);
            }
        }
        Condensation {
            scc,
            graph: quotient,
        }
    }

    /// The component structure.
    pub fn scc(&self) -> &SccInfo {
        &self.scc
    }

    /// The quotient graph (always a DAG).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// `true` when the original graph had at least one nontrivial component,
    /// i.e. it was *not* already a DAG of singletons (ignoring self-loops).
    pub fn is_dag_nontrivial(&self) -> bool {
        self.scc.sizes().iter().any(|&s| s > 1)
    }

    /// A topological order of the component ids (sources first).
    ///
    /// Tarjan numbers components in reverse topological order, so this is
    /// simply descending id order.
    pub fn topological_components(&self) -> Vec<usize> {
        (0..self.scc.count()).rev().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensation_is_acyclic() {
        let g = Graph::from_edges(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let c = Condensation::of(&g);
        assert_eq!(c.scc().count(), 3);
        // Re-condensing the quotient must be the identity partition.
        let c2 = Condensation::of(c.graph());
        assert_eq!(c2.scc().count(), c.graph().node_count());
        assert!(c.is_dag_nontrivial());
    }

    #[test]
    fn quotient_edges_are_deduped() {
        // Two parallel inter-component edges collapse to one.
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (0, 2), (1, 2), (2, 3)]);
        let c = Condensation::of(&g);
        assert_eq!(c.graph().edge_count(), 2);
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let c = Condensation::of(&g);
        let order = c.topological_components();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &c) in order.iter().enumerate() {
                p[c] = i;
            }
            p
        };
        for (u, v) in c.graph().edges() {
            assert!(pos[u] < pos[v], "edge {u}->{v} violates topo order");
        }
    }
}
