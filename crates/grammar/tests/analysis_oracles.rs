//! Property tests: the Digraph-based analyses (FIRST, FOLLOW) and the
//! nullable computation must agree with straightforward fixpoint oracles
//! on arbitrary grammars.

use std::collections::{BTreeMap, BTreeSet};

use lalr_grammar::analysis::{nullable, FirstSets, FollowSets};
use lalr_grammar::{Grammar, GrammarBuilder, NonTerminal, Symbol, Terminal};
use proptest::prelude::*;

// ---------- random grammar strategy (builder-level, no corpus dep) ------

#[derive(Debug, Clone)]
struct RawGrammar {
    n_nts: usize,
    rules: Vec<(usize, Vec<RawSym>)>,
}

#[derive(Debug, Clone, Copy)]
enum RawSym {
    T(usize),
    N(usize),
}

fn raw_grammar() -> impl Strategy<Value = RawGrammar> {
    (1usize..6).prop_flat_map(|n_nts| {
        let sym = prop_oneof![
            (0usize..5).prop_map(RawSym::T),
            (0usize..n_nts).prop_map(RawSym::N),
        ];
        let rule = (0usize..n_nts, prop::collection::vec(sym, 0..4));
        prop::collection::vec(rule, 1..12).prop_map(move |mut rules| {
            // Ensure every nonterminal has at least one production so
            // the builder treats them all as nonterminals.
            let covered: BTreeSet<usize> = rules.iter().map(|&(l, _)| l).collect();
            for nt in 0..n_nts {
                if !covered.contains(&nt) {
                    rules.push((nt, vec![RawSym::T(0)]));
                }
            }
            RawGrammar { n_nts, rules }
        })
    })
}

fn build(raw: &RawGrammar) -> Grammar {
    let mut b = GrammarBuilder::new();
    for (lhs, rhs) in &raw.rules {
        let rhs: Vec<String> = rhs
            .iter()
            .map(|s| match s {
                RawSym::T(i) => format!("t{i}"),
                RawSym::N(i) => format!("n{i}"),
            })
            .collect();
        b.rule(format!("n{lhs}"), rhs);
    }
    b.start("n0");
    let _ = raw.n_nts;
    b.build().expect("structurally valid")
}

// ---------- oracles -----------------------------------------------------

fn oracle_nullable(g: &Grammar) -> BTreeSet<NonTerminal> {
    let mut set = BTreeSet::new();
    loop {
        let mut changed = false;
        for p in g.productions() {
            if !set.contains(&p.lhs())
                && p.rhs().iter().all(|s| match s {
                    Symbol::Terminal(_) => false,
                    Symbol::NonTerminal(n) => set.contains(n),
                })
            {
                set.insert(p.lhs());
                changed = true;
            }
        }
        if !changed {
            return set;
        }
    }
}

fn oracle_first(
    g: &Grammar,
    nullable: &BTreeSet<NonTerminal>,
) -> BTreeMap<NonTerminal, BTreeSet<Terminal>> {
    let mut first: BTreeMap<NonTerminal, BTreeSet<Terminal>> =
        g.nonterminals().map(|n| (n, BTreeSet::new())).collect();
    loop {
        let mut changed = false;
        for p in g.productions() {
            let mut addition: BTreeSet<Terminal> = BTreeSet::new();
            for &sym in p.rhs() {
                match sym {
                    Symbol::Terminal(t) => {
                        addition.insert(t);
                        break;
                    }
                    Symbol::NonTerminal(n) => {
                        addition.extend(first[&n].iter().copied());
                        if !nullable.contains(&n) {
                            break;
                        }
                    }
                }
            }
            let entry = first.get_mut(&p.lhs()).expect("all nts present");
            let before = entry.len();
            entry.extend(addition);
            changed |= entry.len() != before;
        }
        if !changed {
            return first;
        }
    }
}

fn oracle_follow(
    g: &Grammar,
    nullable: &BTreeSet<NonTerminal>,
    first: &BTreeMap<NonTerminal, BTreeSet<Terminal>>,
) -> BTreeMap<NonTerminal, BTreeSet<Terminal>> {
    let mut follow: BTreeMap<NonTerminal, BTreeSet<Terminal>> =
        g.nonterminals().map(|n| (n, BTreeSet::new())).collect();
    follow
        .get_mut(&g.augmented_start())
        .expect("present")
        .insert(Terminal::EOF);
    loop {
        let mut changed = false;
        for p in g.productions() {
            let rhs = p.rhs();
            for (i, &sym) in rhs.iter().enumerate() {
                let Symbol::NonTerminal(a) = sym else {
                    continue;
                };
                let mut addition: BTreeSet<Terminal> = BTreeSet::new();
                let mut tail_nullable = true;
                for &b in &rhs[i + 1..] {
                    match b {
                        Symbol::Terminal(t) => {
                            addition.insert(t);
                            tail_nullable = false;
                            break;
                        }
                        Symbol::NonTerminal(n) => {
                            addition.extend(first[&n].iter().copied());
                            if !nullable.contains(&n) {
                                tail_nullable = false;
                                break;
                            }
                        }
                    }
                }
                if tail_nullable {
                    addition.extend(follow[&p.lhs()].iter().copied());
                }
                let entry = follow.get_mut(&a).expect("present");
                let before = entry.len();
                entry.extend(addition);
                changed |= entry.len() != before;
            }
        }
        if !changed {
            return follow;
        }
    }
}

// ---------- properties ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn nullable_matches_oracle(raw in raw_grammar()) {
        let g = build(&raw);
        let fast = nullable(&g);
        let slow = oracle_nullable(&g);
        for nt in g.nonterminals() {
            prop_assert_eq!(fast.contains(nt), slow.contains(&nt), "{:?}", nt);
        }
    }

    #[test]
    fn first_matches_oracle(raw in raw_grammar()) {
        let g = build(&raw);
        let n = nullable(&g);
        let fast = FirstSets::compute(&g, &n);
        let slow = oracle_first(&g, &oracle_nullable(&g));
        for nt in g.nonterminals() {
            let got: BTreeSet<Terminal> = fast.iter(nt).collect();
            prop_assert_eq!(&got, &slow[&nt], "FIRST({:?})", nt);
        }
    }

    #[test]
    fn follow_matches_oracle(raw in raw_grammar()) {
        let g = build(&raw);
        let n = nullable(&g);
        let first = FirstSets::compute(&g, &n);
        let fast = FollowSets::compute(&g, &first);
        let nn = oracle_nullable(&g);
        let slow = oracle_follow(&g, &nn, &oracle_first(&g, &nn));
        for nt in g.nonterminals() {
            let got: BTreeSet<Terminal> = fast.iter(nt).collect();
            prop_assert_eq!(&got, &slow[&nt], "FOLLOW({:?})", nt);
        }
    }

    #[test]
    fn first_of_nullable_string_flags_epsilon(raw in raw_grammar()) {
        let g = build(&raw);
        let n = nullable(&g);
        let first = FirstSets::compute(&g, &n);
        for p in g.productions() {
            let (_, eps) = first.first_of(p.rhs());
            prop_assert_eq!(eps, n.string_nullable(p.rhs()));
        }
    }
}
