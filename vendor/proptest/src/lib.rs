//! Vendored offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be downloaded. This shim provides the same surface the
//! workspace's property tests are written against — the [`proptest!`]
//! macro, the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! `prop::collection::vec`, `prop_oneof!`, `Just`, range strategies, and a
//! tiny regex-subset string strategy — backed by a deterministic seeded
//! generator. There is no shrinking: a failing case prints its generated
//! inputs and the case index so it can be replayed by rerunning the test
//! (generation is deterministic per test name).

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::…` namespace, mirroring the real crate's prelude alias.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::collection::vec;
    }
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Supports the same shape the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0..5u64, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} with inputs:",
                            stringify!($name),
                            case,
                            config.cases,
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), &$arg);)+
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn vec_respects_len_and_element_ranges(v in prop::collection::vec(5u64..9, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (5..9).contains(&x)));
        }

        #[test]
        fn flat_map_sees_outer_value(p in pair()) {
            prop_assert!(p.1 < p.0);
        }

        #[test]
        fn oneof_picks_from_all_arms(x in prop_oneof![0usize..3, 10usize..13]) {
            prop_assert!((0..3).contains(&x) || (10..13).contains(&x));
        }

        #[test]
        fn regex_class_subset(s in "[ a-c0-2]{0,9}") {
            prop_assert!(s.len() <= 9);
            prop_assert!(s.chars().all(|c| " abc012".contains(c)));
        }

        #[test]
        fn tuple_and_map(t in (0usize..4, (0usize..4).prop_map(|x| x * 2))) {
            prop_assert!(t.0 < 4 && t.1 % 2 == 0 && t.1 < 8);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let strat = crate::prop::collection::vec(0usize..1000, 0..20);
        let mut r1 = crate::test_runner::TestRng::for_test("determinism");
        let mut r2 = crate::test_runner::TestRng::for_test("determinism");
        let a: Vec<Vec<usize>> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut r1))
            .collect();
        let b: Vec<Vec<usize>> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut r2))
            .collect();
        assert_eq!(a, b);
    }
}
