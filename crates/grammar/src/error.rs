//! Error types for grammar construction and parsing.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing the grammar text format; carried by
/// [`GrammarError::Parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character that cannot start any token.
    UnexpectedChar(char),
    /// A string literal without a closing quote.
    UnterminatedLiteral,
    /// A block comment without `*/`.
    UnterminatedComment,
    /// An unknown `%directive`.
    UnknownDirective(String),
    /// Expected one token, found another (both rendered for the message).
    Expected {
        /// What the parser wanted.
        wanted: String,
        /// What it found.
        found: String,
    },
}

/// Errors produced by [`crate::GrammarBuilder::build`] and
/// [`crate::parse_grammar`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarError {
    /// Text-format syntax error at `line:col`.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// The specific failure.
        kind: ParseErrorKind,
    },
    /// A symbol name declared twice, or used both as terminal and
    /// nonterminal.
    DuplicateSymbol(String),
    /// The reserved names `$` and `<start>` may not be declared.
    ReservedSymbol(String),
    /// No `%start` given and no rule found to infer it from.
    MissingStart,
    /// `%start` names a symbol with no productions.
    StartNotNonterminal(String),
    /// A rule references an undeclared symbol name (only possible through
    /// the builder's strict mode).
    UnknownSymbol(String),
    /// A `%prec` annotation names a symbol that is not a terminal.
    PrecNotTerminal(String),
    /// The grammar has no productions at all.
    Empty,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnterminatedLiteral => write!(f, "unterminated string literal"),
            ParseErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            ParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive %{d}"),
            ParseErrorKind::Expected { wanted, found } => {
                write!(f, "expected {wanted}, found {found}")
            }
        }
    }
}

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::Parse { line, col, kind } => {
                write!(f, "syntax error at {line}:{col}: {kind}")
            }
            GrammarError::DuplicateSymbol(s) => write!(f, "duplicate symbol {s:?}"),
            GrammarError::ReservedSymbol(s) => write!(f, "reserved symbol name {s:?}"),
            GrammarError::MissingStart => write!(f, "no start symbol"),
            GrammarError::StartNotNonterminal(s) => {
                write!(f, "start symbol {s:?} has no productions")
            }
            GrammarError::UnknownSymbol(s) => write!(f, "unknown symbol {s:?}"),
            GrammarError::PrecNotTerminal(s) => {
                write!(f, "%prec symbol {s:?} is not a terminal")
            }
            GrammarError::Empty => write!(f, "grammar has no productions"),
        }
    }
}

impl Error for GrammarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = GrammarError::Parse {
            line: 3,
            col: 7,
            kind: ParseErrorKind::UnexpectedChar('@'),
        };
        assert_eq!(
            e.to_string(),
            "syntax error at 3:7: unexpected character '@'"
        );
        assert_eq!(
            GrammarError::DuplicateSymbol("x".into()).to_string(),
            "duplicate symbol \"x\""
        );
        assert_eq!(GrammarError::MissingStart.to_string(), "no start symbol");
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn Error> = Box::new(GrammarError::Empty);
        assert_eq!(e.to_string(), "grammar has no productions");
    }
}
