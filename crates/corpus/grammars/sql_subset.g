// A SQL subset: SELECT (joins, grouping, subqueries), INSERT, UPDATE,
// DELETE, CREATE TABLE. Shaped after the SQL-92 entry-level grammar.
%start sql_script

sql_script : statement_semi | sql_script statement_semi ;
statement_semi : statement ";" ;

statement
    : select_stmt
    | insert_stmt
    | update_stmt
    | delete_stmt
    | create_table_stmt
    | drop_table_stmt
    ;

// ---- SELECT ----
select_stmt : select_core order_clause_opt ;

select_core
    : SELECT distinct_opt select_list from_clause where_opt group_opt having_opt
    ;

distinct_opt : %empty | DISTINCT | ALL ;

select_list : "*" | select_items ;
select_items : select_item | select_items "," select_item ;
select_item : expr | expr AS IDENT | expr IDENT ;

from_clause : FROM table_refs ;
table_refs : table_ref | table_refs "," table_ref ;

table_ref
    : table_primary
    | table_ref join_type JOIN table_primary ON expr
    ;
join_type : %empty | INNER | LEFT | LEFT OUTER | RIGHT | RIGHT OUTER ;

table_primary
    : qualified_name
    | qualified_name IDENT
    | "(" select_stmt ")" IDENT
    ;

where_opt : %empty | WHERE expr ;
group_opt : %empty | GROUP BY expr_list ;
having_opt : %empty | HAVING expr ;
order_clause_opt : %empty | ORDER BY order_items ;
order_items : order_item | order_items "," order_item ;
order_item : expr | expr ASC | expr DESC ;

// ---- DML ----
insert_stmt
    : INSERT INTO qualified_name VALUES "(" expr_list ")"
    | INSERT INTO qualified_name "(" column_list ")" VALUES "(" expr_list ")"
    | INSERT INTO qualified_name select_stmt
    ;
column_list : IDENT | column_list "," IDENT ;

update_stmt : UPDATE qualified_name SET assignments where_opt ;
assignments : assignment | assignments "," assignment ;
assignment : IDENT "=" expr ;

delete_stmt : DELETE FROM qualified_name where_opt ;

// ---- DDL ----
create_table_stmt : CREATE TABLE qualified_name "(" column_defs ")" ;
column_defs : column_def | column_defs "," column_def ;
column_def : IDENT type_name column_constraints ;
type_name
    : INT_T
    | VARCHAR "(" NUMBER ")"
    | CHAR_T "(" NUMBER ")"
    | FLOAT_T
    | DATE_T
    ;
column_constraints : %empty | column_constraints column_constraint ;
column_constraint : NOT NULL_KW | PRIMARY KEY | UNIQUE | DEFAULT literal ;

drop_table_stmt : DROP TABLE qualified_name ;

// ---- expressions ----
expr_list : expr | expr_list "," expr ;

expr : or_expr ;
or_expr : and_expr | or_expr OR and_expr ;
and_expr : not_expr | and_expr AND not_expr ;
not_expr : cmp_expr | NOT not_expr ;

cmp_expr
    : add_expr
    | add_expr cmp_op add_expr
    | add_expr IS NULL_KW
    | add_expr IS NOT NULL_KW
    | add_expr IN "(" select_stmt ")"
    | add_expr IN "(" expr_list ")"
    | add_expr BETWEEN add_expr AND add_expr
    | add_expr LIKE STRING
    | EXISTS "(" select_stmt ")"
    ;
cmp_op : "=" | NE | "<" | LE | ">" | GE ;

add_expr : mul_expr | add_expr "+" mul_expr | add_expr "-" mul_expr ;
mul_expr : unary_expr | mul_expr "*" unary_expr | mul_expr "/" unary_expr ;
unary_expr : primary | "-" unary_expr ;

primary
    : literal
    | qualified_name
    | func_call
    | "(" expr ")"
    | case_expr
    ;

func_call
    : IDENT "(" ")"
    | IDENT "(" expr_list ")"
    | IDENT "(" "*" ")"
    | IDENT "(" DISTINCT expr ")"
    ;

case_expr
    : CASE when_clauses else_opt END_KW
    | CASE expr when_clauses else_opt END_KW
    ;
when_clauses : when_clause | when_clauses when_clause ;
when_clause : WHEN expr THEN expr ;
else_opt : %empty | ELSE expr ;

qualified_name : IDENT | IDENT "." IDENT ;
literal : NUMBER | STRING | NULL_KW | TRUE | FALSE ;
