//! Useless-symbol elimination.

use crate::analysis::productive_nonterminals;
use crate::builder::GrammarBuilder;
use crate::error::GrammarError;
use crate::grammar::Grammar;
use crate::symbol::Symbol;

/// The result of [`reduce`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceOutcome {
    /// The reduced grammar.
    pub grammar: Grammar,
    /// Names of removed nonterminals.
    pub removed_nonterminals: Vec<String>,
    /// Number of removed productions.
    pub removed_productions: usize,
}

impl ReduceOutcome {
    /// `true` when the input was already reduced.
    pub fn was_already_reduced(&self) -> bool {
        self.removed_nonterminals.is_empty() && self.removed_productions == 0
    }
}

/// Removes unproductive and unreachable symbols (in that order, which is the
/// order that guarantees a fully reduced result).
///
/// # Errors
///
/// Returns [`GrammarError::Empty`] when the start symbol itself is
/// unproductive, i.e. the grammar generates no terminal string at all.
///
/// # Examples
///
/// ```
/// use lalr_grammar::{parse_grammar, transform::reduce};
///
/// let g = parse_grammar("s : \"a\" | u ; u : u \"x\" ; dead : \"d\" ;")?;
/// let out = reduce(&g)?;
/// assert_eq!(out.removed_nonterminals, vec!["u", "dead"]);
/// assert_eq!(out.grammar.production_count(), 2); // augmented + s→a
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn reduce(grammar: &Grammar) -> Result<ReduceOutcome, GrammarError> {
    let productive = productive_nonterminals(grammar);
    if !productive.contains(grammar.start().index()) {
        return Err(GrammarError::Empty);
    }

    // Phase 1: drop productions mentioning an unproductive nonterminal.
    let keep1: Vec<bool> = grammar
        .productions()
        .iter()
        .map(|p| {
            productive.contains(p.lhs().index())
                && p.rhs().iter().all(|&s| match s {
                    Symbol::Terminal(_) => true,
                    Symbol::NonTerminal(n) => productive.contains(n.index()),
                })
        })
        .collect();

    // Phase 2: reachability over the phase-1 grammar.
    // (Recomputing reachability on the original grammar would wrongly keep
    // symbols only reachable through deleted productions.)
    let mut reachable = vec![false; grammar.nonterminal_count()];
    reachable[grammar.augmented_start().index()] = true;
    let mut work = vec![grammar.augmented_start()];
    while let Some(nt) = work.pop() {
        for &pid in grammar.productions_of(nt) {
            if !keep1[pid.index()] {
                continue;
            }
            for &sym in grammar.production(pid).rhs() {
                if let Symbol::NonTerminal(n) = sym {
                    if !reachable[n.index()] {
                        reachable[n.index()] = true;
                        work.push(n);
                    }
                }
            }
        }
    }

    let mut builder = GrammarBuilder::new();
    builder.start(grammar.nonterminal_name(grammar.start()));

    // Re-declare precedence levels (ascending) so kept %prec annotations and
    // conflict resolution keep working on the reduced grammar.
    let mut prec_groups: Vec<(crate::parse::Precedence, Vec<&str>)> = Vec::new();
    for t in grammar.terminals() {
        if let Some(p) = grammar.precedence_of(t) {
            match prec_groups.iter_mut().find(|(q, _)| q.level == p.level) {
                Some((_, names)) => names.push(grammar.terminal_name(t)),
                None => prec_groups.push((p, vec![grammar.terminal_name(t)])),
            }
        }
    }
    prec_groups.sort_by_key(|(p, _)| p.level);
    for (p, names) in prec_groups {
        builder.precedence(p.assoc, names);
    }

    let mut kept = 0usize;
    for (pid, p) in grammar.iter_productions() {
        if pid.index() == 0 {
            continue; // the builder re-adds the augmentation
        }
        if keep1[pid.index()] && reachable[p.lhs().index()] {
            kept += 1;
            let rhs: Vec<&str> = p.rhs().iter().map(|&s| grammar.name_of(s)).collect();
            match p.prec_override() {
                None => builder.rule(grammar.nonterminal_name(p.lhs()), rhs),
                Some(t) => builder.rule_with_prec(
                    grammar.nonterminal_name(p.lhs()),
                    rhs,
                    grammar.terminal_name(t),
                ),
            };
        }
    }

    let removed_nonterminals: Vec<String> = grammar
        .nonterminals()
        .filter(|nt| {
            !nt.is_augmented_start() && (!productive.contains(nt.index()) || !reachable[nt.index()])
        })
        .map(|nt| grammar.nonterminal_name(nt).to_string())
        .collect();

    Ok(ReduceOutcome {
        grammar: builder.build()?,
        removed_nonterminals,
        removed_productions: grammar.production_count() - 1 - kept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_grammar;

    #[test]
    fn already_reduced_is_identity_shaped() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let out = reduce(&g).unwrap();
        assert!(out.was_already_reduced());
        assert_eq!(out.grammar.production_count(), g.production_count());
    }

    #[test]
    fn unproductive_cascade() {
        // u unproductive ⇒ s → u b dies ⇒ b unreachable.
        let g = parse_grammar("s : \"a\" | u b ; u : u \"x\" ; b : \"bb\" ;").unwrap();
        let out = reduce(&g).unwrap();
        assert_eq!(out.removed_nonterminals, vec!["u", "b"]);
        assert_eq!(out.grammar.production_count(), 2);
        assert!(out.grammar.terminal_by_name("bb").is_none());
    }

    #[test]
    fn empty_language_is_error() {
        let g = parse_grammar("s : s \"x\" ;").unwrap();
        assert_eq!(reduce(&g), Err(GrammarError::Empty));
    }

    #[test]
    fn start_kept_even_when_only_epsilon() {
        let g = parse_grammar("s : | dead ; dead : dead \"x\" ;").unwrap();
        let out = reduce(&g).unwrap();
        assert_eq!(out.removed_nonterminals, vec!["dead"]);
        assert_eq!(out.grammar.production_count(), 2);
    }

    #[test]
    fn prec_overrides_survive() {
        let g = parse_grammar("%right U  e : \"-\" e %prec U | \"x\" ; dead : \"d\" ;").unwrap();
        let out = reduce(&g).unwrap();
        let e = out.grammar.nonterminal_by_name("e").unwrap();
        let p = out.grammar.production(out.grammar.productions_of(e)[0]);
        assert!(p.prec_override().is_some());
    }
}
