//! Context-free grammar representation and classical analyses.
//!
//! This crate is the grammar substrate for the DeRemer–Pennello LALR(1)
//! look-ahead computation in `lalr-core`:
//!
//! * [`Grammar`] — an immutable, interned, *augmented* grammar. Every
//!   grammar carries the reserved end-of-input terminal `$` ([`Grammar::eof`])
//!   and the reserved start production `0: <start> → S`
//!   ([`Grammar::start_production`]), the convention the paper (and
//!   yacc/bison) use.
//! * [`GrammarBuilder`] — programmatic construction.
//! * [`parse_grammar`] — a yacc/menhir-style text format with `%token`,
//!   `%start`, `%left`/`%right`/`%nonassoc` and `%prec` support.
//! * [`parse_yacc`] — a reader for real yacc/bison `.y` files (semantic
//!   actions stripped, declarations handled or skipped).
//! * [`analysis`] — nullable symbols, `FIRST`/`FOLLOW` sets, reachability,
//!   productivity, and recursion structure.
//! * [`transform`] — useless-symbol elimination and ε-production removal.
//!
//! # Examples
//!
//! ```
//! use lalr_grammar::parse_grammar;
//!
//! let g = parse_grammar(
//!     r#"
//!     %start e
//!     e : e "+" t | t ;
//!     t : "x" ;
//!     "#,
//! )?;
//! assert_eq!(g.terminal_count(), 3); // "$", "+", "x"
//! assert_eq!(g.production_count(), 4); // augmented + 3 user rules
//! let nullable = lalr_grammar::analysis::nullable(&g);
//! assert!(nullable.iter().next().is_none());
//! # Ok::<(), lalr_grammar::GrammarError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod display;
mod error;
mod grammar;
mod parse;
mod production;
mod stats;
mod symbol;
pub mod transform;

pub use builder::GrammarBuilder;
pub use error::{GrammarError, ParseErrorKind};
pub use grammar::Grammar;
pub use parse::{parse_grammar, parse_yacc, Assoc, Precedence};
pub use production::{ProdId, Production};
pub use stats::GrammarStats;
pub use symbol::{NonTerminal, Symbol, Terminal};
