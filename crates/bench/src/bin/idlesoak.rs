//! Idle-connection soak for the event-loop front end.
//!
//! Opens thousands of connections against an in-process [`EventDaemon`]
//! and holds them idle, proving three things the thread-per-connection
//! daemon cannot: per-connection memory stays flat (no thread stacks),
//! the loop still serves real requests while holding them all, and a
//! graceful drain closes every one cleanly (no aborts).
//!
//! ```text
//! cargo run --release -p lalr-bench --bin idlesoak            # 10,000 connections
//! cargo run --release -p lalr-bench --bin idlesoak -- 2000    # smaller soak
//! ```
//!
//! Both ends live in one process, so the fd budget is two descriptors
//! per connection; the harness raises `RLIMIT_NOFILE` toward what the
//! requested count needs and caps the count to what the hard limit
//! allows, reporting the cap. Exit status is nonzero if liveness,
//! memory flatness (< 32 KiB/connection), or the clean drain fails.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use lalr_core::Parallelism;
use lalr_service::protocol::request_to_line;
use lalr_service::{DaemonConfig, EventDaemon, GrammarFormat, Request, ServiceConfig};

/// Resident set size of this process in bytes, per `/proc/self/status`.
fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Sends one request over an already-open connection and reads the
/// response line — the liveness probe for held sockets.
fn call_over(stream: &mut TcpStream, request: &Request) -> std::io::Result<String> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(format!("{}\n", request_to_line(request, None)).as_bytes())?;
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => break,
            _ if byte[0] == b'\n' => break,
            _ => line.push(byte[0]),
        }
    }
    Ok(String::from_utf8_lossy(&line).into_owned())
}

fn main() {
    if !lalr_net::supported() {
        eprintln!("idlesoak: event loop unsupported on this target, skipping");
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requested: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10_000);

    // Two fds per connection (client + server end) plus slack for the
    // listener, epoll fds, stdio, and the store-less service itself.
    let want = (requested as u64) * 2 + 512;
    let soft = lalr_net::sys::raise_nofile_limit(want).unwrap_or(1024);
    let conns = requested.min(((soft.saturating_sub(512)) / 2) as usize);
    if conns < requested {
        eprintln!("idlesoak: fd limit {soft} caps the soak at {conns} connections");
    }

    let daemon = EventDaemon::start(
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: conns + 16,
            // Far above the soak's lifetime so held connections idle
            // without tripping the timeout.
            read_timeout: Duration::from_secs(300),
            service: ServiceConfig {
                workers: Parallelism::new(2),
                ..ServiceConfig::default()
            },
            ..DaemonConfig::default()
        },
        2,
    )
    .expect("bind loopback");
    let addr = daemon.addr().to_string();
    eprintln!("idlesoak: holding {conns} idle connections against {addr}");

    let rss_start = vm_rss_bytes();
    let mut held: Vec<TcpStream> = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(&addr) {
            Ok(s) => held.push(s),
            Err(e) => {
                eprintln!("idlesoak: connect {i} failed: {e}");
                std::process::exit(1);
            }
        }
        if (i + 1) % 2000 == 0 {
            eprintln!("idlesoak: {} connected", i + 1);
        }
    }
    let rss_held = vm_rss_bytes();

    // Liveness while saturated: a few of the held connections do real
    // work and every other socket stays open.
    let compile = Request::Compile {
        grammar: "e : e \"+\" t | t ; t : \"x\" ;".to_string(),
        format: GrammarFormat::Native,
    };
    let mut live_errors = 0usize;
    for idx in [0, conns / 2, conns - 1] {
        match call_over(&mut held[idx], &compile) {
            Ok(line) if line.contains("\"ok\":true") => {}
            Ok(line) => {
                eprintln!("idlesoak: probe on connection {idx} answered an error: {line}");
                live_errors += 1;
            }
            Err(e) => {
                eprintln!("idlesoak: probe on connection {idx} failed: {e}");
                live_errors += 1;
            }
        }
    }
    let rss_worked = vm_rss_bytes();

    // Graceful drain: every held connection must see a clean EOF.
    daemon.stop();
    let mut eofs = 0usize;
    let mut byte = [0u8; 1];
    for stream in &mut held {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        match stream.read(&mut byte) {
            Ok(0) => eofs += 1,
            Ok(_) => {}
            Err(e) => eprintln!("idlesoak: drain read failed: {e}"),
        }
    }
    let summary = daemon.join();

    let per_conn = rss_held.saturating_sub(rss_start) / conns.max(1) as u64;
    println!("| connections | rss start | rss held | rss worked | bytes/conn | eofs | drained | aborted |");
    println!("|------------:|----------:|---------:|-----------:|-----------:|-----:|--------:|--------:|");
    println!(
        "| {conns} | {:.1} MiB | {:.1} MiB | {:.1} MiB | {per_conn} | {eofs} | {} | {} |",
        rss_start as f64 / (1 << 20) as f64,
        rss_held as f64 / (1 << 20) as f64,
        rss_worked as f64 / (1 << 20) as f64,
        summary.drained,
        summary.aborted,
    );

    let mut failed = false;
    if live_errors > 0 {
        eprintln!("idlesoak: {live_errors} liveness probes failed");
        failed = true;
    }
    if per_conn > 32 * 1024 {
        eprintln!("idlesoak: {per_conn} bytes/connection exceeds the 32 KiB flatness budget");
        failed = true;
    }
    if eofs != conns || summary.aborted != 0 || summary.drained != conns as u64 {
        eprintln!(
            "idlesoak: drain was not clean ({eofs}/{conns} EOFs, {} drained, {} aborted)",
            summary.drained, summary.aborted
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("idlesoak: ok");
}
