//! The on-disk artifact format: versioned header, checksummed
//! relocatable sections, little-endian throughout.
//!
//! ```text
//! [ header: 64 bytes                                     ]
//!   magic "LALRSTOR" · version u32 · header_len u32
//!   total_len u64 · fingerprint u64 · checksum u64
//!   section_count u32 · pad
//! [ section table: section_count × 24 bytes              ]
//!   kind u32 · pad u32 · offset u64 · len u64   (offsets from file start)
//! [ sections, 8-byte aligned                              ]
//! ```
//!
//! The checksum (FNV-1a 64) covers every byte of the file except the
//! checksum field itself — header fields, the section table, and all
//! payload sections — so a torn, truncated, or bit-flipped file is
//! always detected before any section is decoded.
//! Offsets are relative to the file start and sections are self-framed,
//! so a mapped file can be decoded in place without a deserialization
//! pass over the whole payload: fixed-width sections (the dense ACTION
//! and GOTO arrays) are sliced directly out of the mapping.

use lalr_core::{GrammarClass, MethodAdequacy, RelationStats};
use lalr_digraph::DigraphStats;
use lalr_tables::{
    Action, CompressedTable, ParseTable, ProductionInfo, Resolution, ResolutionReason,
};

/// File magic: 8 bytes at offset 0.
pub const MAGIC: [u8; 8] = *b"LALRSTOR";
/// Current format version. Readers reject anything else.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header size.
pub const HEADER_LEN: usize = 64;

const SECTION_ENTRY_LEN: usize = 24;

/// Section kinds (the `kind` field of a section-table entry).
mod kind {
    pub const KEY: u32 = 1;
    pub const META: u32 = 2;
    pub const ACTIONS: u32 = 3;
    pub const GOTOS: u32 = 4;
    pub const PRODUCTIONS: u32 = 5;
    pub const TERMINAL_NAMES: u32 = 6;
    pub const NONTERMINAL_NAMES: u32 = 7;
    pub const RESOLUTIONS: u32 = 8;
    pub const COMPRESSED: u32 = 9;
}

/// Everything the service needs to serve `compile`, `classify`,
/// `table`, and `parse` for a grammar without recompiling it — the
/// store's unit of exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactRecord {
    /// Content fingerprint (the cache key hash).
    pub fingerprint: u64,
    /// The full normalized cache key, for collision confirmation.
    pub key: String,
    /// LR(0) state count.
    pub states: u32,
    /// Grammar production count.
    pub productions: u32,
    /// Grammar terminal count.
    pub terminals: u32,
    /// Estimated resident bytes of the in-memory artifact.
    pub approx_bytes: u64,
    /// Per-method conflict counts and the resulting classification.
    pub adequacy: MethodAdequacy,
    /// Sizes of the `reads`/`includes`/`lookback` relations.
    pub relations: RelationStats,
    /// Digraph traversal statistics for `Read`.
    pub reads: DigraphStats,
    /// Digraph traversal statistics for `Follow` (`includes`).
    pub includes: DigraphStats,
    /// The dense ACTION/GOTO table.
    pub table: ParseTable,
    /// The row-compressed table.
    pub compressed: CompressedTable,
}

/// FNV-1a 64-bit — the file checksum. Stable across platforms and
/// builds, unlike hasher-randomized std hashes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64, so the checksum can skip its own header field
/// without copying the file.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Byte offset of the checksum field inside the header.
const CHECKSUM_OFFSET: usize = 32;

/// The file checksum: FNV-1a 64 over every byte of the file *except*
/// the checksum field itself — so header corruption (including a
/// flipped fingerprint) is caught, not just payload corruption.
fn file_checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(&bytes[..CHECKSUM_OFFSET]);
    h.update(&bytes[CHECKSUM_OFFSET + 8..]);
    h.finish()
}

// ---------------------------------------------------------------- encode

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
    fn align8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }
}

fn encode_action(a: Action) -> u64 {
    match a {
        Action::Error => 0,
        Action::Shift(s) => (1u64 << 32) | u64::from(s),
        Action::Reduce(p) => (2u64 << 32) | u64::from(p),
        Action::Accept => 3u64 << 32,
    }
}

fn decode_action(v: u64) -> Option<Action> {
    let arg = (v & 0xffff_ffff) as u32;
    match v >> 32 {
        0 if arg == 0 => Some(Action::Error),
        1 => Some(Action::Shift(arg)),
        2 => Some(Action::Reduce(arg)),
        3 if arg == 0 => Some(Action::Accept),
        _ => None,
    }
}

fn class_tag(c: GrammarClass) -> u64 {
    match c {
        GrammarClass::Lr0 => 0,
        GrammarClass::Slr1 => 1,
        GrammarClass::Lalr1 => 2,
        GrammarClass::Lr1 => 3,
        GrammarClass::NotLr1 => 4,
    }
}

fn class_of(tag: u64) -> Option<GrammarClass> {
    Some(match tag {
        0 => GrammarClass::Lr0,
        1 => GrammarClass::Slr1,
        2 => GrammarClass::Lalr1,
        3 => GrammarClass::Lr1,
        4 => GrammarClass::NotLr1,
        _ => return None,
    })
}

fn reason_tag(r: ResolutionReason) -> u64 {
    match r {
        ResolutionReason::PrecedenceReduce => 0,
        ResolutionReason::PrecedenceShift => 1,
        ResolutionReason::AssocReduce => 2,
        ResolutionReason::AssocShift => 3,
        ResolutionReason::NonAssocError => 4,
        ResolutionReason::DefaultShift => 5,
        ResolutionReason::DefaultEarlierProduction => 6,
        ResolutionReason::StrictError => 7,
    }
}

fn reason_of(tag: u64) -> Option<ResolutionReason> {
    Some(match tag {
        0 => ResolutionReason::PrecedenceReduce,
        1 => ResolutionReason::PrecedenceShift,
        2 => ResolutionReason::AssocReduce,
        3 => ResolutionReason::AssocShift,
        4 => ResolutionReason::NonAssocError,
        5 => ResolutionReason::DefaultShift,
        6 => ResolutionReason::DefaultEarlierProduction,
        7 => ResolutionReason::StrictError,
        _ => return None,
    })
}

/// Serializes a record into the on-disk byte format.
pub fn encode(record: &ArtifactRecord) -> Vec<u8> {
    // Build each section body first.
    let mut sections: Vec<(u32, Vec<u8>)> = Vec::new();

    sections.push((kind::KEY, record.key.as_bytes().to_vec()));

    let mut meta = Writer::new();
    let a = &record.adequacy;
    let r = &record.relations;
    for v in [
        u64::from(record.states),
        u64::from(record.productions),
        u64::from(record.terminals),
        u64::from(record.table.nonterminal_count()),
        record.approx_bytes,
        a.lr0_conflicts as u64,
        a.slr_conflicts as u64,
        a.nqlalr_conflicts as u64,
        a.lalr_conflicts as u64,
        a.lr1_conflicts as u64,
        u64::from(a.not_lr_k),
        class_tag(a.class),
        r.nt_transitions as u64,
        r.reads_edges as u64,
        r.includes_edges as u64,
        r.lookback_edges as u64,
        r.reads_nontrivial_sccs as u64,
        r.includes_nontrivial_sccs as u64,
        r.includes_max_scc as u64,
    ] {
        meta.u64(v);
    }
    for d in [&record.reads, &record.includes] {
        meta.u64(d.scc_count as u64);
        meta.u64(d.nontrivial_sccs as u64);
        meta.u64(d.max_scc_size as u64);
        meta.u64(d.cyclic_nodes as u64);
    }
    sections.push((kind::META, meta.buf));

    let mut actions = Writer::new();
    for &a in record.table.actions_raw() {
        actions.u64(encode_action(a));
    }
    sections.push((kind::ACTIONS, actions.buf));

    let mut gotos = Writer::new();
    for &g in record.table.gotos_raw() {
        gotos.u32(g);
    }
    sections.push((kind::GOTOS, gotos.buf));

    let mut prods = Writer::new();
    prods.u64(record.table.production_count() as u64);
    for p in record.table.production_infos() {
        prods.u32(p.lhs);
        prods.u32(p.rhs_len);
        prods.str(&p.display);
    }
    sections.push((kind::PRODUCTIONS, prods.buf));

    for (k, names) in [
        (kind::TERMINAL_NAMES, record.table.terminal_names()),
        (kind::NONTERMINAL_NAMES, record.table.nonterminal_names()),
    ] {
        let mut w = Writer::new();
        w.u64(names.len() as u64);
        for n in names {
            w.str(n);
        }
        sections.push((k, w.buf));
    }

    let mut res = Writer::new();
    res.u64(record.table.resolutions().len() as u64);
    for x in record.table.resolutions() {
        res.u32(x.state);
        res.u32(x.terminal);
        res.u64(encode_action(x.discarded));
        res.u64(encode_action(x.kept));
        res.u64(reason_tag(x.reason));
    }
    sections.push((kind::RESOLUTIONS, res.buf));

    let mut comp = Writer::new();
    comp.u64(record.compressed.state_count() as u64);
    comp.u64(u64::from(record.compressed.terminal_count()));
    for &d in record.compressed.defaults_raw() {
        comp.u64(encode_action(d));
    }
    for row in record.compressed.rows_raw() {
        comp.u64(row.len() as u64);
        for &(t, a) in row {
            comp.u32(t);
            comp.u32(0);
            comp.u64(encode_action(a));
        }
    }
    sections.push((kind::COMPRESSED, comp.buf));

    // Lay out: header | section table | aligned section bodies.
    let table_len = sections.len() * SECTION_ENTRY_LEN;
    let mut offset = HEADER_LEN + table_len;
    let mut entries = Writer::new();
    for (k, body) in &sections {
        offset = (offset + 7) & !7;
        entries.u32(*k);
        entries.u32(0);
        entries.u64(offset as u64);
        entries.u64(body.len() as u64);
        offset += body.len();
    }

    let mut payload = Writer::new();
    payload.bytes(&entries.buf);
    for (_, body) in &sections {
        payload.align8();
        payload.bytes(body);
    }
    // Alignment inside `payload` is relative to the payload start;
    // HEADER_LEN is a multiple of 8, so file offsets line up too.
    let total_len = (HEADER_LEN + payload.buf.len()) as u64;

    let mut out = Writer::new();
    out.bytes(&MAGIC);
    out.u32(FORMAT_VERSION);
    out.u32(HEADER_LEN as u32);
    out.u64(total_len);
    out.u64(record.fingerprint);
    out.u64(0); // checksum placeholder, patched below
    out.u32(sections.len() as u32);
    out.u32(0);
    while out.buf.len() < HEADER_LEN {
        out.buf.push(0);
    }
    out.bytes(&payload.buf);
    let checksum = file_checksum(&out.buf);
    out.buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    debug_assert_eq!(out.buf.len() as u64, total_len);
    out.buf
}

// ---------------------------------------------------------------- decode

/// Why a decode failed. Everything maps to "corrupt" for callers; the
/// detail string aids `store verify` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError(msg.into()))
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.buf.len() - self.pos < n {
            return err("section truncated");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, FormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, FormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, FormatError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| FormatError("string too long".into()))?;
        if len > self.buf.len() - self.pos {
            return err("string runs past section");
        }
        match std::str::from_utf8(self.take(len)?) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("string is not UTF-8"),
        }
    }
    fn action(&mut self) -> Result<Action, FormatError> {
        decode_action(self.u64()?).ok_or_else(|| FormatError("invalid action encoding".into()))
    }
    fn count(&mut self, width: usize) -> Result<usize, FormatError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| FormatError("count overflows".into()))?;
        // A count must be satisfiable by the remaining bytes — rejects
        // absurd values before any allocation.
        if n.checked_mul(width)
            .is_none_or(|total| total > self.buf.len() - self.pos)
        {
            return err("count runs past section");
        }
        Ok(n)
    }
}

/// Parsed header + section directory, produced by [`inspect`].
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// The fingerprint the file claims.
    pub fingerprint: u64,
    /// Total file length according to the header.
    pub total_len: u64,
    /// Payload checksum stored in the header.
    pub checksum: u64,
    /// `(kind, offset, len)` per section.
    pub sections: Vec<(u32, u64, u64)>,
}

/// Validates magic, version, length, and checksum, returning the
/// section directory. This is the integrity gate: every load and every
/// `store verify` goes through it before touching section bytes.
pub fn inspect(bytes: &[u8]) -> Result<FileInfo, FormatError> {
    if bytes.len() < HEADER_LEN {
        return err(format!("file too short ({} bytes)", bytes.len()));
    }
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return err("bad magic");
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return err(format!("unsupported format version {version}"));
    }
    let header_len = r.u32()?;
    if header_len as usize != HEADER_LEN {
        return err(format!("unexpected header length {header_len}"));
    }
    let total_len = r.u64()?;
    if total_len != bytes.len() as u64 {
        return err(format!(
            "length mismatch: header says {total_len}, file has {}",
            bytes.len()
        ));
    }
    let fingerprint = r.u64()?;
    let checksum = r.u64()?;
    let section_count = r.u32()?;
    let actual = file_checksum(bytes);
    if actual != checksum {
        return err(format!(
            "checksum mismatch: header {checksum:#018x}, file {actual:#018x}"
        ));
    }
    let mut r = Reader::new(bytes);
    r.pos = HEADER_LEN;
    let mut sections = Vec::new();
    for _ in 0..section_count {
        let k = r.u32()?;
        let _pad = r.u32()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        if offset.checked_add(len).is_none_or(|end| end > total_len) {
            return err("section out of bounds");
        }
        sections.push((k, offset, len));
    }
    Ok(FileInfo {
        fingerprint,
        total_len,
        checksum,
        sections,
    })
}

fn section<'a>(bytes: &'a [u8], info: &FileInfo, k: u32) -> Result<&'a [u8], FormatError> {
    for &(kk, offset, len) in &info.sections {
        if kk == k {
            return Ok(&bytes[offset as usize..(offset + len) as usize]);
        }
    }
    err(format!("missing section kind {k}"))
}

/// Decodes a full record from checksum-verified bytes.
pub fn decode(bytes: &[u8]) -> Result<ArtifactRecord, FormatError> {
    let info = inspect(bytes)?;

    let key = match std::str::from_utf8(section(bytes, &info, kind::KEY)?) {
        Ok(s) => s.to_string(),
        Err(_) => return err("key is not UTF-8"),
    };

    let mut m = Reader::new(section(bytes, &info, kind::META)?);
    let states = m.u64()? as u32;
    let productions = m.u64()? as u32;
    let terminals = m.u64()? as u32;
    let nonterminals = m.u64()? as u32;
    let approx_bytes = m.u64()?;
    let adequacy = MethodAdequacy {
        lr0_conflicts: m.u64()? as usize,
        slr_conflicts: m.u64()? as usize,
        nqlalr_conflicts: m.u64()? as usize,
        lalr_conflicts: m.u64()? as usize,
        lr1_conflicts: m.u64()? as usize,
        not_lr_k: m.u64()? != 0,
        class: class_of(m.u64()?).ok_or_else(|| FormatError("invalid grammar class".into()))?,
    };
    let relations = RelationStats {
        nt_transitions: m.u64()? as usize,
        reads_edges: m.u64()? as usize,
        includes_edges: m.u64()? as usize,
        lookback_edges: m.u64()? as usize,
        reads_nontrivial_sccs: m.u64()? as usize,
        includes_nontrivial_sccs: m.u64()? as usize,
        includes_max_scc: m.u64()? as usize,
    };
    let digraph = |m: &mut Reader| -> Result<DigraphStats, FormatError> {
        Ok(DigraphStats {
            scc_count: m.u64()? as usize,
            nontrivial_sccs: m.u64()? as usize,
            max_scc_size: m.u64()? as usize,
            cyclic_nodes: m.u64()? as usize,
        })
    };
    let reads = digraph(&mut m)?;
    let includes = digraph(&mut m)?;

    // The fixed-width arrays decode straight off the mapped bytes.
    let actions_bytes = section(bytes, &info, kind::ACTIONS)?;
    if actions_bytes.len() != states as usize * terminals as usize * 8 {
        return err("ACTION section size disagrees with dimensions");
    }
    let mut actions = Vec::with_capacity(states as usize * terminals as usize);
    let mut r = Reader::new(actions_bytes);
    for _ in 0..states as usize * terminals as usize {
        actions.push(r.action()?);
    }

    let gotos_bytes = section(bytes, &info, kind::GOTOS)?;
    if gotos_bytes.len() != states as usize * nonterminals as usize * 4 {
        return err("GOTO section size disagrees with dimensions");
    }
    let mut gotos = Vec::with_capacity(states as usize * nonterminals as usize);
    let mut r = Reader::new(gotos_bytes);
    for _ in 0..states as usize * nonterminals as usize {
        gotos.push(r.u32()?);
    }

    let mut r = Reader::new(section(bytes, &info, kind::PRODUCTIONS)?);
    let n = r.count(16)?;
    let mut prod_infos = Vec::with_capacity(n);
    for _ in 0..n {
        let lhs = r.u32()?;
        let rhs_len = r.u32()?;
        let display = r.str()?;
        prod_infos.push(ProductionInfo {
            lhs,
            rhs_len,
            display,
        });
    }
    if prod_infos.len() != productions as usize {
        return err("production count disagrees with META");
    }

    let names = |k: u32, expect: u32| -> Result<Vec<String>, FormatError> {
        let mut r = Reader::new(section(bytes, &info, k)?);
        let n = r.count(8)?;
        if n != expect as usize {
            return err("name count disagrees with META");
        }
        (0..n).map(|_| r.str()).collect()
    };
    let terminal_names = names(kind::TERMINAL_NAMES, terminals)?;
    let nonterminal_names = names(kind::NONTERMINAL_NAMES, nonterminals)?;

    let mut r = Reader::new(section(bytes, &info, kind::RESOLUTIONS)?);
    let n = r.count(32)?;
    let mut resolutions = Vec::with_capacity(n);
    for _ in 0..n {
        let state = r.u32()?;
        let terminal = r.u32()?;
        let discarded = r.action()?;
        let kept = r.action()?;
        let reason =
            reason_of(r.u64()?).ok_or_else(|| FormatError("invalid resolution reason".into()))?;
        resolutions.push(Resolution {
            state,
            terminal,
            discarded,
            kept,
            reason,
        });
    }

    let mut r = Reader::new(section(bytes, &info, kind::COMPRESSED)?);
    let comp_states = r.count(8)?;
    if comp_states != states as usize {
        return err("compressed state count disagrees with META");
    }
    let comp_terminals = r.u64()? as u32;
    let mut defaults = Vec::with_capacity(comp_states);
    for _ in 0..comp_states {
        defaults.push(r.action()?);
    }
    let mut rows = Vec::with_capacity(comp_states);
    for _ in 0..comp_states {
        let entries = r.count(16)?;
        let mut row = Vec::with_capacity(entries);
        let mut last: Option<u32> = None;
        for _ in 0..entries {
            let t = r.u32()?;
            let _pad = r.u32()?;
            let a = r.action()?;
            if last.is_some_and(|l| l >= t) {
                return err("compressed row not sorted");
            }
            last = Some(t);
            row.push((t, a));
        }
        rows.push(row);
    }

    let table = ParseTable::from_raw_parts(
        actions,
        gotos,
        states,
        terminals,
        nonterminals,
        prod_infos,
        terminal_names,
        nonterminal_names,
        resolutions,
    );
    let compressed = CompressedTable::from_raw_parts(rows, defaults, comp_terminals);

    Ok(ArtifactRecord {
        fingerprint: info.fingerprint,
        key,
        states,
        productions,
        terminals,
        approx_bytes,
        adequacy,
        relations,
        reads,
        includes,
        table,
        compressed,
    })
}

/// Reads just the KEY section (after full integrity validation) — what
/// collision confirmation needs without decoding the tables.
pub fn decode_key(bytes: &[u8]) -> Result<String, FormatError> {
    let info = inspect(bytes)?;
    match std::str::from_utf8(section(bytes, &info, kind::KEY)?) {
        Ok(s) => Ok(s.to_string()),
        Err(_) => err("key is not UTF-8"),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use lalr_automata::Lr0Automaton;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;
    use lalr_tables::{build_table, TableOptions};

    pub(crate) fn sample_record(src: &str, key: &str, fingerprint: u64) -> ArtifactRecord {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let analysis = LalrAnalysis::compute(&g, &lr0);
        let adequacy = lalr_core::classify(&g);
        let relations = lalr_core::Relations::build(&g, &lr0).stats();
        let table = build_table(&g, &lr0, analysis.lookaheads(), TableOptions::default());
        let compressed = CompressedTable::from_dense(&table);
        ArtifactRecord {
            fingerprint,
            key: key.to_string(),
            states: table.state_count(),
            productions: table.production_count() as u32,
            terminals: table.terminal_count(),
            approx_bytes: 4242,
            adequacy,
            relations,
            reads: DigraphStats {
                scc_count: 3,
                nontrivial_sccs: 0,
                max_scc_size: 1,
                cyclic_nodes: 0,
            },
            includes: DigraphStats {
                scc_count: 3,
                nontrivial_sccs: 1,
                max_scc_size: 2,
                cyclic_nodes: 2,
            },
            table,
            compressed,
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let rec = sample_record(
            "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"x\" ;",
            "%key native\ne : ...",
            0xDEAD_BEEF_0123_4567,
        );
        let bytes = encode(&rec);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn every_truncation_is_detected() {
        let rec = sample_record("s : \"a\" s | \"b\" ;", "k", 7);
        let bytes = encode(&rec);
        // Chop at a spread of lengths including mid-header and mid-section.
        for cut in [
            0,
            1,
            7,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        let rec = sample_record("s : \"a\" ;", "key-text", 99);
        let bytes = encode(&rec);
        // Flipping any payload byte must be caught by the checksum;
        // flipping header bytes must be caught by magic/length/checksum
        // comparisons. (The checksum field itself mismatches the
        // payload when flipped.)
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x40;
            match decode(&copy) {
                Err(_) => {}
                Ok(back) => {
                    // A flip inside header padding doesn't corrupt data.
                    assert_eq!(back, rec, "undetected corruption at byte {i}");
                }
            }
        }
    }

    #[test]
    fn version_bump_is_rejected() {
        let rec = sample_record("s : \"a\" ;", "k", 1);
        let mut bytes = encode(&rec);
        bytes[8] = 2; // version field
        let e = decode(&bytes).unwrap_err();
        assert!(e.0.contains("version"), "{e}");
    }

    #[test]
    fn compressed_lookup_survives_the_round_trip() {
        let rec = sample_record("e : e \"+\" t | t ; t : \"x\" ;", "k", 5);
        let back = decode(&encode(&rec)).unwrap();
        for s in 0..rec.table.state_count() {
            for t in 0..rec.table.terminal_count() {
                assert_eq!(rec.table.action(s, t), back.table.action(s, t));
                assert_eq!(rec.compressed.action(s, t), back.compressed.action(s, t));
            }
        }
    }
}
