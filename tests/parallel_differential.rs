//! Differential harness: the parallel pipeline must be **bit-identical**
//! to the sequential one — same `DR`/`Read`/`Follow` matrices, same
//! relation layouts, same `LA` sets, same traversal statistics — for every
//! corpus grammar at 1, 2, 4 and 8 threads.
//!
//! This is the safety net that lets the level-scheduled Digraph and the
//! sharded relation build claim equivalence rather than mere plausibility:
//! any scheduling bug that leaks a partial row, misorders a shard merge,
//! or drops an SCC member shows up here as a concrete matrix diff.

use lalr_automata::{Lr0Automaton, NtTransId};
use lalr_core::{LalrAnalysis, Parallelism, Relations};
use lalr_grammar::Grammar;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Lookback CSR flattened to a canonical, comparable form.
fn lookback_fingerprint(rel: &Relations) -> Vec<((usize, usize), Vec<usize>)> {
    let mut out: Vec<_> = rel
        .lookback_entries()
        .map(|(rid, ts)| {
            let (state, prod) = rel.reduction_index().point(rid);
            (
                (state.index(), prod.index()),
                ts.iter().map(|t| t.index()).collect::<Vec<_>>(),
            )
        })
        .collect();
    out.sort();
    out
}

fn assert_pipeline_identical(name: &str, grammar: &Grammar) {
    let lr0 = Lr0Automaton::build(grammar);
    let seq_rel = Relations::build(grammar, &lr0);
    let seq = LalrAnalysis::compute(grammar, &lr0);
    let nt_count = lr0.nt_transitions().len();

    for threads in THREAD_COUNTS {
        let par_cfg = Parallelism::new(threads);
        let par_rel = Relations::build_parallel(grammar, &lr0, &par_cfg);

        assert_eq!(
            seq_rel.dr(),
            par_rel.dr(),
            "{name}: DR matrix differs at {threads} threads"
        );
        assert_eq!(
            seq_rel.reads(),
            par_rel.reads(),
            "{name}: reads graph differs at {threads} threads"
        );
        assert_eq!(
            seq_rel.includes(),
            par_rel.includes(),
            "{name}: includes graph differs at {threads} threads"
        );
        assert_eq!(
            lookback_fingerprint(&seq_rel),
            lookback_fingerprint(&par_rel),
            "{name}: lookback differs at {threads} threads"
        );

        let par = LalrAnalysis::compute_with(grammar, &lr0, &par_cfg);
        for i in 0..nt_count {
            let t = NtTransId::new(i);
            assert_eq!(
                seq.read_set(t),
                par.read_set(t),
                "{name}: Read row {i} differs at {threads} threads"
            );
            assert_eq!(
                seq.follow_set(t),
                par.follow_set(t),
                "{name}: Follow row {i} differs at {threads} threads"
            );
        }
        assert_eq!(
            seq.lookaheads(),
            par.lookaheads(),
            "{name}: LA sets differ at {threads} threads"
        );
        assert_eq!(
            seq.reads_traversal(),
            par.reads_traversal(),
            "{name}: reads traversal stats differ at {threads} threads"
        );
        assert_eq!(
            seq.includes_traversal(),
            par.includes_traversal(),
            "{name}: includes traversal stats differ at {threads} threads"
        );
        assert_eq!(
            seq.relation_stats(),
            par.relation_stats(),
            "{name}: relation stats differ at {threads} threads"
        );
        assert_eq!(
            seq.grammar_not_lr_k(),
            par.grammar_not_lr_k(),
            "{name}: LR(k) verdict differs at {threads} threads"
        );
    }
}

#[test]
fn whole_corpus_is_bit_identical_across_thread_counts() {
    for entry in lalr_corpus::all_entries() {
        assert_pipeline_identical(entry.name, &entry.grammar());
    }
}

#[test]
fn synthetic_families_are_bit_identical() {
    let cases: Vec<(&str, Grammar)> = vec![
        ("expr_ladder_8", lalr_corpus::synthetic::expr_ladder(8)),
        ("chain_40", lalr_corpus::synthetic::chain(40)),
        (
            "nullable_blocks_10",
            lalr_corpus::synthetic::nullable_blocks(10),
        ),
        ("nested_lists_10", lalr_corpus::synthetic::nested_lists(10)),
        ("includes_scc_8", lalr_corpus::synthetic::includes_scc(8)),
        ("wide_forest_16", lalr_corpus::synthetic::wide_forest(16)),
    ];
    for (name, g) in &cases {
        assert_pipeline_identical(name, g);
    }
}

#[test]
fn random_grammars_are_bit_identical() {
    for seed in 0..8u64 {
        let g = lalr_corpus::synthetic::random(seed, Default::default());
        assert_pipeline_identical(&format!("random_{seed}"), &g);
    }
}

#[test]
fn classify_agrees_across_thread_counts() {
    for entry in lalr_corpus::classics::all() {
        let g = entry.grammar();
        let seq = lalr_core::classify(&g);
        for threads in THREAD_COUNTS {
            let par = lalr_core::classify_with(&g, &Parallelism::new(threads));
            assert_eq!(
                seq, par,
                "{}: classify differs at {threads} threads",
                entry.name
            );
        }
    }
}
