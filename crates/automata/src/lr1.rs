//! The canonical LR(1) collection (Knuth's construction).
//!
//! This is the expensive baseline of the paper's evaluation: it computes
//! exact LR(1) look-aheads by splitting states, at the cost of a much larger
//! automaton. `lalr-core` uses it two ways: merged by core it yields the
//! reference LALR(1) look-ahead sets (see [`crate::merge_lr1`]), and its
//! conflict-freedom defines the LR(1) grammar class.

use rustc_hash::FxHashMap;

use lalr_bitset::BitSet;
use lalr_grammar::analysis::{nullable, FirstSets};
use lalr_grammar::{Grammar, ProdId, Symbol, Terminal};

use crate::item::Item;
use crate::lr0::StateId;

/// An LR(1) state: kernel items with their look-ahead sets, sorted by item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lr1State {
    kernel: Vec<(Item, BitSet)>,
}

impl Lr1State {
    /// The kernel items with look-ahead sets.
    pub fn kernel(&self) -> &[(Item, BitSet)] {
        &self.kernel
    }

    /// The LR(0) core of this state (kernel items without look-aheads).
    pub fn core(&self) -> crate::item::ItemSet {
        self.kernel.iter().map(|&(i, _)| i).collect()
    }
}

/// The canonical LR(1) automaton.
///
/// # Examples
///
/// ```
/// use lalr_automata::{Lr0Automaton, Lr1Automaton};
/// use lalr_grammar::parse_grammar;
///
/// // The canonical machine splits states the LR(0) machine shares.
/// let g = parse_grammar(
///     "s : \"u\" a \"d\" | \"v\" a \"e\" ; a : \"c\" ;",
/// )?;
/// let lr1 = Lr1Automaton::build(&g);
/// let lr0 = Lr0Automaton::build(&g);
/// assert!(lr1.state_count() > lr0.state_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lr1Automaton {
    states: Vec<Lr1State>,
    transitions: Vec<Vec<(Symbol, StateId)>>,
    /// Reductions per state: `(production, look-ahead set)`.
    reductions: Vec<Vec<(ProdId, BitSet)>>,
}

impl Lr1Automaton {
    /// Builds the canonical LR(1) collection.
    pub fn build(grammar: &Grammar) -> Lr1Automaton {
        let nullable = nullable(grammar);
        let first = FirstSets::compute(grammar, &nullable);
        let n_terms = grammar.terminal_count();

        let mut eof_only = BitSet::new(n_terms);
        eof_only.insert(Terminal::EOF.index());
        let start = Lr1State {
            kernel: vec![(Item::start_of(ProdId::START), eof_only)],
        };

        let mut states: Vec<Lr1State> = Vec::new();
        let mut transitions: Vec<Vec<(Symbol, StateId)>> = Vec::new();
        let mut reductions: Vec<Vec<(ProdId, BitSet)>> = Vec::new();
        let mut interned: FxHashMap<Vec<(Item, BitSet)>, StateId> = FxHashMap::default();
        let mut work: Vec<StateId> = Vec::new();

        let mut intern = |state: Lr1State,
                          states: &mut Vec<Lr1State>,
                          transitions: &mut Vec<Vec<(Symbol, StateId)>>,
                          reductions: &mut Vec<Vec<(ProdId, BitSet)>>,
                          work: &mut Vec<StateId>|
         -> StateId {
            if let Some(&id) = interned.get(&state.kernel) {
                return id;
            }
            let id = StateId::new(states.len());
            interned.insert(state.kernel.clone(), id);
            states.push(state);
            transitions.push(Vec::new());
            reductions.push(Vec::new());
            work.push(id);
            id
        };

        intern(
            start,
            &mut states,
            &mut transitions,
            &mut reductions,
            &mut work,
        );

        while let Some(sid) = work.pop() {
            let closed = closure1(grammar, &first, &states[sid.index()].kernel, n_terms);

            // Partition: final items become reductions, others group by the
            // next symbol into GOTO kernels.
            let mut red: Vec<(ProdId, BitSet)> = Vec::new();
            let mut order: Vec<Symbol> = Vec::new();
            let mut buckets: FxHashMap<Symbol, Vec<(Item, BitSet)>> = FxHashMap::default();
            for (item, la) in closed {
                match item.next_symbol(grammar) {
                    None => red.push((item.production(), la)),
                    Some(sym) => {
                        let b = buckets.entry(sym).or_insert_with(|| {
                            order.push(sym);
                            Vec::new()
                        });
                        b.push((item.advanced(), la));
                    }
                }
            }
            red.sort_unstable_by_key(|&(p, _)| p);
            reductions[sid.index()] = red;

            let mut ts: Vec<(Symbol, StateId)> = Vec::with_capacity(order.len());
            for sym in order {
                let mut kernel = buckets.remove(&sym).expect("bucket exists");
                kernel.sort_unstable_by_key(|&(i, _)| i);
                let target = intern(
                    Lr1State { kernel },
                    &mut states,
                    &mut transitions,
                    &mut reductions,
                    &mut work,
                );
                ts.push((sym, target));
            }
            ts.sort_unstable_by_key(|&(sym, _)| sym);
            transitions[sid.index()] = ts;
        }

        Lr1Automaton {
            states,
            transitions,
            reductions,
        }
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Iterates over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// A state by id.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn state(&self, state: StateId) -> &Lr1State {
        &self.states[state.index()]
    }

    /// `GOTO(state, symbol)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transition(&self, state: StateId, sym: Symbol) -> Option<StateId> {
        let ts = &self.transitions[state.index()];
        ts.binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| ts[i].1)
    }

    /// All outgoing transitions of `state`, sorted by symbol.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transitions(&self, state: StateId) -> &[(Symbol, StateId)] {
        &self.transitions[state.index()]
    }

    /// The reductions available in `state`: `(production, LA set)`, sorted
    /// by production.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn reductions(&self, state: StateId) -> &[(ProdId, BitSet)] {
        &self.reductions[state.index()]
    }
}

/// LR(1) closure of a kernel: returns the closed item → look-ahead map as
/// a vec sorted by item.
///
/// For each `[A → α · B γ, L]`, every production of `B` enters with
/// look-ahead `FIRST(γ)`, plus `L` when `γ` is nullable. Public because the
/// yacc-style propagation baseline in `lalr-core` needs the same closure to
/// recover look-aheads of non-kernel ε-reductions.
pub fn closure1(
    grammar: &Grammar,
    first: &FirstSets,
    kernel: &[(Item, BitSet)],
    n_terms: usize,
) -> Vec<(Item, BitSet)> {
    let mut las: FxHashMap<Item, BitSet> = FxHashMap::default();
    let mut work: Vec<Item> = Vec::new();
    for (item, la) in kernel {
        las.insert(*item, la.clone());
        work.push(*item);
    }
    while let Some(item) = work.pop() {
        let Some(Symbol::NonTerminal(b)) = item.next_symbol(grammar) else {
            continue;
        };
        let gamma = item.tail_after_next(grammar);
        // FIRST is computed over the real alphabet; widen to n_terms so the
        // propagation baseline's extra dummy column fits.
        let (first_set, gamma_nullable) = first.first_of(gamma);
        let mut look = BitSet::new(n_terms);
        look.extend(first_set.iter());
        if gamma_nullable {
            look.union_with(&las[&item]);
        }
        for &pid in grammar.productions_of(b) {
            let fresh = Item::start_of(pid);
            match las.get_mut(&fresh) {
                Some(existing) => {
                    if existing.union_with(&look) {
                        work.push(fresh);
                    }
                }
                None => {
                    // `look` is already n_terms wide; cloning it skips
                    // the zero-row union pass.
                    las.insert(fresh, look.clone());
                    work.push(fresh);
                }
            }
        }
    }
    let mut out: Vec<(Item, BitSet)> = las.into_iter().collect();
    out.sort_unstable_by_key(|&(i, _)| i);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    fn la_names(g: &Grammar, set: &BitSet) -> Vec<String> {
        set.iter()
            .map(|i| g.terminal_name(Terminal::new(i)).to_string())
            .collect()
    }

    #[test]
    fn accept_reduction_has_eof_lookahead() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let lr1 = Lr1Automaton::build(&g);
        let acc = lr1
            .transition(StateId::START, Symbol::NonTerminal(g.start()))
            .unwrap();
        let red = lr1.reductions(acc);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].0, ProdId::START);
        assert_eq!(la_names(&g, &red[0].1), vec!["$"]);
    }

    #[test]
    fn knuth_splitting_example() {
        // After "a c" the reduction a → c has LA {d}; after "b c" it has
        // LA {e}. Canonical LR(1) keeps those two states apart.
        let g = parse_grammar("s : \"u\" a \"d\" | \"v\" a \"e\" ; a : \"c\" ;").unwrap();
        let lr1 = Lr1Automaton::build(&g);
        let u = g.terminal_by_name("u").unwrap();
        let v = g.terminal_by_name("v").unwrap();
        let c = g.terminal_by_name("c").unwrap();
        let s_a = lr1.transition(StateId::START, u.into()).unwrap();
        let s_b = lr1.transition(StateId::START, v.into()).unwrap();
        let s_ac = lr1.transition(s_a, c.into()).unwrap();
        let s_bc = lr1.transition(s_b, c.into()).unwrap();
        assert_ne!(s_ac, s_bc);
        assert_eq!(la_names(&g, &lr1.reductions(s_ac)[0].1), vec!["d"]);
        assert_eq!(la_names(&g, &lr1.reductions(s_bc)[0].1), vec!["e"]);
    }

    #[test]
    fn lookaheads_flow_through_nullable_tails() {
        // In s → a tail, tail nullable: LA(a → x) ⊇ {$} ∪ FIRST(tail).
        let g = parse_grammar("s : a tail ; tail : \"t\" | ; a : \"x\" ;").unwrap();
        let lr1 = Lr1Automaton::build(&g);
        let x = g.terminal_by_name("x").unwrap();
        let after_x = lr1.transition(StateId::START, x.into()).unwrap();
        let red = lr1.reductions(after_x);
        assert_eq!(red.len(), 1);
        assert_eq!(la_names(&g, &red[0].1), vec!["$", "t"]);
    }

    #[test]
    fn closure_loops_converge_on_recursive_grammars() {
        let g = parse_grammar("e : e \"+\" e | \"x\" ;").unwrap();
        let lr1 = Lr1Automaton::build(&g);
        assert!(lr1.state_count() > 0);
        // Every reduction LA in the whole machine is non-empty.
        for s in lr1.states() {
            for (_, la) in lr1.reductions(s) {
                assert!(!la.is_empty());
            }
        }
    }
}
