//! Differential soak test: eight client threads hammer a pooled,
//! cached service with a mixed workload over the grammar corpus, and
//! every response line must be byte-identical to the one produced by a
//! direct single-threaded engine answering the same request.
//!
//! The only legitimate divergence is the compile summary's `cached`
//! flag (whether a request hit the cache depends on scheduling), so the
//! comparison normalizes exactly that field — responses are key-sorted
//! JSON, which makes the textual normalization reliable.

use std::sync::Arc;

use lalr_core::Parallelism;
use lalr_service::protocol::response_to_line;
use lalr_service::{GrammarFormat, ParseTarget, Request, Service, ServiceConfig};

/// A mixed workload: compile, classify, table, and batched parse
/// requests over every corpus grammar, repeated so most requests are
/// warm.
fn workload() -> Vec<Request> {
    let mut requests = Vec::new();
    for round in 0..3 {
        for entry in lalr_corpus::all_entries() {
            let grammar = entry.source.to_string();
            requests.push(Request::Compile {
                grammar: grammar.clone(),
                format: GrammarFormat::Native,
            });
            requests.push(Request::Classify {
                grammar: grammar.clone(),
                format: GrammarFormat::Native,
            });
            requests.push(Request::Table {
                grammar: grammar.clone(),
                format: GrammarFormat::Native,
                compressed: true,
            });
            let parsed = entry.grammar();
            let documents: Vec<String> =
                lalr_corpus::sentences::generate_many(&parsed, round, 3, 20)
                    .iter()
                    .map(|s| {
                        s.iter()
                            .map(|&t| parsed.terminal_name(t))
                            .collect::<Vec<_>>()
                            .join(" ")
                    })
                    .collect();
            if !documents.is_empty() {
                requests.push(Request::Parse {
                    target: ParseTarget::Text {
                        grammar: grammar.clone(),
                        format: GrammarFormat::Native,
                    },
                    documents,
                    recover: false,
                    sync: Vec::new(),
                });
            }
        }
    }
    requests
}

/// Drops the scheduling-dependent `cached` flag from compile lines.
fn normalize(line: &str) -> String {
    line.replace("\"cached\":true", "\"cached\":false")
}

#[test]
fn eight_thread_soak_matches_single_threaded_reference() {
    const THREADS: usize = 8;
    let requests = workload();
    assert!(requests.len() >= 100, "workload is non-trivial");

    // Reference: one worker, requests strictly in order.
    let reference = Service::new(ServiceConfig {
        workers: Parallelism::sequential(),
        ..ServiceConfig::default()
    });
    let expected: Vec<String> = requests
        .iter()
        .map(|r| normalize(&response_to_line(&reference.call(r.clone(), None))))
        .collect();

    // Subject: an 8-worker pool fed by 8 client threads, each walking a
    // strided slice of the same request list.
    let service = Arc::new(Service::new(ServiceConfig {
        workers: Parallelism::new(THREADS),
        ..ServiceConfig::default()
    }));
    let requests = Arc::new(requests);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let requests = Arc::clone(&requests);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in (t..requests.len()).step_by(THREADS) {
                    let response = service.call(requests[i].clone(), None);
                    got.push((i, normalize(&response_to_line(&response))));
                }
                got
            })
        })
        .collect();

    let mut actual = vec![String::new(); requests.len()];
    for h in handles {
        for (i, line) in h.join().unwrap() {
            actual[i] = line;
        }
    }

    for (i, (want, got)) in expected.iter().zip(&actual).enumerate() {
        assert_eq!(
            got,
            want,
            "request {i} diverged under concurrency: {:?}",
            requests[i].op()
        );
    }

    // The pool really did coalesce/cache: far fewer pipeline runs than
    // requests, and zero errors.
    let stats = service.stats();
    assert_eq!(stats.errors, 0);
    let cache = stats.cache.expect("cache enabled");
    assert!(
        cache.compiles < requests.len() as u64 / 2,
        "caching must absorb repeated grammars: {cache:?}"
    );

    // The metrics exposition describes the same counters as the stats
    // snapshot, even after a concurrent soak.
    let text = match service.call(lalr_service::Request::Metrics, None) {
        lalr_service::Response::Metrics(text) => text,
        other => panic!("{other:?}"),
    };
    let sample = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.split(' ').next() == Some(name))
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse()
            .unwrap()
    };
    assert_eq!(sample("lalr_requests_total"), stats.requests);
    assert_eq!(sample("lalr_errors_total"), 0);
    assert_eq!(
        sample("lalr_cache_events_total{kind=\"compiles\"}"),
        cache.compiles
    );
    assert_eq!(
        sample("lalr_requests_by_op_total{op=\"compile\"}"),
        stats.by_op[0]
    );
    assert_eq!(
        sample("lalr_phase_calls_total{phase=\"lr0.build\"}"),
        cache.compiles,
        "each pipeline run observes exactly one LR(0) build"
    );
}
