//! E7 — set-representation ablation: the paper's word-parallel bit vectors
//! vs a hash-set store for the same Digraph traversal.

use std::collections::HashSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lalr_automata::Lr0Automaton;
use lalr_core::Relations;
use lalr_digraph::{digraph, digraph_on, UnionSets};

/// Hash-set-per-node store implementing the same interface.
struct HashStore {
    sets: Vec<HashSet<usize>>,
}

impl UnionSets for HashStore {
    fn union(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let (a, b) = if dst < src {
            let (lo, hi) = self.sets.split_at_mut(src);
            (&mut lo[dst], &hi[0])
        } else {
            let (lo, hi) = self.sets.split_at_mut(dst);
            (&mut hi[0], &lo[src])
        };
        a.extend(b.iter().copied());
    }

    fn assign(&mut self, dst: usize, src: usize) {
        if dst == src {
            return;
        }
        let copied = self.sets[src].clone();
        self.sets[dst] = copied;
    }
}

fn bench_set_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_repr_follow");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for name in ["pascal", "c_subset"] {
        let grammar = lalr_corpus::by_name(name).expect("exists").grammar();
        let lr0 = Lr0Automaton::build(&grammar);
        let rel = Relations::build(&grammar, &lr0);
        let mut read = rel.dr().clone();
        digraph(rel.reads(), &mut read);

        group.bench_with_input(
            BenchmarkId::new("bitset", name),
            &(&rel, &read),
            |b, (rel, read)| {
                b.iter(|| {
                    let mut sets = (*read).clone();
                    digraph(rel.includes(), &mut sets);
                    sets
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hashset", name),
            &(&rel, &read),
            |b, (rel, read)| {
                b.iter(|| {
                    let mut store = HashStore {
                        sets: (0..read.rows())
                            .map(|r| read.iter_row(r).collect())
                            .collect(),
                    };
                    digraph_on(rel.includes(), &mut store);
                    store.sets.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_set_repr);
criterion_main!(benches);
