//! End-to-end tests of the `lalrgen` binary itself (argument handling,
//! exit codes, stdout/stderr split).

use std::process::Command;

fn lalrgen(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lalrgen"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero() {
    let out = lalrgen(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn unknown_command_exits_two() {
    let out = lalrgen(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn classify_corpus_grammar_on_stdout() {
    let out = lalrgen(&["classify", "ada_subset"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("LALR(1)"), "{stdout}");
    assert!(out.stderr.is_empty());
}

#[test]
fn parse_rejection_exits_nonzero() {
    let out = lalrgen(&["parse", "expr", "1 +", "--number", "NUM"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("rejected"));
}

#[test]
fn codegen_emits_compilable_looking_source() {
    let out = lalrgen(&["codegen", "json", "json_parser"]);
    assert!(out.status.success());
    let src = String::from_utf8_lossy(&out.stdout);
    assert!(src.contains("@generated"));
    assert!(src.contains("json_parser"));
    assert!(src.contains("pub fn parse"));
}

#[test]
fn grammar_file_workflow() {
    let dir = std::env::temp_dir().join("lalrgen_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ab.g");
    std::fs::write(&path, "s : \"a\" s \"b\" | ;").unwrap();
    let p = path.to_str().unwrap();

    let out = lalrgen(&["analyze", p]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lalrgen(&["parse", p, "a a b b"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("accepted"));

    let out = lalrgen(&["parse", p, "a b b"]);
    assert_eq!(out.status.code(), Some(1));
}
