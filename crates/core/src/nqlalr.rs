//! NQLALR(1) — the unsound "not quite LALR" shortcut.
//!
//! The paper devotes a section to warning against this tempting
//! simplification: instead of keeping one `Follow` set per *nonterminal
//! transition* `(p, A)`, keep one per *target state* `r = GOTO(p, A)` —
//! merging every `A`-transition that happens to land in the same state.
//! The computation becomes simpler (no `includes` relation over
//! transitions, just state-level propagation), but the merged sets are
//! **supersets** of the true LALR(1) look-aheads: some LALR(1) grammars are
//! spuriously rejected. [`NqlalrAnalysis`] reproduces the shortcut exactly
//! so that experiment **E3** can exhibit the failure.

use lalr_automata::{Lr0Automaton, ReductionId, ReductionIndex, StateId};
use lalr_bitset::BitMatrix;
use lalr_digraph::{digraph, Graph};
use lalr_grammar::analysis::nullable;
use lalr_grammar::{Grammar, Symbol, Terminal};

use crate::lookahead::LookaheadSets;

/// The NQLALR(1) computation and its per-state follow sets.
#[derive(Debug, Clone)]
pub struct NqlalrAnalysis {
    /// `NQFollow` per automaton state (meaningful only for GOTO targets).
    follow: BitMatrix,
    la: LookaheadSets,
}

impl NqlalrAnalysis {
    /// Runs the state-merged computation.
    ///
    /// # Examples
    ///
    /// ```
    /// use lalr_automata::Lr0Automaton;
    /// use lalr_core::NqlalrAnalysis;
    /// use lalr_grammar::parse_grammar;
    ///
    /// let g = parse_grammar("s : \"a\" s | \"b\" ;")?;
    /// let lr0 = Lr0Automaton::build(&g);
    /// let nq = NqlalrAnalysis::compute(&g, &lr0);
    /// assert!(nq.lookaheads().reduction_count() > 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compute(grammar: &Grammar, lr0: &Lr0Automaton) -> NqlalrAnalysis {
        let nullable = nullable(grammar);
        let n_states = lr0.state_count();
        let accept = lr0.accept_state(grammar);

        // NQDR(r) = shiftable terminals of r (all transitions into r merged),
        // plus $ at the accept state.
        let mut follow = BitMatrix::new(n_states, grammar.terminal_count());
        let mut graph = Graph::new(n_states);
        let mut is_goto_target = vec![false; n_states];
        for t in lr0.nt_transitions() {
            let r = t.to.index();
            if is_goto_target[r] {
                continue; // already seeded — this merging is the defect
            }
            is_goto_target[r] = true;
            for term in lr0.shift_symbols(t.to) {
                follow.set(r, term.index());
            }
            if t.to == accept {
                follow.set(r, Terminal::EOF.index());
            }
        }

        // State-level reads: r --C--> r' with C nullable adds NQFollow(r) ⊇
        // NQFollow(r').
        for t in lr0.nt_transitions() {
            for &(sym, to) in lr0.transitions(t.to) {
                if let Symbol::NonTerminal(c) = sym {
                    if nullable.contains(c) {
                        graph.add_edge_dedup(t.to.index(), to.index());
                    }
                }
            }
        }

        // State-level includes: for each transition (p', B) and production
        // B → β A γ with γ nullable, GOTO(state-after-β, A) inherits
        // NQFollow(GOTO(p', B)).
        for t in lr0.nt_transitions() {
            let target_b = t.to.index();
            for &pid in grammar.productions_of(t.nt) {
                let rhs = grammar.production(pid).rhs();
                let mut state = t.from;
                for (k, &sym) in rhs.iter().enumerate() {
                    if let Symbol::NonTerminal(a) = sym {
                        let gamma_nullable = rhs[k + 1..]
                            .iter()
                            .all(|&s| matches!(s, Symbol::NonTerminal(n) if nullable.contains(n)));
                        if gamma_nullable {
                            let r_a = lr0
                                .transition(state, Symbol::NonTerminal(a))
                                .expect("closure guarantees the transition");
                            graph.add_edge_dedup(r_a.index(), target_b);
                        }
                    }
                    state = lr0.transition(state, sym).expect("viable prefix");
                }
            }
        }

        digraph(&graph, &mut follow);

        // State-level lookback: LA(q, A→ω) = ⋃ NQFollow(GOTO(p, A)) over
        // p --ω--> q. Reduction points are dense ids, so the per-point
        // source lists are one flat pair list instead of a keyed map (and
        // the iteration below is deterministic, in dense-id order).
        let reductions = ReductionIndex::from_lr0(lr0);
        let mut la = LookaheadSets::with_index(reductions.clone(), grammar.terminal_count());
        let mut lookback: Vec<(ReductionId, StateId)> = Vec::new();
        for t in lr0.nt_transitions() {
            for &pid in grammar.productions_of(t.nt) {
                let rhs = grammar.production(pid).rhs();
                let q = lr0.walk(t.from, rhs).expect("viable prefix");
                let rid = reductions.id(q, pid).expect("walked bodies reduce");
                lookback.push((rid, t.to));
            }
        }
        for &(rid, r) in &lookback {
            la.touch_id(rid);
            la.union_words(rid, follow.row_words(r.index()));
        }
        // Same accept special-case as the exact algorithm.
        la.insert(accept, lalr_grammar::ProdId::START, Terminal::EOF);

        NqlalrAnalysis { follow, la }
    }

    /// The per-state follow sets.
    pub fn state_follow(&self, state: StateId) -> lalr_bitset::BitSet {
        self.follow.row_to_bitset(state.index())
    }

    /// The NQLALR look-ahead sets.
    pub fn lookaheads(&self) -> &LookaheadSets {
        &self.la
    }

    /// Consumes the analysis, returning the look-ahead sets.
    pub fn into_lookaheads(self) -> LookaheadSets {
        self.la
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::find_conflicts;
    use crate::engine::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    /// The witness grammar: LALR(1)-adequate, but NQLALR's state merging
    /// smears `y` into the look-ahead of `a → g` after `z g`, colliding
    /// with `d → g`.
    pub(crate) const NQLALR_WITNESS: &str = r#"
        %start s
        s : "x" c "y" | "x" "g" "h" | "z" c "w" | "z" d "y" ;
        c : a r ;
        r : "t" | ;
        a : "g" ;
        d : "g" ;
    "#;

    #[test]
    fn nqlalr_is_superset_of_lalr() {
        for src in [
            "s : \"a\" s | \"b\" ;",
            "e : e \"+\" t | t ; t : \"x\" ;",
            NQLALR_WITNESS,
        ] {
            let g = parse_grammar(src).unwrap();
            let lr0 = Lr0Automaton::build(&g);
            let nq = NqlalrAnalysis::compute(&g, &lr0).into_lookaheads();
            let dp = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
            for ((state, prod), la) in dp.iter() {
                let nq_la = nq.la(state, prod).expect("NQLALR covers reductions");
                assert!(la.is_subset(nq_la), "at state {}", state.index());
            }
        }
    }

    #[test]
    fn witness_grammar_shows_unsoundness() {
        let g = parse_grammar(NQLALR_WITNESS).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let dp = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let nq = NqlalrAnalysis::compute(&g, &lr0).into_lookaheads();
        assert!(
            find_conflicts(&g, &lr0, &dp).is_empty(),
            "the witness is LALR(1)"
        );
        let nq_conflicts = find_conflicts(&g, &lr0, &nq);
        assert!(
            !nq_conflicts.is_empty(),
            "NQLALR must report a spurious conflict"
        );
    }

    #[test]
    fn nqlalr_agrees_on_grammars_without_goto_merging() {
        // When every nonterminal transition has a unique target state the
        // shortcut is harmless.
        let src = "e : e \"+\" t | t ; t : \"x\" ;";
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let nq = NqlalrAnalysis::compute(&g, &lr0).into_lookaheads();
        let dp = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        assert_eq!(nq, dp);
    }
}
