//! Default-reduction row compression.

use crate::action::Action;
use crate::table::ParseTable;

/// A row-compressed view of a [`ParseTable`].
///
/// Per state, explicit `(terminal, action)` pairs are kept only where the
/// action differs from the state's *default* action — chosen as its most
/// frequent reduce action (the classic yacc/bison compression). Lookup is
/// a binary search plus a fallback.
///
/// Error detection note: like yacc, a state whose default is a reduce will
/// perform that reduce on erroneous look-aheads and detect the error a few
/// (non-consuming) steps later — language accepted is unchanged.
///
/// # Examples
///
/// ```
/// use lalr_automata::Lr0Automaton;
/// use lalr_core::LalrAnalysis;
/// use lalr_grammar::parse_grammar;
/// use lalr_tables::{build_table, CompressedTable, TableOptions};
///
/// let g = parse_grammar("e : e \"+\" t | t ; t : \"x\" ;")?;
/// let lr0 = Lr0Automaton::build(&g);
/// let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
/// let dense = build_table(&g, &lr0, &la, TableOptions::default());
/// let compressed = CompressedTable::from_dense(&dense);
/// assert!(compressed.explicit_entries() < dense.stats().action_entries);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CompressedTable {
    /// Per state: sorted explicit entries.
    rows: Vec<Vec<(u32, Action)>>,
    /// Per state: the default action for terminals without an entry.
    defaults: Vec<Action>,
    terminals: u32,
}

impl CompressedTable {
    /// Compresses a dense table.
    pub fn from_dense(table: &ParseTable) -> CompressedTable {
        let terminals = table.terminal_count();
        let mut rows = Vec::with_capacity(table.state_count() as usize);
        let mut defaults = Vec::with_capacity(table.state_count() as usize);
        for state in 0..table.state_count() {
            // Most frequent reduce action becomes the default.
            let mut counts: Vec<(Action, usize)> = Vec::new();
            for t in 0..terminals {
                let a = table.action(state, t);
                if a.is_reduce() {
                    match counts.iter_mut().find(|(x, _)| *x == a) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((a, 1)),
                    }
                }
            }
            let default = counts
                .into_iter()
                .max_by_key(|&(_, c)| c)
                .map(|(a, _)| a)
                .unwrap_or(Action::Error);
            let row: Vec<(u32, Action)> = (0..terminals)
                .filter_map(|t| {
                    let a = table.action(state, t);
                    (a != default && a != Action::Error).then_some((t, a))
                })
                .collect();
            rows.push(row);
            defaults.push(default);
        }
        CompressedTable {
            rows,
            defaults,
            terminals,
        }
    }

    /// The action for `(state, terminal)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `terminal` is out of range.
    pub fn action(&self, state: u32, terminal: u32) -> Action {
        assert!(terminal < self.terminals);
        let row = &self.rows[state as usize];
        match row.binary_search_by_key(&terminal, |&(t, _)| t) {
            Ok(i) => row[i].1,
            Err(_) => self.defaults[state as usize],
        }
    }

    /// Total number of explicit entries kept.
    pub fn explicit_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.rows.len()
    }

    /// The default action of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn default_action(&self, state: u32) -> Action {
        self.defaults[state as usize]
    }

    /// Per-state sorted explicit entries, for serializers.
    pub fn rows_raw(&self) -> &[Vec<(u32, Action)>] {
        &self.rows
    }

    /// Per-state default actions, for serializers.
    pub fn defaults_raw(&self) -> &[Action] {
        &self.defaults
    }

    /// Terminal count (ACTION columns).
    pub fn terminal_count(&self) -> u32 {
        self.terminals
    }

    /// Reassembles a compressed table from its raw parts — the inverse
    /// of [`CompressedTable::rows_raw`]/[`CompressedTable::defaults_raw`],
    /// used by the on-disk artifact store.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `defaults` disagree in length or a row is
    /// unsorted.
    pub fn from_raw_parts(
        rows: Vec<Vec<(u32, Action)>>,
        defaults: Vec<Action>,
        terminals: u32,
    ) -> CompressedTable {
        assert_eq!(rows.len(), defaults.len());
        for row in &rows {
            assert!(
                row.windows(2).all(|w| w[0].0 < w[1].0),
                "explicit entries must be sorted by terminal"
            );
        }
        CompressedTable {
            rows,
            defaults,
            terminals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_table, TableOptions};
    use lalr_automata::Lr0Automaton;
    use lalr_core::LalrAnalysis;
    use lalr_grammar::parse_grammar;

    fn dense(src: &str) -> ParseTable {
        let g = parse_grammar(src).unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let la = LalrAnalysis::compute(&g, &lr0).into_lookaheads();
        build_table(&g, &lr0, &la, TableOptions::default())
    }

    /// The compressed table must agree with the dense one everywhere except
    /// that error entries may become the default reduce (yacc semantics).
    #[test]
    fn lookup_agrees_modulo_late_error_detection() {
        for src in [
            "s : \"a\" s | \"b\" ;",
            "e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;",
            "s : a \"x\" | ; a : ;",
        ] {
            let d = dense(src);
            let c = CompressedTable::from_dense(&d);
            for s in 0..d.state_count() {
                for t in 0..d.terminal_count() {
                    let da = d.action(s, t);
                    let ca = c.action(s, t);
                    if da.is_error() {
                        assert!(
                            ca.is_error() || ca.is_reduce(),
                            "errors may only become default reduces"
                        );
                    } else {
                        assert_eq!(da, ca, "state {s} terminal {t} in {src}");
                    }
                }
            }
        }
    }

    #[test]
    fn compression_shrinks_expression_table() {
        let d = dense("e : e \"+\" t | t ; t : t \"*\" f | f ; f : \"(\" e \")\" | \"id\" ;");
        let c = CompressedTable::from_dense(&d);
        assert!(c.explicit_entries() < d.stats().action_entries);
        assert_eq!(c.state_count(), d.state_count() as usize);
    }

    #[test]
    fn states_without_reductions_default_to_error() {
        let d = dense("s : \"a\" \"b\" ;");
        let c = CompressedTable::from_dense(&d);
        // State 0 only shifts.
        assert_eq!(c.default_action(0), Action::Error);
    }
}
