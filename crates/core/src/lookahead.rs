//! The common output type of every look-ahead method.

use lalr_automata::{Lr0Automaton, MergedLalr, ReductionId, ReductionIndex, StateId};
use lalr_bitset::{BitMatrix, BitSet, BitSetRef};
use lalr_grammar::{ProdId, Terminal};

/// Look-ahead sets for every reduction point `(state, production)`.
///
/// All five methods in this suite (DeRemer–Pennello, SLR(1), NQLALR(1),
/// yacc-style propagation, canonical-LR(1)-merge) produce this type, so
/// conflict detection, classification and cross-validation are method
/// agnostic.
///
/// Storage is dense: a [`ReductionIndex`] enumerates the automaton's
/// reduction points once, and the sets live as rows of one [`BitMatrix`]
/// indexed by [`ReductionId`] — no per-entry allocation, no hashing on
/// lookup. A *present* bit per row distinguishes "recorded as empty"
/// (e.g. a reduction the method proved unreachable on any terminal) from
/// "never recorded", preserving the sparse semantics of the old
/// hash-keyed representation: [`LookaheadSets::la`] answers `None` for
/// reduction points the producing method never touched.
#[derive(Debug, Clone)]
pub struct LookaheadSets {
    index: ReductionIndex,
    /// One row per reduction point, `terminals` columns.
    rows: BitMatrix,
    /// Which rows have been recorded (touched / unioned / inserted).
    present: BitSet,
    terminals: usize,
}

impl LookaheadSets {
    /// Creates an empty collection over the reduction points of `index`
    /// and an alphabet of `terminals`.
    pub fn with_index(index: ReductionIndex, terminals: usize) -> LookaheadSets {
        let n = index.len();
        LookaheadSets {
            index,
            rows: BitMatrix::new(n, terminals),
            present: BitSet::new(n),
            terminals,
        }
    }

    /// Creates an empty collection covering every reduction point of an
    /// automaton.
    pub fn for_automaton(lr0: &Lr0Automaton, terminals: usize) -> LookaheadSets {
        LookaheadSets::with_index(ReductionIndex::from_lr0(lr0), terminals)
    }

    /// Creates an empty collection over an explicit list of reduction
    /// points, for callers without an automaton at hand.
    pub fn from_points(
        points: impl IntoIterator<Item = (StateId, ProdId)>,
        terminals: usize,
    ) -> LookaheadSets {
        LookaheadSets::with_index(ReductionIndex::from_points(points), terminals)
    }

    /// Size of the terminal alphabet (universe of each set).
    pub fn terminal_count(&self) -> usize {
        self.terminals
    }

    /// The dense enumeration of reduction points backing this collection.
    pub fn reduction_index(&self) -> &ReductionIndex {
        &self.index
    }

    /// The dense id of `(state, prod)` within this collection's universe
    /// of reduction points (whether or not it has been recorded).
    #[inline]
    pub fn id_of(&self, state: StateId, prod: ProdId) -> Option<ReductionId> {
        self.index.id(state, prod)
    }

    /// The look-ahead set for reducing `prod` in `state`, if recorded.
    pub fn la(&self, state: StateId, prod: ProdId) -> Option<BitSetRef<'_>> {
        let id = self.index.id(state, prod)?;
        if self.present.contains(id.index()) {
            Some(self.rows.row(id.index()))
        } else {
            None
        }
    }

    fn require(&self, state: StateId, prod: ProdId) -> ReductionId {
        self.index.id(state, prod).unwrap_or_else(|| {
            panic!(
                "({}, {}) is not a reduction point of this collection",
                state.index(),
                prod.index()
            )
        })
    }

    /// Unions `set` into the entry for `(state, prod)`, recording it if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `set`'s universe differs from the alphabet size, or if
    /// `(state, prod)` is not a reduction point of this collection.
    pub fn union_into(&mut self, state: StateId, prod: ProdId, set: &BitSet) {
        assert_eq!(set.len(), self.terminals, "alphabet mismatch");
        let id = self.require(state, prod);
        self.present.insert(id.index());
        self.rows.union_row_with_words(id.index(), set.as_words());
    }

    /// Allocation-free row union by dense id — the hot path of the
    /// Digraph pipeline's LA phase (`words` is typically a `Follow`
    /// matrix row).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (and, in debug builds, if `words`
    /// is not exactly an alphabet-wide row).
    #[inline]
    pub fn union_words(&mut self, id: ReductionId, words: &[usize]) {
        self.present.insert(id.index());
        self.rows.union_row_with_words(id.index(), words);
    }

    /// Inserts a single terminal into the entry for `(state, prod)`.
    ///
    /// # Panics
    ///
    /// Panics if `(state, prod)` is not a reduction point of this
    /// collection.
    pub fn insert(&mut self, state: StateId, prod: ProdId, t: Terminal) {
        let id = self.require(state, prod);
        self.present.insert(id.index());
        self.rows.set(id.index(), t.index());
    }

    /// Ensures an (empty) entry is recorded for `(state, prod)`.
    ///
    /// # Panics
    ///
    /// Panics if `(state, prod)` is not a reduction point of this
    /// collection.
    pub fn touch(&mut self, state: StateId, prod: ProdId) {
        let id = self.require(state, prod);
        self.present.insert(id.index());
    }

    /// [`LookaheadSets::touch`] by dense id.
    #[inline]
    pub fn touch_id(&mut self, id: ReductionId) {
        self.present.insert(id.index());
    }

    /// Number of reduction points recorded.
    pub fn reduction_count(&self) -> usize {
        self.present.count()
    }

    /// Iterates over `((state, production), la)` entries, in dense-id
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = ((StateId, ProdId), BitSetRef<'_>)> {
        self.present
            .iter()
            .map(|i| (self.index.point(ReductionId::new(i)), self.rows.row(i)))
    }

    /// Sum of all set cardinalities (a size measure used by the evaluation).
    pub fn total_bits(&self) -> usize {
        self.present.iter().map(|i| self.rows.row_count(i)).sum()
    }

    /// `true` when every entry of `self` equals the corresponding entry of
    /// `other` and vice versa (order-independent equality is already given
    /// by `==`; this exists for readable assertion messages).
    pub fn agrees_with(&self, other: &LookaheadSets) -> bool {
        self == other
    }
}

/// Equality compares the *recorded entries*, independent of how each
/// collection's reduction universe was enumerated — a set built over a
/// full automaton index equals one built from explicit points as long as
/// the recorded `(state, prod) → la` mappings match.
impl PartialEq for LookaheadSets {
    fn eq(&self, other: &LookaheadSets) -> bool {
        self.terminals == other.terminals
            && self.reduction_count() == other.reduction_count()
            && self
                .iter()
                .all(|((state, prod), set)| other.la(state, prod) == Some(set))
    }
}

impl Eq for LookaheadSets {}

impl From<&MergedLalr> for LookaheadSets {
    fn from(merged: &MergedLalr) -> LookaheadSets {
        let mut terminals = 0;
        for (_, set) in merged.iter() {
            terminals = terminals.max(set.len());
        }
        let mut out = LookaheadSets::from_points(merged.iter().map(|(&key, _)| key), terminals);
        for (&(state, prod), set) in merged.iter() {
            out.union_into(state, prod, set);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_lookup() {
        let key = (StateId::new(3), ProdId::new(2));
        let mut las = LookaheadSets::from_points([key], 8);
        las.insert(key.0, key.1, Terminal::new(1));
        las.union_into(key.0, key.1, &BitSet::from_indices(8, [4, 5]));
        let set = las.la(key.0, key.1).unwrap();
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 4, 5]);
        assert_eq!(las.reduction_count(), 1);
        assert_eq!(las.total_bits(), 3);
        assert!(las.la(StateId::new(0), ProdId::new(0)).is_none());
    }

    #[test]
    fn touch_creates_empty_entry() {
        let key = (StateId::new(0), ProdId::new(1));
        let mut las = LookaheadSets::from_points([key], 4);
        assert!(
            las.la(key.0, key.1).is_none(),
            "untouched points are absent"
        );
        las.touch(key.0, key.1);
        assert!(las.la(key.0, key.1).unwrap().is_empty());
        assert_eq!(las.reduction_count(), 1);
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn union_checks_universe() {
        let key = (StateId::new(0), ProdId::new(0));
        let mut las = LookaheadSets::from_points([key], 4);
        las.union_into(key.0, key.1, &BitSet::new(5));
    }

    #[test]
    #[should_panic(expected = "not a reduction point")]
    fn union_checks_reduction_point() {
        let mut las = LookaheadSets::from_points([(StateId::new(0), ProdId::new(0))], 4);
        las.union_into(StateId::new(9), ProdId::new(9), &BitSet::new(4));
    }

    #[test]
    fn equality_is_order_and_layout_independent() {
        let k0 = (StateId::new(0), ProdId::new(0));
        let k1 = (StateId::new(1), ProdId::new(1));
        let mut a = LookaheadSets::from_points([k0, k1], 4);
        // `b` enumerates an extra, never-recorded point, so its dense ids
        // differ from `a`'s — equality must not care.
        let mut b = LookaheadSets::from_points([k0, (StateId::new(0), ProdId::new(3)), k1], 4);
        a.insert(k0.0, k0.1, Terminal::new(1));
        a.insert(k1.0, k1.1, Terminal::new(2));
        b.insert(k1.0, k1.1, Terminal::new(2));
        b.insert(k0.0, k0.1, Terminal::new(1));
        assert!(a.agrees_with(&b));
        assert!(b.agrees_with(&a));
        b.touch(StateId::new(0), ProdId::new(3));
        assert!(
            !a.agrees_with(&b),
            "an extra recorded entry breaks equality"
        );
    }

    #[test]
    fn union_words_matches_union_into() {
        let key = (StateId::new(2), ProdId::new(1));
        let mut by_set = LookaheadSets::from_points([key], 70);
        let mut by_words = LookaheadSets::from_points([key], 70);
        let set = BitSet::from_indices(70, [0, 65]);
        by_set.union_into(key.0, key.1, &set);
        let id = by_words.id_of(key.0, key.1).unwrap();
        by_words.union_words(id, set.as_words());
        assert_eq!(by_set, by_words);
    }
}
