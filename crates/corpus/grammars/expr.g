// The dragon-book expression grammar (SLR(1)).
%start expr
expr   : expr "+" term | term ;
term   : term "*" factor | factor ;
factor : "(" expr ")" | NUM ;
