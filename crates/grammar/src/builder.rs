//! Programmatic grammar construction.

use std::collections::HashMap;

use crate::error::GrammarError;
use crate::grammar::Grammar;
use crate::parse::{Assoc, Precedence};
use crate::production::{ProdId, Production};
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// Reserved name of the end-of-input terminal.
pub(crate) const EOF_NAME: &str = "$";
/// Reserved name of the augmented start nonterminal.
pub(crate) const START_NAME: &str = "<start>";

/// Incremental construction of a [`Grammar`].
///
/// Symbols may be declared explicitly ([`GrammarBuilder::terminal`]) or
/// inferred: any name appearing on the left of a rule becomes a
/// nonterminal, every other name a terminal.
///
/// # Examples
///
/// ```
/// use lalr_grammar::GrammarBuilder;
///
/// let mut b = GrammarBuilder::new();
/// b.rule("e", ["e", "+", "t"]);
/// b.rule("e", ["t"]);
/// b.rule("t", ["x"]);
/// b.start("e");
/// let g = b.build()?;
/// assert_eq!(g.production_count(), 4);
/// assert!(g.terminal_by_name("+").is_some());
/// # Ok::<(), lalr_grammar::GrammarError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GrammarBuilder {
    rules: Vec<RawRule>,
    declared_terminals: Vec<String>,
    precedence: HashMap<String, Precedence>,
    start: Option<String>,
    next_prec_level: u16,
}

#[derive(Debug, Clone)]
struct RawRule {
    lhs: String,
    rhs: Vec<String>,
    prec: Option<String>,
}

impl GrammarBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GrammarBuilder {
            next_prec_level: 1,
            ..GrammarBuilder::default()
        }
    }

    /// Declares a terminal explicitly (needed only for terminals that never
    /// appear in a rule, or to fix declaration order).
    pub fn terminal(&mut self, name: impl Into<String>) -> &mut Self {
        self.declared_terminals.push(name.into());
        self
    }

    /// Declares a group of terminals at one new precedence level.
    pub fn precedence(
        &mut self,
        assoc: Assoc,
        names: impl IntoIterator<Item = impl Into<String>>,
    ) -> &mut Self {
        let level = self.next_prec_level;
        self.next_prec_level += 1;
        for name in names {
            let name = name.into();
            self.precedence
                .insert(name.clone(), Precedence { level, assoc });
            self.declared_terminals.push(name);
        }
        self
    }

    /// Adds the production `lhs → rhs`.
    pub fn rule(
        &mut self,
        lhs: impl Into<String>,
        rhs: impl IntoIterator<Item = impl Into<String>>,
    ) -> &mut Self {
        self.rules.push(RawRule {
            lhs: lhs.into(),
            rhs: rhs.into_iter().map(Into::into).collect(),
            prec: None,
        });
        self
    }

    /// Adds the production `lhs → rhs` with a `%prec` terminal override.
    pub fn rule_with_prec(
        &mut self,
        lhs: impl Into<String>,
        rhs: impl IntoIterator<Item = impl Into<String>>,
        prec: impl Into<String>,
    ) -> &mut Self {
        self.rules.push(RawRule {
            lhs: lhs.into(),
            rhs: rhs.into_iter().map(Into::into).collect(),
            prec: Some(prec.into()),
        });
        self
    }

    /// Sets the start symbol. Defaults to the LHS of the first rule.
    pub fn start(&mut self, name: impl Into<String>) -> &mut Self {
        self.start = Some(name.into());
        self
    }

    /// Finishes construction, augmenting the grammar with `$` and
    /// `<start> → S`.
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError`] when the grammar is empty, the start symbol
    /// is missing or not a nonterminal, a reserved name is declared, a name
    /// is declared as both terminal and nonterminal, or a `%prec` symbol is
    /// not a terminal.
    pub fn build(&self) -> Result<Grammar, GrammarError> {
        if self.rules.is_empty() {
            return Err(GrammarError::Empty);
        }

        // Interning: nonterminal 0 = <start>, terminal 0 = $.
        let mut nonterm_names = vec![START_NAME.to_string()];
        let mut nonterm_ids: HashMap<&str, NonTerminal> = HashMap::new();
        for rule in &self.rules {
            if rule.lhs == EOF_NAME || rule.lhs == START_NAME {
                return Err(GrammarError::ReservedSymbol(rule.lhs.clone()));
            }
            if !nonterm_ids.contains_key(rule.lhs.as_str()) {
                nonterm_ids.insert(&rule.lhs, NonTerminal::new(nonterm_names.len()));
                nonterm_names.push(rule.lhs.clone());
            }
        }

        let mut term_names = vec![EOF_NAME.to_string()];
        let mut term_ids: HashMap<&str, Terminal> = HashMap::new();
        for name in &self.declared_terminals {
            if name == EOF_NAME || name == START_NAME {
                return Err(GrammarError::ReservedSymbol(name.clone()));
            }
            if nonterm_ids.contains_key(name.as_str()) {
                return Err(GrammarError::DuplicateSymbol(name.clone()));
            }
            if !term_ids.contains_key(name.as_str()) {
                term_ids.insert(name, Terminal::new(term_names.len()));
                term_names.push(name.clone());
            }
        }
        for rule in &self.rules {
            for sym in &rule.rhs {
                if sym == EOF_NAME || sym == START_NAME {
                    return Err(GrammarError::ReservedSymbol(sym.clone()));
                }
                if !nonterm_ids.contains_key(sym.as_str()) && !term_ids.contains_key(sym.as_str()) {
                    term_ids.insert(sym, Terminal::new(term_names.len()));
                    term_names.push(sym.clone());
                }
            }
        }

        // Start symbol.
        let start_name = match &self.start {
            Some(s) => s.as_str(),
            None => self.rules[0].lhs.as_str(),
        };
        let start = *nonterm_ids
            .get(start_name)
            .ok_or_else(|| GrammarError::StartNotNonterminal(start_name.to_string()))?;

        // Productions: id 0 is the augmentation.
        let mut productions = vec![Production {
            lhs: NonTerminal::AUGMENTED_START,
            rhs: vec![Symbol::NonTerminal(start)].into_boxed_slice(),
            prec: None,
        }];
        for rule in &self.rules {
            let lhs = nonterm_ids[rule.lhs.as_str()];
            let rhs: Vec<Symbol> = rule
                .rhs
                .iter()
                .map(|name| match nonterm_ids.get(name.as_str()) {
                    Some(&n) => Symbol::NonTerminal(n),
                    None => Symbol::Terminal(term_ids[name.as_str()]),
                })
                .collect();
            let prec = match &rule.prec {
                None => None,
                Some(p) => Some(
                    *term_ids
                        .get(p.as_str())
                        .ok_or_else(|| GrammarError::PrecNotTerminal(p.clone()))?,
                ),
            };
            productions.push(Production {
                lhs,
                rhs: rhs.into_boxed_slice(),
                prec,
            });
        }

        let mut by_lhs = vec![Vec::new(); nonterm_names.len()];
        for (i, p) in productions.iter().enumerate() {
            by_lhs[p.lhs.index()].push(ProdId::new(i));
        }

        let mut precedence = vec![None; term_names.len()];
        for (name, &prec) in &self.precedence {
            if let Some(&t) = term_ids.get(name.as_str()) {
                precedence[t.index()] = Some(prec);
            }
        }

        Ok(Grammar {
            term_names,
            nonterm_names,
            productions,
            by_lhs,
            start,
            precedence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_terminal_vs_nonterminal() {
        let mut b = GrammarBuilder::new();
        b.rule("s", ["a", "s"]);
        b.rule("s", Vec::<String>::new());
        let g = b.build().unwrap();
        assert!(g.terminal_by_name("a").is_some());
        assert!(g.nonterminal_by_name("s").is_some());
        assert_eq!(g.start(), g.nonterminal_by_name("s").unwrap());
    }

    #[test]
    fn empty_grammar_rejected() {
        assert_eq!(GrammarBuilder::new().build(), Err(GrammarError::Empty));
    }

    #[test]
    fn reserved_names_rejected() {
        let mut b = GrammarBuilder::new();
        b.rule("$", ["x"]);
        assert!(matches!(b.build(), Err(GrammarError::ReservedSymbol(_))));

        let mut b = GrammarBuilder::new();
        b.rule("s", ["<start>"]);
        assert!(matches!(b.build(), Err(GrammarError::ReservedSymbol(_))));
    }

    #[test]
    fn declared_terminal_clashing_with_rule_lhs_rejected() {
        let mut b = GrammarBuilder::new();
        b.terminal("s");
        b.rule("s", ["x"]);
        assert!(matches!(b.build(), Err(GrammarError::DuplicateSymbol(_))));
    }

    #[test]
    fn start_must_have_productions() {
        let mut b = GrammarBuilder::new();
        b.rule("s", ["x"]);
        b.start("x");
        assert!(matches!(
            b.build(),
            Err(GrammarError::StartNotNonterminal(_))
        ));
    }

    #[test]
    fn explicit_start_respected() {
        let mut b = GrammarBuilder::new();
        b.rule("a", ["b"]);
        b.rule("b", ["x"]);
        b.start("b");
        let g = b.build().unwrap();
        assert_eq!(g.start(), g.nonterminal_by_name("b").unwrap());
    }

    #[test]
    fn precedence_levels_increase() {
        let mut b = GrammarBuilder::new();
        b.precedence(Assoc::Left, ["+"]);
        b.precedence(Assoc::Left, ["*"]);
        b.rule("e", ["e", "+", "e"]);
        b.rule("e", ["e", "*", "e"]);
        b.rule("e", ["x"]);
        let g = b.build().unwrap();
        let plus = g.terminal_by_name("+").unwrap();
        let times = g.terminal_by_name("*").unwrap();
        let (pp, pt) = (
            g.precedence_of(plus).unwrap(),
            g.precedence_of(times).unwrap(),
        );
        assert!(pt.level > pp.level);
        assert_eq!(pp.assoc, Assoc::Left);
    }

    #[test]
    fn prec_override_must_be_terminal() {
        let mut b = GrammarBuilder::new();
        b.rule("e", ["x"]);
        b.rule_with_prec("e", ["e", "e"], "e");
        assert!(matches!(b.build(), Err(GrammarError::PrecNotTerminal(_))));
    }

    #[test]
    fn duplicate_rules_allowed_and_kept() {
        let mut b = GrammarBuilder::new();
        b.rule("s", ["x"]);
        b.rule("s", ["x"]);
        let g = b.build().unwrap();
        assert_eq!(g.production_count(), 3);
    }
}
