//! `FIRST` sets.

use lalr_bitset::BitMatrix;
use lalr_bitset::BitSet;
use lalr_digraph::{digraph, Graph};

use crate::analysis::nullable::NullableSet;
use crate::grammar::Grammar;
use crate::symbol::{NonTerminal, Symbol, Terminal};

/// `FIRST(A)` for every nonterminal: the terminals that can begin a string
/// derived from `A`.
///
/// Computed with the same Digraph machinery the look-ahead computation uses:
/// the *initial* set of `A` holds the terminals directly beginning some
/// alternative of `A` (after skipping nullable prefixes), and the relation
/// `A → B` holds when `B` appears in such a first position — `FIRST` is then
/// exactly the reachability union the Digraph algorithm computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstSets {
    sets: BitMatrix,
    nullable: NullableSet,
}

impl FirstSets {
    /// Computes `FIRST` for all nonterminals of `grammar`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lalr_grammar::{analysis::{nullable, FirstSets}, parse_grammar};
    ///
    /// let g = parse_grammar("e : t \"+\" e | t ; t : \"x\" ;")?;
    /// let first = FirstSets::compute(&g, &nullable(&g));
    /// let e = g.nonterminal_by_name("e").unwrap();
    /// let x = g.terminal_by_name("x").unwrap();
    /// assert!(first.contains(e, x));
    /// # Ok::<(), lalr_grammar::GrammarError>(())
    /// ```
    pub fn compute(grammar: &Grammar, nullable: &NullableSet) -> FirstSets {
        let n = grammar.nonterminal_count();
        let mut sets = BitMatrix::new(n, grammar.terminal_count());
        let mut graph = Graph::new(n);
        for p in grammar.productions() {
            let lhs = p.lhs().index();
            for &sym in p.rhs() {
                match sym {
                    Symbol::Terminal(t) => {
                        sets.set(lhs, t.index());
                        break;
                    }
                    Symbol::NonTerminal(b) => {
                        graph.add_edge_dedup(lhs, b.index());
                        if !nullable.contains(b) {
                            break;
                        }
                    }
                }
            }
        }
        digraph(&graph, &mut sets);
        FirstSets {
            sets,
            nullable: nullable.clone(),
        }
    }

    /// `true` when `t ∈ FIRST(nt)`.
    #[inline]
    pub fn contains(&self, nt: NonTerminal, t: Terminal) -> bool {
        self.sets.get(nt.index(), t.index())
    }

    /// `FIRST(nt)` as an owned bit set over terminal indices.
    pub fn of(&self, nt: NonTerminal) -> BitSet {
        self.sets.row_to_bitset(nt.index())
    }

    /// Iterates over `FIRST(nt)`.
    pub fn iter(&self, nt: NonTerminal) -> impl Iterator<Item = Terminal> + '_ {
        self.sets.iter_row(nt.index()).map(Terminal::new)
    }

    /// The nullable set this was computed with.
    pub fn nullable(&self) -> &NullableSet {
        &self.nullable
    }

    /// `FIRST` of a symbol string, with a flag reporting whether the entire
    /// string is nullable (i.e. whether `FOLLOW`-style continuation applies).
    pub fn first_of(&self, symbols: &[Symbol]) -> (BitSet, bool) {
        first_of_sequence(self, symbols)
    }
}

/// `FIRST(X₁…Xₙ)` plus whether the whole string derives ε.
///
/// This is the helper the canonical-LR(1) item closure uses to compute the
/// look-aheads `FIRST(γ a)`.
pub fn first_of_sequence(first: &FirstSets, symbols: &[Symbol]) -> (BitSet, bool) {
    let mut out = BitSet::new(first.sets.cols());
    for &sym in symbols {
        match sym {
            Symbol::Terminal(t) => {
                out.insert(t.index());
                return (out, false);
            }
            Symbol::NonTerminal(n) => {
                for t in first.iter(n) {
                    out.insert(t.index());
                }
                if !first.nullable.contains(n) {
                    return (out, false);
                }
            }
        }
    }
    (out, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::nullable;
    use crate::parse_grammar;

    fn first_names(g: &Grammar, f: &FirstSets, nt: &str) -> Vec<String> {
        let n = g.nonterminal_by_name(nt).unwrap();
        f.iter(n).map(|t| g.terminal_name(t).to_string()).collect()
    }

    #[test]
    fn classic_expression_grammar() {
        let g = parse_grammar(
            r#"
            e : e "+" t | t ;
            t : t "*" f | f ;
            f : "(" e ")" | "id" ;
            "#,
        )
        .unwrap();
        let f = FirstSets::compute(&g, &nullable(&g));
        for nt in ["e", "t", "f"] {
            assert_eq!(first_names(&g, &f, nt), vec!["(", "id"], "FIRST({nt})");
        }
    }

    #[test]
    fn nullable_prefix_exposes_next_symbol() {
        let g = parse_grammar("s : a \"x\" ; a : \"y\" | ;").unwrap();
        let f = FirstSets::compute(&g, &nullable(&g));
        assert_eq!(first_names(&g, &f, "s"), vec!["x", "y"]);
    }

    #[test]
    fn left_recursive_cycle_converges() {
        let g = parse_grammar("a : b \"x\" | ; b : a \"y\" | \"z\" ;").unwrap();
        let f = FirstSets::compute(&g, &nullable(&g));
        // a and b feed each other; b is never nullable, so "x" can never be
        // first: FIRST(a) = FIRST(b) = {y, z}.
        assert_eq!(first_names(&g, &f, "a"), vec!["y", "z"]);
        assert_eq!(first_names(&g, &f, "b"), vec!["y", "z"]);
    }

    #[test]
    fn sequence_first_handles_nullable_chain() {
        let g = parse_grammar("s : a b \"c\" ; a : \"a1\" | ; b : \"b1\" | ;").unwrap();
        let f = FirstSets::compute(&g, &nullable(&g));
        let a: Symbol = g.nonterminal_by_name("a").unwrap().into();
        let b: Symbol = g.nonterminal_by_name("b").unwrap().into();
        let c: Symbol = g.terminal_by_name("c").unwrap().into();

        let sorted_names = |set: &lalr_bitset::BitSet| {
            let mut v: Vec<&str> = set
                .iter()
                .map(|i| g.terminal_name(Terminal::new(i)))
                .collect();
            v.sort_unstable();
            v
        };
        let (set, eps) = f.first_of(&[a, b]);
        assert_eq!(sorted_names(&set), vec!["a1", "b1"]);
        assert!(eps);

        let (set, eps) = f.first_of(&[a, b, c]);
        assert_eq!(sorted_names(&set), vec!["a1", "b1", "c"]);
        assert!(!eps);

        let (set, eps) = f.first_of(&[]);
        assert!(set.is_empty());
        assert!(eps);
    }

    #[test]
    fn eof_never_in_first_of_user_nonterminals() {
        let g = parse_grammar("s : \"a\" ;").unwrap();
        let f = FirstSets::compute(&g, &nullable(&g));
        for nt in g.nonterminals() {
            assert!(!f.contains(nt, Terminal::EOF));
        }
    }
}
