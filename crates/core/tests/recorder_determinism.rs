//! The observability contract: two recorded runs of the pipeline on the
//! same grammar report *identical* counter values and span call counts.
//! Timings are explicitly excluded — they are the only nondeterministic
//! part of a [`lalr_obs::PhaseReport`].

use lalr_automata::Lr0Automaton;
use lalr_core::{LalrAnalysis, Parallelism};
use lalr_obs::{CollectingRecorder, PhaseReport};

/// Everything deterministic in a report: counters, and (name, calls)
/// per phase bucket.
fn fingerprint(report: &PhaseReport) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = report
        .counters
        .iter()
        .map(|&(k, v)| (format!("counter:{k}"), v))
        .collect();
    out.extend(
        report
            .phases
            .iter()
            .map(|p| (format!("phase:{}", p.name), p.calls)),
    );
    out.extend(
        report
            .nested
            .iter()
            .map(|p| (format!("nested:{}", p.name), p.calls)),
    );
    out
}

fn recorded_run(src: &str, parallelism: &Parallelism) -> PhaseReport {
    let grammar = lalr_grammar::parse_grammar(src).unwrap();
    let rec = CollectingRecorder::new();
    let lr0 = Lr0Automaton::build_recorded(&grammar, &rec);
    let analysis = LalrAnalysis::compute_recorded(&grammar, &lr0, parallelism, &rec);
    assert!(analysis.lookaheads().reduction_count() > 0);
    rec.report()
}

#[test]
fn two_recorded_runs_report_identical_counters() {
    for entry in lalr_corpus::all_entries() {
        for parallelism in [Parallelism::sequential(), Parallelism::new(4)] {
            let a = recorded_run(entry.source, &parallelism);
            let b = recorded_run(entry.source, &parallelism);
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "nondeterministic counters on {} ({} threads)",
                entry.name,
                parallelism.threads()
            );
            assert!(
                a.counter("lr0.states").unwrap_or(0) > 0,
                "{}: lr0 counters must be populated",
                entry.name
            );
            assert!(
                a.phase("digraph.reads").is_some() && a.phase("digraph.includes").is_some(),
                "{}: both traversal phases must be spanned",
                entry.name
            );
        }
    }
}

#[test]
fn recorded_pipeline_matches_unrecorded_results() {
    // Recording must be observation only: the look-ahead sets computed
    // under a collecting recorder are identical to the plain pipeline's.
    for entry in lalr_corpus::all_entries().iter().take(4) {
        let grammar = entry.grammar();
        let rec = CollectingRecorder::new();
        let lr0 = Lr0Automaton::build_recorded(&grammar, &rec);
        let recorded = LalrAnalysis::compute_recorded(&grammar, &lr0, &Parallelism::new(4), &rec);
        let plain = LalrAnalysis::compute(&grammar, &lr0);
        assert_eq!(
            recorded.lookaheads(),
            plain.lookaheads(),
            "recording changed the result on {}",
            entry.name
        );
    }
}
