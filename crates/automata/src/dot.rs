//! Graphviz (DOT) export of the LR(0) automaton.

use std::fmt::Write as _;

use lalr_grammar::Grammar;

use crate::lr0::Lr0Automaton;

impl Lr0Automaton {
    /// Renders the automaton in Graphviz DOT syntax, one record node per
    /// state listing its kernel items.
    ///
    /// # Examples
    ///
    /// ```
    /// use lalr_automata::Lr0Automaton;
    /// use lalr_grammar::parse_grammar;
    ///
    /// let g = parse_grammar("s : \"a\" ;")?;
    /// let dot = Lr0Automaton::build(&g).to_dot(&g);
    /// assert!(dot.starts_with("digraph lr0 {"));
    /// assert!(dot.contains("s -> a ."));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn to_dot(&self, grammar: &Grammar) -> String {
        let mut out = String::from("digraph lr0 {\n  rankdir=LR;\n  node [shape=box];\n");
        for state in self.states() {
            let items: Vec<String> = self
                .kernel(state)
                .items()
                .iter()
                .map(|i| i.display(grammar).replace('"', "\\\""))
                .collect();
            let _ = writeln!(
                out,
                "  s{} [label=\"I{}\\n{}\"];",
                state.index(),
                state.index(),
                items.join("\\n")
            );
        }
        for state in self.states() {
            for &(sym, to) in self.transitions(state) {
                let _ = writeln!(
                    out,
                    "  s{} -> s{} [label=\"{}\"];",
                    state.index(),
                    to.index(),
                    grammar.name_of(sym).replace('"', "\\\"")
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalr_grammar::parse_grammar;

    #[test]
    fn dot_contains_all_states_and_edges() {
        let g = parse_grammar("s : \"a\" s | \"b\" ;").unwrap();
        let lr0 = Lr0Automaton::build(&g);
        let dot = lr0.to_dot(&g);
        for s in lr0.states() {
            assert!(dot.contains(&format!("s{} [label", s.index())));
        }
        // Edge lines look like `s3 -> s7 [label=...`; node labels may also
        // contain " -> " (item text), so match the edge shape precisely.
        let is_edge = |l: &str| {
            let l = l.trim_start();
            match l.split_once(" -> ") {
                Some((a, b)) => {
                    a.len() > 1
                        && a.starts_with('s')
                        && a[1..].bytes().all(|c| c.is_ascii_digit())
                        && b.starts_with('s')
                }
                None => false,
            }
        };
        let edge_lines = dot.lines().filter(|l| is_edge(l)).count();
        assert_eq!(edge_lines, lr0.transition_count());
    }

    #[test]
    fn quotes_in_names_escaped() {
        let g = parse_grammar("s : '\"' ;").unwrap();
        let dot = Lr0Automaton::build(&g).to_dot(&g);
        assert!(dot.contains("\\\""));
    }
}
